//! The sharded, multi-core consumer runtime (§6's scale-out
//! deployment: "more BGPCorsaro instances than cores" becomes "more
//! shards than one core can absorb").
//!
//! [`run_pipeline`](crate::run_pipeline) drives every plugin on the
//! calling thread; once the sorted stream outruns the consumers, the
//! plugin layer is the bottleneck. A [`ShardedRuntime`] keeps the
//! stream read sequential (time order is the product §3.3.4 sells)
//! but fans the *processing* out:
//!
//! 1. the coordinator (the calling thread) pulls record **batches**
//!    from the stream ([`BgpStream::next_batch`]) — under selective
//!    filters the stream's compiled pushdown has already rejected
//!    non-matching records before decode, so most envelopes arrive
//!    elem-less and broadcast for pennies — and broadcasts each
//!    batch — behind an `Arc`, so a broadcast is a refcount bump per
//!    worker — into N per-worker bounded queues
//!    ([`analytics::mapreduce::ShardPool`]); bounded queues mean a
//!    slow worker backpressures the reader instead of buffering
//!    without limit;
//! 2. every worker owns one **shard instance** of each partitioned
//!    plugin (forked via [`ShardedPlugin::fork`]). A shard instance
//!    sees every record envelope (so record-level events — corrupted
//!    dumps, RIB dump start/end — replay identically on every shard)
//!    but processes only the elems its shard owns, per the plugin's
//!    [`Partitioning`]: hash of the prefix, hash of the peer address,
//!    or pinned to a single worker;
//! 3. at each bin boundary the coordinator broadcasts a barrier;
//!    every shard instance closes its bin and ships a serialized
//!    **partial** back; the coordinator merges the partials *in shard
//!    order* on the root plugin ([`ShardedPlugin::merge_bin`]), so
//!    per-bin outputs are byte-identical to the sequential pipeline
//!    regardless of worker count or queue interleaving.
//!
//! Determinism argument: each worker's queue is FIFO, batches and
//! barriers are enqueued in stream order, shard ownership is a pure
//! hash, and the merge consumes partials indexed by `(bin, plugin,
//! shard)` — no step observes scheduling order.
//!
//! ```
//! use bgpstream::BgpStream;
//! use broker::{DataInterface, Index};
//! use corsaro::runtime::ShardedRuntime;
//! use corsaro::PfxMonitor;
//!
//! let mut stream = BgpStream::builder()
//!     .data_interface(DataInterface::Broker(Index::shared()))
//!     .interval(0, Some(3600))
//!     .start();
//! let mut monitor = PfxMonitor::new(["193.204.0.0/15".parse().unwrap()]);
//! let runtime = ShardedRuntime::builder()
//!     .workers(4)
//!     .bin_size(300)
//!     .build();
//! let records = runtime.run(&mut stream, &mut [&mut monitor]);
//! assert_eq!(records, 0); // the index above is empty
//! // `monitor.series` now holds exactly what `run_pipeline` would
//! // have produced, merged deterministically from the shards.
//! ```

use bsync::atomic::{AtomicBool, Ordering};
use std::collections::VecDeque;
use std::net::IpAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use analytics::mapreduce::ShardPool;
use bgp_types::Prefix;
use bgpstream::{BatchStep, BgpStream, BgpStreamRecord};
use bsync::channel::{Receiver, Sender, TryRecvError};

use crate::pipeline::{Partitioning, Plugin};

/// A plugin the sharded runtime can fan out.
///
/// The contract mirrors a map-reduce over time bins: shard instances
/// (created by [`fork`](ShardedPlugin::fork)) process disjoint elem
/// subsets, emit a serialized partial per bin
/// ([`take_partial`](ShardedPlugin::take_partial), called right after
/// `end_bin`), and the root instance folds the partials — always in
/// shard order — into its canonical per-bin output
/// ([`merge_bin`](ShardedPlugin::merge_bin)). For a correct
/// implementation, merging the partials of N shards must reproduce
/// the sequential output byte-for-byte; `fork(0, 1)` (one shard that
/// owns everything) is the degenerate case tests lean on.
pub trait ShardedPlugin: Plugin + Send {
    /// A fresh instance that owns shard `shard` of `shards` (same
    /// configuration, empty state). Pinned plugins are forked as
    /// `fork(0, 1)`.
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin>;

    /// Process a record on a shard instance: `mask[i]` is true iff
    /// this shard owns elem `i` of the record. The runtime computes
    /// the mask *once per record per partitioning mode* and shares it
    /// across all same-mode plugins on the worker, so the per-elem
    /// shard hash is not replicated per plugin. Implementations must
    /// touch owned elems only; record-level state (corruption flags,
    /// dump boundaries) is fair game for every shard.
    ///
    /// The default ignores the mask and processes everything — only
    /// correct for `Pinned` plugins (whose mask is all-true).
    fn process_sharded(&mut self, record: &BgpStreamRecord, mask: &[bool]) {
        let _ = mask;
        self.process_record(record);
    }

    /// Serialized partial output of the bin that just closed; called
    /// on shard instances immediately after their `end_bin`.
    fn take_partial(&mut self) -> Vec<u8>;

    /// Fold shard partials (ordered by shard index) into the
    /// canonical output for `[bin_start, bin_end)`, recording it on
    /// `self` exactly as a sequential `end_bin` would have.
    fn merge_bin(&mut self, bin_start: u64, bin_end: u64, partials: Vec<Vec<u8>>);
}

/// Stable shard hash for a prefix (a splitmix64-style mix over the
/// prefix bits and length — deliberately *not* `DefaultHasher`, so
/// shard placement is a documented function of the data, nothing
/// else; and cheap enough to run once per elem on every worker).
pub fn shard_of_prefix(prefix: &Prefix, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let bits = prefix.raw_bits();
    let key = (bits as u64)
        ^ ((bits >> 64) as u64)
        ^ ((prefix.len() as u64) << 1)
        ^ prefix.is_ipv4() as u64;
    (mix64(key) % shards as u64) as usize
}

/// Stable shard hash for a VP address.
pub fn shard_of_peer(peer: &IpAddr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let key = match peer {
        IpAddr::V4(a) => u32::from_be_bytes(a.octets()) as u64,
        IpAddr::V6(a) => {
            let b = u128::from_be_bytes(a.octets());
            (b as u64) ^ ((b >> 64) as u64) ^ 1
        }
    };
    (mix64(key) % shards as u64) as usize
}

/// splitmix64 finalizer: full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Configuration for a [`ShardedRuntime`].
pub struct ShardedRuntimeBuilder {
    workers: usize,
    bin_size: u64,
    batch_records: usize,
    queue_batches: usize,
}

impl Default for ShardedRuntimeBuilder {
    fn default() -> Self {
        ShardedRuntimeBuilder {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            bin_size: 60,
            batch_records: 256,
            queue_batches: 4,
        }
    }
}

impl ShardedRuntimeBuilder {
    /// Number of shard workers (default: available parallelism).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Time-bin size in seconds (default 60), aligned like
    /// [`run_pipeline`](crate::run_pipeline).
    pub fn bin_size(mut self, seconds: u64) -> Self {
        self.bin_size = seconds.max(1);
        self
    }

    /// Records per broadcast batch (default 256). Larger batches
    /// amortise channel traffic; smaller ones reduce latency.
    pub fn batch_records(mut self, n: usize) -> Self {
        self.batch_records = n.max(1);
        self
    }

    /// Bounded queue depth per worker, in batches (default 4): the
    /// backpressure window between the reader and a slow worker.
    pub fn queue_batches(mut self, n: usize) -> Self {
        self.queue_batches = n.max(1);
        self
    }

    /// Finish configuration.
    pub fn build(self) -> ShardedRuntime {
        ShardedRuntime { cfg: self }
    }
}

/// The sharded consumer runtime. See the [module docs](self) for the
/// execution model; construct via [`ShardedRuntime::builder`].
pub struct ShardedRuntime {
    cfg: ShardedRuntimeBuilder,
}

/// What a [`ShardedRuntime::run_live`] session did.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveRunReport {
    /// Records processed (same meaning as the return value of
    /// [`ShardedRuntime::run_until`]).
    pub records: u64,
    /// Time bins closed and merged onto the root plugins.
    pub bins_closed: u64,
    /// True when the session ended because the shutdown flag was
    /// raised (as opposed to reaching `stop`).
    pub shutdown: bool,
}

/// Messages broadcast to shard workers.
#[derive(Clone)]
enum ShardMsg {
    /// A run of records, all belonging to the current bin.
    Batch(Arc<Vec<BgpStreamRecord>>),
    /// Close the bin `[bin_start, bin_end)` and ship partials.
    EndBin { bin_start: u64, bin_end: u64 },
}

/// Messages from shard workers back to the coordinator.
enum ResMsg {
    Partial {
        plugin: usize,
        worker: usize,
        bin_start: u64,
        bytes: Vec<u8>,
    },
    Panicked {
        worker: usize,
    },
}

/// One hosted shard instance.
struct Hosted {
    /// Index of the root plugin this instance shards.
    root_idx: usize,
    partitioning: Partitioning,
    plugin: Box<dyn ShardedPlugin>,
}

/// One shard worker's private state.
struct WorkerState {
    plugins: Vec<Hosted>,
    res_tx: Sender<ResMsg>,
    worker: usize,
    workers: usize,
    /// Reusable per-record ownership masks, one per partitioning mode
    /// in use: computed once per record, shared by every same-mode
    /// plugin instance on this worker.
    mask_prefix: Vec<bool>,
    mask_peer: Vec<bool>,
    need_prefix_mask: bool,
    need_peer_mask: bool,
    /// Set after a plugin panicked: remaining messages are drained
    /// without processing so the coordinator never deadlocks.
    poisoned: bool,
}

impl WorkerState {
    fn handle(&mut self, msg: ShardMsg) {
        if self.poisoned {
            return;
        }
        let worker = self.worker;
        let r = catch_unwind(AssertUnwindSafe(|| match msg {
            ShardMsg::Batch(batch) => {
                for rec in batch.iter() {
                    self.process(rec);
                }
            }
            ShardMsg::EndBin { bin_start, bin_end } => {
                for hosted in self.plugins.iter_mut() {
                    hosted.plugin.end_bin(bin_start, bin_end);
                    let bytes = hosted.plugin.take_partial();
                    let _ = self.res_tx.send(ResMsg::Partial {
                        plugin: hosted.root_idx,
                        worker,
                        bin_start,
                        bytes,
                    });
                }
            }
        }));
        if r.is_err() {
            self.poisoned = true;
            let _ = self.res_tx.send(ResMsg::Panicked { worker });
        }
    }

    fn process(&mut self, rec: &BgpStreamRecord) {
        let elems = rec.elems();
        if self.need_prefix_mask {
            self.mask_prefix.clear();
            self.mask_prefix
                .extend(elems.iter().map(|e| match &e.prefix {
                    // Prefix-less elems (state messages) broadcast to
                    // every shard: per-VP bookkeeping must replay
                    // everywhere a VP's prefixes might live.
                    None => true,
                    Some(p) => shard_of_prefix(p, self.workers) == self.worker,
                }));
        }
        if self.need_peer_mask {
            self.mask_peer.clear();
            self.mask_peer.extend(
                elems
                    .iter()
                    .map(|e| shard_of_peer(&e.peer_address, self.workers) == self.worker),
            );
        }
        for hosted in self.plugins.iter_mut() {
            match hosted.partitioning {
                Partitioning::Pinned => hosted.plugin.process_record(rec),
                Partitioning::ByPrefix => hosted.plugin.process_sharded(rec, &self.mask_prefix),
                Partitioning::ByPeer => hosted.plugin.process_sharded(rec, &self.mask_peer),
            }
        }
    }
}

/// An open bin barrier awaiting shard partials.
struct PendingBin {
    bin_start: u64,
    bin_end: u64,
    /// One slot per hosted plugin instance (flat index).
    slots: Vec<Option<Vec<u8>>>,
    missing: usize,
}

/// Per-plugin placement: which workers host a shard instance, and
/// where each `(plugin, worker)` pair lives in the flat slot array.
struct Placement {
    /// `holders[p]` = sorted worker indexes hosting plugin `p`.
    holders: Vec<Vec<usize>>,
    /// `base[p]` = first flat slot of plugin `p`.
    base: Vec<usize>,
    total_instances: usize,
}

impl Placement {
    fn new(partitionings: &[Partitioning], workers: usize) -> Self {
        let mut holders = Vec::with_capacity(partitionings.len());
        let mut base = Vec::with_capacity(partitionings.len());
        let mut total = 0usize;
        for (p, part) in partitionings.iter().enumerate() {
            let h: Vec<usize> = match part {
                Partitioning::Pinned => vec![p % workers],
                Partitioning::ByPrefix | Partitioning::ByPeer => (0..workers).collect(),
            };
            base.push(total);
            total += h.len();
            holders.push(h);
        }
        Placement {
            holders,
            base,
            total_instances: total,
        }
    }

    fn slot(&self, plugin: usize, worker: usize) -> usize {
        let pos = self.holders[plugin]
            .iter()
            .position(|&w| w == worker)
            // xcheck:allow(unwrap) — placement routed this worker to the plugin
            .expect("partial from a worker that does not host this plugin");
        self.base[plugin] + pos
    }
}

impl ShardedRuntime {
    /// Start configuring a runtime.
    pub fn builder() -> ShardedRuntimeBuilder {
        ShardedRuntimeBuilder::default()
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Drive `plugins` over the whole stream. Returns the number of
    /// records processed; per-bin outputs land on the root plugins
    /// exactly as under [`run_pipeline`](crate::run_pipeline).
    pub fn run(&self, stream: &mut BgpStream, plugins: &mut [&mut dyn ShardedPlugin]) -> u64 {
        self.run_until(stream, u64::MAX, plugins)
    }

    /// Fork shard instances of every root plugin (grouped per worker,
    /// per its [`Partitioning`]) and spawn the worker pool. The
    /// coordinator's result-sender clone is dropped before returning,
    /// so `res_rx` disconnects once the workers exit.
    fn spawn_workers(
        &self,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> (Placement, ShardPool<ShardMsg>, Receiver<ResMsg>) {
        let workers = self.cfg.workers.max(1);
        let partitionings: Vec<Partitioning> = roots.iter().map(|p| p.partitioning()).collect();
        let placement = Placement::new(&partitionings, workers);

        // Fork shard instances up front, grouped per worker.
        let mut per_worker: Vec<Vec<Hosted>> = (0..workers).map(|_| Vec::new()).collect();
        for (p, root) in roots.iter().enumerate() {
            match partitionings[p] {
                Partitioning::Pinned => {
                    per_worker[p % workers].push(Hosted {
                        root_idx: p,
                        partitioning: Partitioning::Pinned,
                        plugin: root.fork(0, 1),
                    });
                }
                part @ (Partitioning::ByPrefix | Partitioning::ByPeer) => {
                    for (shard, host) in per_worker.iter_mut().enumerate() {
                        host.push(Hosted {
                            root_idx: p,
                            partitioning: part,
                            plugin: root.fork(shard, workers),
                        });
                    }
                }
            }
        }

        let (res_tx, res_rx) = bsync::channel::unbounded::<ResMsg>();
        let mut states: Vec<Option<WorkerState>> = per_worker
            .into_iter()
            .enumerate()
            .map(|(w, plugins)| {
                let need_prefix_mask = plugins
                    .iter()
                    .any(|h| h.partitioning == Partitioning::ByPrefix);
                let need_peer_mask = plugins
                    .iter()
                    .any(|h| h.partitioning == Partitioning::ByPeer);
                Some(WorkerState {
                    plugins,
                    res_tx: res_tx.clone(),
                    worker: w,
                    workers,
                    mask_prefix: Vec::new(),
                    mask_peer: Vec::new(),
                    need_prefix_mask,
                    need_peer_mask,
                    poisoned: false,
                })
            })
            .collect();
        drop(res_tx);
        let pool = ShardPool::spawn(
            workers,
            self.cfg.queue_batches,
            // xcheck:allow(unwrap) — ShardPool calls init exactly once per worker
            |w| states[w].take().expect("each worker initialised once"),
            |_w, state: &mut WorkerState, msg: ShardMsg| state.handle(msg),
        );
        (placement, pool, res_rx)
    }

    /// [`ShardedRuntime::run`] with the stop semantics of
    /// [`run_pipeline_until`](crate::run_pipeline_until): returns once
    /// a record timestamped at or after `stop` arrives (that record is
    /// not processed).
    pub fn run_until(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> u64 {
        // One coordinator loop serves both runners: on a historical
        // stream `next_batch_step` never reports Idle, so run_live's
        // extra watermark-driven closing is unreachable and the flow
        // reduces to exactly the historical batching/binning/stop
        // semantics (the determinism suite pins this equivalence).
        self.run_live(stream, stop, None, roots).records
    }

    /// Drive `roots` over a **live** stream, closing time bins off the
    /// broker's completeness watermark instead of stream EOF (which a
    /// live stream never reaches).
    ///
    /// The loop is built on [`BgpStream::next_batch_step`], so the
    /// coordinator regains control whenever the stream would block:
    ///
    /// * records are batched, broadcast and binned exactly as in
    ///   [`ShardedRuntime::run_until`] — bins close when a record of a
    ///   later bin arrives;
    /// * on [`BatchStep::Idle`] the runtime additionally closes every
    ///   bin whose end lies at or below the stream's
    ///   `released_through` watermark: the broker has vouched that
    ///   nothing older can arrive, so the bin is complete even though
    ///   no later record has been seen yet. Quiet periods therefore
    ///   emit dense (empty) bins promptly instead of stalling the time
    ///   series;
    /// * `shutdown` (checked between steps) requests a cooperative
    ///   exit: the current batch is flushed, workers join, and every
    ///   already-closed bin is merged — nothing hangs and no partials
    ///   are lost, but the in-progress bin is *not* closed (it is
    ///   incomplete by definition).
    ///
    /// The session ends at `stop` with the exact semantics of
    /// [`ShardedRuntime::run_until`] (a record at or after `stop` is
    /// consumed but not processed; read-ahead goes back to the
    /// stream), or as soon as the watermark proves every record below
    /// `stop` has been delivered. For every closed bin the merged
    /// output on the root plugins is byte-identical to a historical
    /// [`run_pipeline`](crate::run_pipeline) over the same (final)
    /// archive — the live-vs-historical equivalence CI proves across
    /// fault schedules and worker counts.
    pub fn run_live(
        &self,
        stream: &mut BgpStream,
        stop: u64,
        shutdown: Option<&AtomicBool>,
        roots: &mut [&mut dyn ShardedPlugin],
    ) -> LiveRunReport {
        let bin_size = self.cfg.bin_size.max(1);
        let (placement, pool, res_rx) = self.spawn_workers(roots);

        let mut report = LiveRunReport::default();
        let mut pending: VecDeque<PendingBin> = VecDeque::new();
        // The bin currently receiving records; `dirty` = at least one
        // record fell into it since it opened (only dirty bins close
        // at session end, mirroring the sequential runner's EOF close).
        let mut current_bin: Option<u64> = None;
        let mut dirty = false;
        let mut batch: Vec<BgpStreamRecord> = Vec::with_capacity(self.cfg.batch_records);
        let batch_cap = self.cfg.batch_records;
        let flush = |batch: &mut Vec<BgpStreamRecord>, pool: &ShardPool<ShardMsg>| {
            if !batch.is_empty() {
                let arc = Arc::new(std::mem::replace(batch, Vec::with_capacity(batch_cap)));
                pool.broadcast(ShardMsg::Batch(arc));
            }
        };

        'read: loop {
            if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
                report.shutdown = true;
                break 'read;
            }
            match stream.next_batch_step(self.cfg.batch_records) {
                BatchStep::Records(recs) => {
                    let mut recs = recs.into_iter();
                    while let Some(rec) = recs.next() {
                        if rec.timestamp >= stop {
                            stream.unread(recs.collect());
                            break 'read;
                        }
                        let bin = rec.timestamp - rec.timestamp % bin_size;
                        match current_bin {
                            None => current_bin = Some(bin),
                            Some(cur) if bin > cur => {
                                flush(&mut batch, &pool);
                                let mut b = cur;
                                while b < bin {
                                    self.close_bin(
                                        &pool,
                                        &mut pending,
                                        &placement,
                                        b,
                                        b + bin_size,
                                    );
                                    report.bins_closed += 1;
                                    b += bin_size;
                                }
                                current_bin = Some(bin);
                            }
                            _ => {}
                        }
                        dirty = true;
                        batch.push(rec);
                        report.records += 1;
                        if batch.len() >= self.cfg.batch_records {
                            flush(&mut batch, &pool);
                        }
                    }
                    Self::drain_results(&res_rx, &mut pending, &placement, roots, false);
                }
                BatchStep::Idle { released_through } => {
                    // Watermark-driven closing: everything below the
                    // watermark has been delivered, so bins ending at
                    // or below it are complete — including empty ones.
                    // A `u64::MAX` limit is not a bin boundary but an
                    // end-of-feed signal (provider parked the
                    // watermark at the end of time with nothing left,
                    // or `stop == u64::MAX` on an open-ended session):
                    // closing empty bins toward it would spin forever,
                    // so it only ever terminates via the break below.
                    let limit = released_through.min(stop);
                    if limit != u64::MAX && current_bin.is_some_and(|cur| cur + bin_size <= limit) {
                        flush(&mut batch, &pool);
                        while let Some(cur) = current_bin {
                            if cur + bin_size > limit {
                                break;
                            }
                            self.close_bin(&pool, &mut pending, &placement, cur, cur + bin_size);
                            report.bins_closed += 1;
                            current_bin = Some(cur + bin_size);
                            dirty = false;
                        }
                    }
                    Self::drain_results(&res_rx, &mut pending, &placement, roots, false);
                    if released_through >= stop {
                        // Every record below `stop` has been released
                        // and delivered: the session is complete.
                        break 'read;
                    }
                }
                BatchStep::End => break 'read,
            }
        }
        flush(&mut batch, &pool);
        if dirty {
            if let Some(cur) = current_bin {
                if !report.shutdown {
                    self.close_bin(&pool, &mut pending, &placement, cur, cur + bin_size);
                    report.bins_closed += 1;
                }
            }
        }
        pool.join();
        Self::drain_results(&res_rx, &mut pending, &placement, roots, true);
        report
    }

    fn close_bin(
        &self,
        pool: &ShardPool<ShardMsg>,
        pending: &mut VecDeque<PendingBin>,
        placement: &Placement,
        bin_start: u64,
        bin_end: u64,
    ) {
        pool.broadcast(ShardMsg::EndBin { bin_start, bin_end });
        pending.push_back(PendingBin {
            bin_start,
            bin_end,
            slots: (0..placement.total_instances).map(|_| None).collect(),
            missing: placement.total_instances,
        });
    }

    /// Fold arrived partials into the roots, strictly in bin order.
    /// With `block` set, waits until every pending bin is merged.
    fn drain_results(
        res_rx: &Receiver<ResMsg>,
        pending: &mut VecDeque<PendingBin>,
        placement: &Placement,
        roots: &mut [&mut dyn ShardedPlugin],
        block: bool,
    ) {
        loop {
            // Merge every completed bin at the front of the queue.
            while pending.front().map(|b| b.missing == 0).unwrap_or(false) {
                // xcheck:allow(unwrap) — front existence checked by the loop condition
                let done = pending.pop_front().expect("front checked");
                let mut slots = done.slots;
                for (p, root) in roots.iter_mut().enumerate() {
                    let partials: Vec<Vec<u8>> = placement.holders[p]
                        .iter()
                        .map(|&w| {
                            slots[placement.slot(p, w)]
                                .take()
                                // xcheck:allow(unwrap) — missing == 0 means every slot is filled
                                .expect("bin complete, slot filled")
                        })
                        .collect();
                    root.merge_bin(done.bin_start, done.bin_end, partials);
                }
            }
            if block && pending.is_empty() {
                return;
            }
            let msg = if block {
                match res_rx.recv() {
                    Ok(m) => m,
                    Err(_) => {
                        assert!(
                            pending.is_empty(),
                            "shard workers exited with {} bin(s) unmerged",
                            pending.len()
                        );
                        return;
                    }
                }
            } else {
                match res_rx.try_recv() {
                    Ok(m) => m,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
                }
            };
            match msg {
                ResMsg::Partial {
                    plugin,
                    worker,
                    bin_start,
                    bytes,
                } => {
                    let slot = placement.slot(plugin, worker);
                    let bin = pending
                        .iter_mut()
                        .find(|b| b.bin_start == bin_start)
                        // xcheck:allow(unwrap) — workers only emit bins the merger opened
                        .expect("partial for an unknown bin");
                    debug_assert!(bin.slots[slot].is_none(), "duplicate partial");
                    bin.slots[slot] = Some(bytes);
                    bin.missing -= 1;
                }
                ResMsg::Panicked { worker } => {
                    panic!("shard worker {worker} panicked while processing a plugin");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hashes_are_stable_and_in_range() {
        let p: Prefix = "193.204.10.0/24".parse().unwrap();
        let a = shard_of_prefix(&p, 4);
        assert_eq!(a, shard_of_prefix(&p, 4));
        assert!(a < 4);
        assert_eq!(shard_of_prefix(&p, 1), 0);
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        let b = shard_of_peer(&ip, 4);
        assert_eq!(b, shard_of_peer(&ip, 4));
        assert!(b < 4);
        assert_eq!(shard_of_peer(&ip, 0), 0);
    }

    #[test]
    fn prefix_shards_spread() {
        // Not a distribution-quality test, just "not everything lands
        // on one shard".
        let mut seen = [false; 4];
        for i in 0..64u8 {
            let p: Prefix = format!("10.{i}.0.0/16").parse().unwrap();
            seen[shard_of_prefix(&p, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn placement_pins_and_partitions() {
        let pl = Placement::new(
            &[
                Partitioning::Pinned,
                Partitioning::ByPrefix,
                Partitioning::Pinned,
            ],
            3,
        );
        assert_eq!(pl.holders[0], vec![0]);
        assert_eq!(pl.holders[1], vec![0, 1, 2]);
        assert_eq!(pl.holders[2], vec![2]);
        assert_eq!(pl.total_instances, 5);
        // Flat slots are unique and dense.
        let mut slots: Vec<usize> = pl
            .holders
            .iter()
            .enumerate()
            .flat_map(|(p, hs)| hs.iter().map(move |&w| (p, w)))
            .map(|(p, w)| pl.slot(p, w))
            .collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..5).collect::<Vec<_>>());
    }
}
