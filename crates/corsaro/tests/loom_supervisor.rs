//! loom-lite models of the supervisor's two recovery races.
//!
//! The full supervised runtime is too big to model-check directly, so
//! these tests check the *protocols* it relies on, extracted to their
//! essence over the same `bsync` primitives:
//!
//! * **restart vs drain** — after a stall restart, the detached
//!   zombie worker keeps draining its queue and emitting results that
//!   race the replacement worker's replayed results on the shared
//!   result channel. The epoch filter plus filled-slot dedup must
//!   merge every bin exactly once under every interleaving; a canary
//!   without the epoch filter shows the checker catches the
//!   double-merge.
//! * **checkpoint vs flush** — a checkpoint validated *after* a torn
//!   write races the coordinator's log truncation. Truncating to the
//!   torn (unvalidated) sequence loses replay entries a restart still
//!   needs; truncating only to validated checkpoints never does.
//!
//! Run with `cargo test -p corsaro --features loom-lite --test
//! loom_supervisor`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;

use bsync::channel;
use bsync::model::{explore, Builder};

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// Result-channel message: `(worker_epoch, bin)`.
type Res = (u64, u64);

/// Drive the restart-vs-drain protocol once. `epoch_filter` controls
/// whether the coordinator applies the epoch check (the real runtime
/// always does; the canary disables it).
fn restart_vs_drain(epoch_filter: bool) {
    let (res_tx, res_rx) = channel::unbounded::<Res>();

    // The zombie: a worker the coordinator has already decided to
    // restart (stall path — it never actually died), still holding a
    // result for bin 2 that it emits at an arbitrary time.
    let zombie = {
        let tx = res_tx.clone();
        bsync::thread::spawn_named("zombie", move || {
            let _ = tx.send((0, 2));
        })
    };
    // The replacement, epoch 1, replaying from the last checkpoint:
    // re-answers bin 2 (its EndBin is past the checkpoint).
    let replacement = {
        let tx = res_tx.clone();
        bsync::thread::spawn_named("replacement", move || {
            let _ = tx.send((1, 2));
        })
    };
    drop(res_tx);

    // Coordinator: epoch already bumped to 1 by the restart decision.
    let current_epoch = 1u64;
    let mut merged = 0u32;
    let mut slot_filled = false;
    while let Ok((epoch, bin)) = res_rx.recv() {
        assert_eq!(bin, 2);
        if epoch_filter && epoch != current_epoch {
            continue; // zombie output discarded
        }
        if slot_filled {
            continue; // duplicate partial for an already-filled slot
        }
        slot_filled = true;
        merged += 1;
    }
    zombie.join().expect("zombie ran");
    replacement.join().expect("replacement ran");
    assert_eq!(merged, 1, "bin must merge exactly once");
}

#[test]
fn restart_vs_drain_merges_every_bin_exactly_once() {
    let report = explore(&budget(), || restart_vs_drain(true))
        .expect("no interleaving may lose or double-merge a bin");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: with the epoch filter *and* slot dedup both absent the
/// zombie's late result and the replayed result both merge in some
/// interleaving — the checker must catch it.
#[test]
fn canary_unfiltered_zombie_double_merges() {
    let racy = || {
        let (res_tx, res_rx) = channel::unbounded::<Res>();
        let zombie = {
            let tx = res_tx.clone();
            bsync::thread::spawn_named("zombie", move || {
                let _ = tx.send((0, 2));
            })
        };
        let replacement = {
            let tx = res_tx.clone();
            bsync::thread::spawn_named("replacement", move || {
                let _ = tx.send((1, 2));
            })
        };
        drop(res_tx);
        let mut merged = 0u32;
        while let Ok((_epoch, _bin)) = res_rx.recv() {
            merged += 1; // BUG: no epoch filter, no slot dedup
        }
        zombie.join().expect("zombie ran");
        replacement.join().expect("replacement ran");
        assert_eq!(merged, 1, "bin must merge exactly once");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the double merge");
    assert!(
        failure.kind.contains("panic"),
        "unexpected failure kind: {}",
        failure.kind
    );
}

/// Checkpoint-vs-flush: the coordinator keeps a replay log and trims
/// it when a checkpoint *validates*; a torn write must leave the
/// previous checkpoint (and therefore the longer replay window)
/// authoritative. `trim_on_receipt` models the bug of trimming as
/// soon as the checkpoint message arrives, before validation.
fn checkpoint_vs_flush(trim_on_receipt: bool) {
    // Replay log guarded like the coordinator's: entries are batch
    // sequence numbers; the worker's validated checkpoint is at seq 1.
    let log = Arc::new(bsync::Mutex::new(vec![1u64, 2, 3]));
    let validated_seq = 1u64;
    let torn_seq = 3u64;

    // Worker side: emits a torn checkpoint frame for seq 3 (the
    // flush raced the crash mid-write), concurrently with the
    // coordinator still broadcasting batches.
    let (ckpt_tx, ckpt_rx) = channel::unbounded::<(u64, bool)>(); // (seq, frame_ok)
    let worker = {
        let tx = ckpt_tx.clone();
        bsync::thread::spawn_named("worker", move || {
            let _ = tx.send((torn_seq, false));
        })
    };
    drop(ckpt_tx);
    // Coordinator: appends a new batch to the log while the checkpoint
    // message is in flight, then processes the checkpoint.
    {
        let log = log.clone();
        log.lock().push(4);
    }
    let mut ckpt_seq = validated_seq;
    while let Ok((seq, frame_ok)) = ckpt_rx.recv() {
        if trim_on_receipt {
            ckpt_seq = seq; // BUG: trusts the frame before validating
        } else if frame_ok {
            ckpt_seq = seq;
        }
        log.lock().retain(|&s| s > ckpt_seq);
    }
    worker.join().expect("worker ran");
    // Restart now: everything after the authoritative checkpoint must
    // still be in the log.
    let replay: Vec<u64> = log.lock().iter().copied().collect();
    assert_eq!(
        replay,
        vec![2, 3, 4],
        "replay window must cover everything past the last VALID checkpoint"
    );
}

#[test]
fn torn_checkpoint_never_shrinks_the_replay_window() {
    let report = explore(&budget(), || checkpoint_vs_flush(false))
        .expect("no interleaving may lose replay entries");
    assert!(report.iterations >= 1);
}

#[test]
fn canary_trimming_on_receipt_loses_replay_entries() {
    let failure = explore(&budget(), || checkpoint_vs_flush(true))
        .expect_err("checker must catch the lost replay window");
    assert!(
        failure.kind.contains("panic"),
        "unexpected failure kind: {}",
        failure.kind
    );
}
