//! BGPCorsaro integration tests over full simulated archives:
//! the Figure 6 hijack scenario and the RT plugin on real dump flows.

use std::path::PathBuf;
use std::sync::Arc;

use bgpstream::BgpStream;
use broker::{Index, LocalBroker};
use collector_sim::{standard_collectors, SimConfig, Simulator};
use corsaro::{run_pipeline, PfxMonitor, RtPlugin};
use topology::control::ControlPlane;
use topology::events::Scenario;
use topology::gen::{generate, TopologyConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-corsaro-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn pfxmonitor_detects_simulated_hijacks() {
    // GARR-style scenario: monitor a victim's IP ranges; an unrelated
    // AS announces more-specifics of them for ~1 h, twice.
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(41))), u64::MAX);
    let topo = cp.topology().clone();
    let victim = topo
        .nodes
        .iter()
        .find(|n| n.prefixes_v4.len() >= 2)
        .expect("victim with ranges");
    let attacker = topo
        .nodes
        .iter()
        .rev()
        .find(|n| n.asn != victim.asn)
        .unwrap();
    let ranges: Vec<_> = victim.prefixes_v4.iter().map(|p| p.prefix).collect();

    let specs = standard_collectors(&cp, 1, 1, 4, 1.0, 41);
    let dir = tmpdir("pfx");
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    let mut sc = Scenario::new();
    let sub = ranges[0].children().unwrap().0;
    sc.hijack(3600, 3600, attacker.asn, sub);
    sc.hijack(14400, 3600, attacker.asn, sub);
    sim.schedule(&sc);
    sim.run_until(6 * 3600);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .interval(0, Some(6 * 3600))
        .start();
    let mut monitor = PfxMonitor::new(ranges.iter().copied());
    run_pipeline(&mut stream, 300, &mut [&mut monitor]);

    let max_origins = monitor.series.iter().map(|p| p.origins).max().unwrap();
    let baseline: Vec<_> = monitor
        .series
        .iter()
        .filter(|p| p.time < 3600)
        .map(|p| p.origins)
        .collect();
    assert!(!baseline.is_empty());
    let base = *baseline.last().unwrap();
    assert!(
        max_origins > base,
        "hijack produced no origin spike (base {base}, max {max_origins})"
    );
    // The spike subsides after the hijack ends.
    let tail = monitor
        .series
        .iter()
        .filter(|p| p.time >= 19000)
        .map(|p| p.origins)
        .next_back()
        .unwrap();
    assert_eq!(tail, base, "origins did not return to baseline");
}

#[test]
fn rt_plugin_reconstructs_tables_accurately_over_sim() {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(42))), u64::MAX);
    let topo = cp.topology().clone();
    let specs = standard_collectors(&cp, 1, 0, 4, 1.0, 42);
    let collector = specs[0].name.clone();
    let dir = tmpdir("rt");
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    // Flap traffic plus a session reset; run past a second RIS RIB
    // (8 h) so the accuracy check fires.
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(8)
        .enumerate()
    {
        sc.flap(
            600 + k as u64 * 313,
            6,
            1800,
            n.asn,
            n.prefixes_v4[0].prefix,
        );
    }
    sim.schedule(&sc);
    sim.run_until(9 * 3600);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(idx))
        .collector(&collector)
        .interval(0, Some(9 * 3600))
        .start();
    let mut rt = RtPlugin::new(&collector);
    run_pipeline(&mut stream, 1800, &mut [&mut rt]);

    // All four VPs reconstructed, tables non-trivial.
    assert_eq!(rt.vp_addrs().len(), 4);
    for ip in rt.vp_addrs() {
        assert!(rt.vp_table_size(ip) > 10, "tiny table for {ip}");
    }
    // The reconstruction must be essentially error-free: every update
    // the collector saw is in the dumps, so the second RIB agrees.
    assert!(
        rt.error_stats.cells_checked > 100,
        "accuracy check never ran"
    );
    assert_eq!(
        rt.error_stats.cells_mismatched, 0,
        "reconstruction diverged: {:?}",
        rt.error_stats
    );
    // Figure 9 precondition: in steady-state bins (away from RIB
    // application, which materialises whole tables) diffs are fewer
    // than elems — a withdraw+re-announce flap inside one bin is two
    // elems but zero diff cells.
    let steady = |b: &&corsaro::RtBinStats| b.bin >= 3600 && b.bin + 1800 <= 8 * 3600;
    let elems: u64 = rt.bin_series.iter().filter(steady).map(|b| b.elems).sum();
    let diffs: u64 = rt
        .bin_series
        .iter()
        .filter(steady)
        .map(|b| b.diff_cells)
        .sum();
    assert!(elems > 0);
    assert!(
        diffs < elems,
        "no redundancy absorbed: diffs {diffs} vs elems {elems}"
    );
}
