//! Determinism contract of the sharded runtime: per-bin plugin
//! outputs — series *and* queue payload bytes — must be identical to
//! the sequential pipeline for every worker count and for any
//! interleaving of the shard queues.
//!
//! Interleavings are perturbed two ways: the batch/queue-depth matrix
//! spans degenerate configurations (1-record batches on 1-slot
//! queues force maximal contention; large batches exercise the
//! mid-bin flush path), and a jitter plugin injects data-dependent
//! sleeps on individual shards so workers drift apart in time.
//! Nothing observed downstream may depend on that drift.

use std::path::PathBuf;
use std::sync::Arc;

use bgpstream::BgpStream;
use broker::{Index, LocalBroker};
use bytes::{Buf, BufMut, BytesMut};
use collector_sim::{standard_collectors, SimConfig, Simulator};
use corsaro::runtime::{shard_of_prefix, ShardedPlugin, ShardedRuntime};
use corsaro::{
    run_pipeline, ElemCounter, Partitioning, PfxMonitor, Plugin, RtBinStats, RtErrorStats, RtPlugin,
};
use mq::Cluster;
use topology::control::ControlPlane;
use topology::events::Scenario;
use topology::gen::{generate, TopologyConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-sharded-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A test plugin that deliberately desynchronises the shard workers:
/// data-dependent microsleeps on a single shard make worker progress
/// rates diverge, so any scheduling-order dependence in the runtime
/// would show up as output differences.
struct Jitter {
    shard: Option<(usize, usize)>,
    owned_elems: u64,
    /// Cumulative owned-elem count at each bin close.
    pub series: Vec<u64>,
}

impl Jitter {
    fn new() -> Self {
        Jitter {
            shard: None,
            owned_elems: 0,
            series: Vec::new(),
        }
    }
}

impl Plugin for Jitter {
    fn name(&self) -> &'static str {
        "jitter"
    }

    fn process_record(&mut self, record: &bgpstream::BgpStreamRecord) {
        for elem in record.elems() {
            let Some(prefix) = elem.prefix else { continue };
            if let Some((shard, shards)) = self.shard {
                if shard_of_prefix(&prefix, shards) != shard {
                    continue;
                }
                // Lag one shard behind the others, keyed by data so
                // the pattern is reproducible but uneven.
                if shard == 0 && elem.time % 13 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            self.owned_elems += 1;
        }
    }

    fn end_bin(&mut self, _s: u64, _e: u64) {
        self.series.push(self.owned_elems);
    }

    fn partitioning(&self) -> Partitioning {
        Partitioning::ByPrefix
    }

    fn checkpoint(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        out.put_u64(self.owned_elems);
        out.put_u32(self.series.len() as u32);
        for v in &self.series {
            out.put_u64(*v);
        }
        out.to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut buf = bytes;
        if buf.len() < 12 {
            return Err("jitter checkpoint: truncated header".into());
        }
        let owned = buf.get_u64();
        let n = buf.get_u32() as usize;
        if buf.len() != n * 8 {
            return Err("jitter checkpoint: bad series length".into());
        }
        self.owned_elems = owned;
        self.series = (0..n).map(|_| buf.get_u64()).collect();
        Ok(())
    }
}

impl ShardedPlugin for Jitter {
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin> {
        let mut j = Jitter::new();
        j.shard = Some((shard, shards));
        Box::new(j)
    }

    fn take_partial(&mut self) -> Vec<u8> {
        let mut out = BytesMut::new();
        out.put_u64(self.owned_elems);
        out.to_vec()
    }

    fn merge_bin(&mut self, _s: u64, _e: u64, partials: Vec<Vec<u8>>) {
        let total: u64 = partials.iter().map(|p| (&p[..]).get_u64()).sum();
        self.series.push(total);
    }
}

/// Everything one pipeline run produces, in comparable form. The
/// byte blobs are the canonical outputs the issue's "byte-identical"
/// claim is made over.
#[derive(PartialEq, Debug)]
struct RunOutput {
    records: u64,
    pfx_bytes: Vec<u8>,
    rt_series: Vec<RtBinStats>,
    rt_errors: Vec<RtErrorStats>,
    stats_bytes: Vec<u8>,
    jitter_series: Vec<u64>,
    /// Every `rt.tables` + `rt.meta` payload, per partition, in offset
    /// order.
    mq_payloads: Vec<Vec<Vec<u8>>>,
}

fn drain_topic(mq: &Cluster, topic: &str) -> Vec<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    for part in 0..mq.partitions(topic).max(1) {
        let mut msgs = Vec::new();
        loop {
            let batch = mq.fetch(topic, part, msgs.len() as u64, 64);
            if batch.is_empty() {
                break;
            }
            msgs.extend(batch.into_iter().map(|m| m.payload));
        }
        out.push(msgs);
    }
    out
}

struct World {
    index: Arc<Index>,
    collectors: Vec<String>,
    ranges: Vec<bgp_types::Prefix>,
    horizon: u64,
    dir: PathBuf,
    /// The final archive, for replaying through a live feeder.
    manifest: Vec<broker::DumpMeta>,
}

fn build_world(seed: u64) -> World {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX);
    let topo = cp.topology().clone();
    // Monitor every announced range so the prefix-sharded plugin has
    // real work on every shard.
    let ranges: Vec<bgp_types::Prefix> = topo
        .nodes
        .iter()
        .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
        .collect();
    let specs = standard_collectors(&cp, 1, 1, 5, 1.0, seed);
    let collectors: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let dir = tmpdir(&format!("world{seed}"));
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let index = Index::shared();
    sim.attach_index(index.clone());
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(6)
        .enumerate()
    {
        sc.flap(100 + 173 * k as u64, 5, 700, n.asn, n.prefixes_v4[0].prefix);
    }
    sim.schedule(&sc);
    let horizon = 2 * 3600;
    sim.run_until(horizon);
    let manifest = sim.manifest().to_vec();
    World {
        index,
        collectors,
        ranges,
        horizon,
        dir,
        manifest,
    }
}

/// Run the plugin set sequentially (`workers == None`) or sharded.
fn run_once(world: &World, workers: Option<(usize, usize, usize)>) -> RunOutput {
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.horizon))
        .start();
    let mq = Cluster::shared();
    let mut pfx = PfxMonitor::new(world.ranges.iter().copied());
    let mut rts: Vec<RtPlugin> = world
        .collectors
        .iter()
        .map(|c| RtPlugin::new(c).with_queue(mq.clone(), 3))
        .collect();
    let mut stats = ElemCounter::new();
    let mut jitter = Jitter::new();

    let records = match workers {
        None => {
            let mut plugins: Vec<&mut dyn Plugin> = vec![&mut pfx, &mut stats, &mut jitter];
            for rt in rts.iter_mut() {
                plugins.push(rt);
            }
            run_pipeline(&mut stream, 300, &mut plugins)
        }
        Some((n, batch, queue)) => {
            let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut pfx, &mut stats, &mut jitter];
            for rt in rts.iter_mut() {
                plugins.push(rt);
            }
            ShardedRuntime::builder()
                .workers(n)
                .bin_size(300)
                .batch_records(batch)
                .queue_batches(queue)
                .build()
                .run(&mut stream, &mut plugins)
        }
    };

    let mut mq_payloads = drain_topic(&mq, "rt.tables");
    mq_payloads.extend(drain_topic(&mq, "rt.meta"));
    RunOutput {
        records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        rt_series: rts.iter().flat_map(|rt| rt.bin_series.clone()).collect(),
        rt_errors: rts.iter().map(|rt| rt.error_stats).collect(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
        jitter_series: jitter.series.clone(),
        mq_payloads,
    }
}

/// Last bin boundary strictly above every record of the archive —
/// the stop both the historical baseline and the live runs use, so
/// neither closes trailing empty bins the other does not.
fn stop_after_last_record(world: &World, bin: u64) -> u64 {
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.horizon))
        .start();
    let mut max = 0u64;
    while let Some(r) = stream.next_record() {
        max = max.max(r.timestamp);
    }
    (max / bin) * bin + bin
}

/// The sequential historical baseline over the final archive, stopped
/// at `stop` (the reference the live runs must reproduce bin for bin).
fn run_historical_until(world: &World, stop: u64) -> RunOutput {
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(world.horizon))
        .start();
    let mq = Cluster::shared();
    let mut pfx = PfxMonitor::new(world.ranges.iter().copied());
    let mut rts: Vec<RtPlugin> = world
        .collectors
        .iter()
        .map(|c| RtPlugin::new(c).with_queue(mq.clone(), 3))
        .collect();
    let mut stats = ElemCounter::new();
    let mut jitter = Jitter::new();
    let mut plugins: Vec<&mut dyn Plugin> = vec![&mut pfx, &mut stats, &mut jitter];
    for rt in rts.iter_mut() {
        plugins.push(rt);
    }
    let records = corsaro::run_pipeline_until(&mut stream, 300, stop, &mut plugins);
    let mut mq_payloads = drain_topic(&mq, "rt.tables");
    mq_payloads.extend(drain_topic(&mq, "rt.meta"));
    RunOutput {
        records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        rt_series: rts.iter().flat_map(|rt| rt.bin_series.clone()).collect(),
        rt_errors: rts.iter().map(|rt| rt.error_stats).collect(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
        jitter_series: jitter.series.clone(),
        mq_payloads,
    }
}

/// Supervisor settings for deterministic tests: a manual clock makes
/// backoff sleeps instantaneous, and the stall timeout is parked far
/// beyond any virtual time the backoff sleeps can accumulate (the
/// driver advances the *stream* clock, not this one) so no false
/// stall restarts pollute the `restarts` accounting.
fn test_supervisor_config() -> corsaro::SupervisorConfig {
    corsaro::SupervisorConfig {
        max_restarts: 10,
        backoff_base_ms: 1,
        backoff_max_ms: 8,
        stall_timeout_ms: u64::MAX / 4,
        clock: bsync::time::Clock::manual(0),
        seed: 0xC0FFEE,
    }
}

/// Translate the fault plan's pure-data crash schedule into the
/// runtime's chaos injection.
fn chaos_from(crash: &collector_sim::CrashPlan) -> corsaro::Chaos {
    corsaro::Chaos {
        kills: crash
            .kills
            .iter()
            .map(|k| corsaro::KillSpec {
                worker: k.worker,
                at_record: k.at_record,
                times: k.times,
            })
            .collect(),
        torn_checkpoints: crash.torn_checkpoints.clone(),
    }
}

/// Replay the archive through a faulty live feeder into a fresh index
/// and consume it with `run_live` at `workers` (under a [`Supervisor`]
/// when the plan carries a crash schedule); returns the same
/// comparable output as the historical runner plus the run report.
fn run_live_once(
    world: &World,
    workers: usize,
    plan: &collector_sim::FaultPlan,
    seed: u64,
    stop: u64,
) -> (RunOutput, corsaro::LiveRunReport) {
    use bgpstream::Clock;

    let live_index = Index::shared();
    let mut feeder =
        collector_sim::LiveFeeder::new(&world.manifest, live_index.clone(), plan, seed);
    let clock = Clock::manual(0);
    let horizon = feeder.horizon();
    let driver = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut t = 0u64;
            while !feeder.done() {
                t += 600;
                feeder.publish_until(t);
                clock.advance_to(t);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            clock.advance_to(horizon.saturating_add(1));
            feeder.stats()
        })
    };

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(1))
        .start();
    let mq = Cluster::shared();
    let mut pfx = PfxMonitor::new(world.ranges.iter().copied());
    let mut rts: Vec<RtPlugin> = world
        .collectors
        .iter()
        .map(|c| RtPlugin::new(c).with_queue(mq.clone(), 3))
        .collect();
    let mut stats = ElemCounter::new();
    let mut jitter = Jitter::new();
    let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut pfx, &mut stats, &mut jitter];
    for rt in rts.iter_mut() {
        plugins.push(rt);
    }
    let runtime = ShardedRuntime::builder()
        .workers(workers)
        .bin_size(300)
        .build();
    let report = if plan.crash.is_empty() {
        runtime
            .run_live(&mut stream, stop, None, &mut plugins)
            .expect("run_live")
    } else {
        corsaro::Supervisor::new(runtime)
            .with_config(test_supervisor_config())
            .with_chaos(chaos_from(&plan.crash))
            .run_live(&mut stream, stop, None, &mut plugins)
            .expect("supervised run_live")
    };
    let feeder_stats = driver.join().expect("feeder driver");
    assert!(feeder_stats.published > 0);
    assert!(!report.shutdown);
    assert!(report.bins_closed > 0, "live run must close bins");

    let mut mq_payloads = drain_topic(&mq, "rt.tables");
    mq_payloads.extend(drain_topic(&mq, "rt.meta"));
    let out = RunOutput {
        records: report.records,
        pfx_bytes: format!("{:?}", pfx.series).into_bytes(),
        rt_series: rts.iter().flat_map(|rt| rt.bin_series.clone()).collect(),
        rt_errors: rts.iter().map(|rt| rt.error_stats).collect(),
        stats_bytes: format!("{:?}", stats.series).into_bytes(),
        jitter_series: jitter.series.clone(),
        mq_payloads,
    };
    (out, report)
}

#[test]
fn run_live_output_is_byte_identical_to_historical_run() {
    // The PR 5 live-mode determinism contract: for every closed bin,
    // `run_live` over a faulty live replay of the archive produces
    // byte-identical plugin output (series and queue payloads) to the
    // sequential historical run over the final archive — across
    // worker counts and an injected fault schedule with delays,
    // stalls, out-of-order and duplicate publication.
    let world = build_world(83);
    let stop = stop_after_last_record(&world, 300);
    let baseline = run_historical_until(&world, stop);
    assert!(baseline.records > 0);
    let benign = collector_sim::FaultPlan::none();
    let faulty = collector_sim::FaultPlan {
        extra_delay: (0, 400),
        stalls: vec![collector_sim::Stall {
            start: 2000,
            duration: 1500,
            collector: Some(0),
        }],
        swap_prob: 0.25,
        duplicate_prob: 0.25,
        crash: collector_sim::CrashPlan::none(),
    };
    for (workers, plan, seed) in [
        (1usize, &benign, 7u64),
        (2, &faulty, 11),
        (4, &faulty, 13),
        (4, &benign, 17),
    ] {
        let (live, _report) = run_live_once(&world, workers, plan, seed, stop);
        assert_eq!(
            baseline, live,
            "live output diverged at workers={workers} seed={seed}"
        );
    }
    std::fs::remove_dir_all(&world.dir).ok();
}

#[test]
fn supervised_run_is_byte_identical_under_crash_schedules() {
    // The crash-safety contract: a supervised live run whose workers
    // are killed mid-bin (and whose checkpoint writes are torn) must
    // still produce byte-identical output to the uninterrupted
    // historical run — restarts recover from the last valid
    // checkpoint and replay the gap, so nothing is dropped or
    // duplicated. Kills use `times: 1` so the schedule never exhausts
    // the restart budget (degradation has its own test below).
    let world = build_world(83);
    let stop = stop_after_last_record(&world, 300);
    let baseline = run_historical_until(&world, stop);
    assert!(baseline.records > 0);
    let n = baseline.records;
    let kill = |worker: usize, at_record: u64| collector_sim::WorkerKill {
        worker,
        at_record,
        times: 1,
    };
    let schedules: Vec<(usize, collector_sim::CrashPlan)> = vec![
        // Single worker killed early: restore-from-scratch + replay.
        (
            1,
            collector_sim::CrashPlan {
                kills: vec![kill(0, n / 5)],
                torn_checkpoints: vec![],
            },
        ),
        // Two workers, kills on both plus a torn checkpoint write:
        // worker 0's first checkpoint is discarded, widening its
        // replay window.
        (
            2,
            collector_sim::CrashPlan {
                kills: vec![kill(0, n / 3), kill(1, 2 * n / 3)],
                torn_checkpoints: vec![(0, 1)],
            },
        ),
        // Restart storm: the same worker dies repeatedly at different
        // records while its neighbours keep running.
        (
            4,
            collector_sim::CrashPlan {
                kills: vec![
                    kill(2, n / 6),
                    kill(2, n / 3),
                    kill(2, n / 2),
                    kill(1, n / 4),
                ],
                torn_checkpoints: vec![(2, 2)],
            },
        ),
    ];
    for (workers, crash) in schedules {
        let expected_restarts = crash.kills.len() as u64;
        let plan = collector_sim::FaultPlan {
            crash: crash.clone(),
            ..collector_sim::FaultPlan::none()
        };
        let (live, report) = run_live_once(&world, workers, &plan, 11, stop);
        assert_eq!(
            report.restarts, expected_restarts,
            "every scheduled kill restarts exactly once at workers={workers}"
        );
        assert!(
            report.partial_bins.is_empty(),
            "no degradation under a times=1 schedule at workers={workers}"
        );
        assert_eq!(
            baseline, live,
            "supervised output diverged at workers={workers} crash={crash:?}"
        );
    }
    std::fs::remove_dir_all(&world.dir).ok();
}

#[test]
fn exhausted_restart_budget_degrades_to_partial_bins_without_wedging() {
    // A worker that keeps dying at the same record burns through the
    // restart budget; the supervisor must then mark it dead and keep
    // closing bins as `Partial` (synthesized empty slots) instead of
    // wedging the session.
    let world = build_world(83);
    let stop = stop_after_last_record(&world, 300);
    let baseline = run_historical_until(&world, stop);
    let budget = 2u32;
    let crash = collector_sim::CrashPlan {
        // times > max_restarts + 1: the kill re-fires on every replay
        // until the budget is gone.
        kills: vec![collector_sim::WorkerKill {
            worker: 1,
            at_record: baseline.records / 4,
            times: budget + 2,
        }],
        torn_checkpoints: vec![],
    };
    let live_index = Index::shared();
    let mut feeder = collector_sim::LiveFeeder::new(
        &world.manifest,
        live_index.clone(),
        &collector_sim::FaultPlan::none(),
        3,
    );
    let clock = bgpstream::Clock::manual(0);
    let horizon = feeder.horizon();
    let driver = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut t = 0u64;
            while !feeder.done() {
                t += 600;
                feeder.publish_until(t);
                clock.advance_to(t);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            clock.advance_to(horizon.saturating_add(1));
        })
    };
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(1))
        .start();
    let mut stats = ElemCounter::new();
    let mut jitter = Jitter::new();
    let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut stats, &mut jitter];
    let mut cfg = test_supervisor_config();
    cfg.max_restarts = budget;
    let report =
        corsaro::Supervisor::new(ShardedRuntime::builder().workers(2).bin_size(300).build())
            .with_config(cfg)
            .with_chaos(chaos_from(&crash))
            .run_live(&mut stream, stop, None, &mut plugins)
            .expect("degraded session still completes");
    driver.join().unwrap();
    assert_eq!(report.restarts as u32, budget, "budget fully spent");
    assert!(
        !report.partial_bins.is_empty(),
        "bins after degradation are marked partial"
    );
    // The session kept closing every bin (no wedge), and the stats
    // plugin — pinned to the surviving worker — lost nothing: its
    // series is still identical to a sequential run.
    let (seq_series, seq_jitter_len) = {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.horizon))
            .start();
        let mut stats = ElemCounter::new();
        let mut jitter = Jitter::new();
        corsaro::run_pipeline_until(
            &mut stream,
            300,
            stop,
            &mut [&mut stats as &mut dyn Plugin, &mut jitter],
        );
        (stats.series, jitter.series.len())
    };
    assert_eq!(report.bins_closed as usize, seq_series.len(), "no wedge");
    assert_eq!(stats.series, seq_series, "surviving worker lost nothing");
    assert_eq!(
        jitter.series.len(),
        seq_jitter_len,
        "degraded plugin still closes every bin, with partial data"
    );
    std::fs::remove_dir_all(&world.dir).ok();
}

/// A plugin whose shard 0 fork panics on its first owned elem —
/// simulating a plugin bug (not chaos injection), to pin the typed
/// error path and the pool-rebuild regression.
struct PanicOnShard0 {
    shard: Option<(usize, usize)>,
    seen: u64,
}

impl Plugin for PanicOnShard0 {
    fn name(&self) -> &'static str {
        "panic-on-shard0"
    }

    fn process_record(&mut self, record: &bgpstream::BgpStreamRecord) {
        for elem in record.elems() {
            let Some(prefix) = elem.prefix else { continue };
            if let Some((shard, shards)) = self.shard {
                if shard_of_prefix(&prefix, shards) != shard {
                    continue;
                }
                if shard == 0 {
                    panic!("plugin bug on shard 0");
                }
            }
            self.seen += 1;
        }
    }

    fn end_bin(&mut self, _s: u64, _e: u64) {}

    fn partitioning(&self) -> Partitioning {
        Partitioning::ByPrefix
    }
}

impl ShardedPlugin for PanicOnShard0 {
    fn fork(&self, shard: usize, shards: usize) -> Box<dyn ShardedPlugin> {
        Box::new(PanicOnShard0 {
            shard: Some((shard, shards)),
            seen: 0,
        })
    }

    fn take_partial(&mut self) -> Vec<u8> {
        Vec::new()
    }

    fn merge_bin(&mut self, _s: u64, _e: u64, _partials: Vec<Vec<u8>>) {}
}

#[test]
fn unsupervised_worker_panic_is_a_typed_error_and_does_not_poison_reruns() {
    // Regression: a worker panic mid-bin used to take the whole
    // process down (panic on join) and could leave the thread pool
    // poisoned for subsequent runs. `run_live` must instead return
    // `RuntimeError::WorkerPanicked`, tear the pool down cleanly, and
    // a fresh run right after must behave exactly as if the failed
    // run never happened.
    let world = build_world(29);
    let run = |poisonous: bool| {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.horizon))
            .start();
        let mut stats = ElemCounter::new();
        let mut bad = PanicOnShard0 {
            shard: None,
            seen: 0,
        };
        let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut stats];
        if poisonous {
            plugins.push(&mut bad);
        }
        let res = ShardedRuntime::builder()
            .workers(2)
            .bin_size(300)
            .build()
            .run_live(&mut stream, u64::MAX, None, &mut plugins);
        (res, stats.series)
    };
    let (res, _) = run(true);
    match res {
        Err(corsaro::RuntimeError::WorkerPanicked { worker: 0 }) => {}
        other => panic!("expected WorkerPanicked on worker 0, got {other:?}"),
    }
    // Same process, fresh runtime: the failed run must not have
    // leaked poisoned threads or channels.
    let (res, series) = run(false);
    let report = res.expect("clean rerun succeeds");
    assert!(report.records > 0);
    assert!(!series.is_empty());
    std::fs::remove_dir_all(&world.dir).ok();
}

#[test]
fn run_live_shutdown_flag_exits_cleanly() {
    // Cooperative shutdown: raising the flag mid-session must return
    // (no hang), with every already-closed bin merged.
    let world = build_world(29);
    // Small broker windows, so the half-published archive still
    // releases data before the stream starves.
    let live_index = Arc::new(Index::with_window(900));
    let mut feeder = collector_sim::LiveFeeder::new(
        &world.manifest,
        live_index.clone(),
        &collector_sim::FaultPlan::none(),
        1,
    );
    let clock = bgpstream::Clock::manual(0);
    // Publish only half the archive, then leave the stream starving:
    // without the shutdown flag, run_live would wait forever.
    feeder.publish_until(world.horizon / 2);
    clock.advance_to(world.horizon / 2);
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(1))
        .start();
    let stop_flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let raiser = {
        let flag = stop_flag.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        })
    };
    let mut stats = ElemCounter::new();
    let report = ShardedRuntime::builder()
        .workers(2)
        .bin_size(300)
        .build()
        .run_live(
            &mut stream,
            u64::MAX,
            Some(&stop_flag),
            &mut [&mut stats as &mut dyn ShardedPlugin],
        )
        .expect("run_live");
    raiser.join().unwrap();
    assert!(report.shutdown, "must report the cooperative exit");
    assert!(report.records > 0, "half the archive was published");
    std::fs::remove_dir_all(&world.dir).ok();
}

#[test]
fn sharded_outputs_are_byte_identical_to_sequential() {
    for seed in [11u64, 29] {
        let world = build_world(seed);
        let sequential = run_once(&world, None);
        assert!(sequential.records > 0, "world must produce records");
        assert!(
            !sequential.mq_payloads.concat().is_empty(),
            "rt plugins must publish"
        );
        // Worker counts {1, 2, 4} across queue/batch shapes from
        // maximally contended (1, 1) to coarse (512, 8).
        for (workers, batch, queue) in [
            (1, 1, 1),
            (1, 256, 4),
            (2, 1, 1),
            (2, 32, 2),
            (4, 1, 1),
            (4, 7, 1),
            (4, 256, 4),
            (4, 512, 8),
        ] {
            let sharded = run_once(&world, Some((workers, batch, queue)));
            assert_eq!(
                sequential, sharded,
                "outputs diverged at workers={workers} batch={batch} queue={queue} seed={seed}"
            );
        }
        std::fs::remove_dir_all(&world.dir).ok();
    }
}

#[test]
fn sharded_runtime_closes_empty_bins_like_the_sequential_runner() {
    // Bin bookkeeping parity on a sparse stream: gaps between records
    // must close one bin per elapsed interval in both runners.
    let world = build_world(47);
    let run = |workers: Option<(usize, usize, usize)>| {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.horizon))
            .start();
        let mut stats = ElemCounter::new();
        match workers {
            None => run_pipeline(&mut stream, 17, &mut [&mut stats]),
            Some((n, b, q)) => ShardedRuntime::builder()
                .workers(n)
                .bin_size(17)
                .batch_records(b)
                .queue_batches(q)
                .build()
                .run(&mut stream, &mut [&mut stats]),
        };
        stats.series
    };
    let seq = run(None);
    assert!(seq.len() > 10);
    for w in [1, 3] {
        assert_eq!(seq, run(Some((w, 64, 2))), "workers={w}");
    }
    std::fs::remove_dir_all(&world.dir).ok();
}

#[test]
fn run_until_consumes_exactly_what_the_sequential_runner_would() {
    // Stop-condition parity: `run_until` reads ahead in batches, so
    // it must hand the unconsumed tail back to the stream — a later
    // reader of the same stream sees exactly the records the
    // sequential `run_pipeline_until` would have left behind.
    let world = build_world(61);
    let stop = world.horizon / 2;
    let run = |workers: Option<usize>| {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(world.horizon))
            .start();
        let mut stats = ElemCounter::new();
        let n = match workers {
            None => corsaro::run_pipeline_until(&mut stream, 300, stop, &mut [&mut stats]),
            Some(w) => ShardedRuntime::builder()
                .workers(w)
                .bin_size(300)
                .batch_records(7) // force mid-batch stops
                .build()
                .run_until(
                    &mut stream,
                    stop,
                    &mut [&mut stats as &mut dyn ShardedPlugin],
                ),
        };
        let tail: Vec<u64> =
            std::iter::from_fn(|| stream.next_record().map(|r| r.timestamp)).collect();
        (n, stats.series, tail)
    };
    let (n_seq, series_seq, tail_seq) = run(None);
    assert!(
        n_seq > 0 && !tail_seq.is_empty(),
        "stop must split the stream"
    );
    for w in [1, 2, 4] {
        let (n, series, tail) = run(Some(w));
        assert_eq!(n, n_seq, "records processed, workers={w}");
        assert_eq!(series, series_seq, "series, workers={w}");
        assert_eq!(tail, tail_seq, "stream tail, workers={w}");
    }
    std::fs::remove_dir_all(&world.dir).ok();
}
