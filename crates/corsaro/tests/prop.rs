//! Property tests on the RT plugin: arbitrary record sequences must
//! never panic, and the reconstructed table must match a simple oracle
//! that replays announcements/withdrawals in order.

use std::collections::HashMap;
use std::net::IpAddr;

use bgp_types::{AsPath, Asn, Prefix};
use bgpstream::record::{DumpPosition, RecordStatus};
use bgpstream::{BgpStreamElem, BgpStreamRecord, ElemType};
use broker::DumpType;
use corsaro::rt::RtPlugin;
use corsaro::Plugin;
use proptest::prelude::*;

const VPS: [&str; 3] = ["10.0.0.1", "10.0.0.2", "10.0.0.3"];
const PREFIXES: [&str; 4] = ["11.0.0.0/16", "11.1.0.0/16", "11.2.0.0/16", "11.3.0.0/16"];

#[derive(Clone, Debug)]
enum Op {
    Announce { vp: usize, pfx: usize, origin: u32 },
    Withdraw { vp: usize, pfx: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0usize..4, 100u32..105).prop_map(|(vp, pfx, origin)| Op::Announce {
            vp,
            pfx,
            origin
        }),
        (0usize..3, 0usize..4).prop_map(|(vp, pfx)| Op::Withdraw { vp, pfx }),
    ]
}

fn elem(op: &Op, ts: u64) -> BgpStreamElem {
    let (vp, pfx, elem_type, path) = match op {
        Op::Announce { vp, pfx, origin } => (
            *vp,
            *pfx,
            ElemType::Announcement,
            Some(AsPath::from_sequence([65000 + *vp as u32, *origin])),
        ),
        Op::Withdraw { vp, pfx } => (*vp, *pfx, ElemType::Withdrawal, None),
    };
    BgpStreamElem {
        elem_type,
        time: ts,
        peer_address: VPS[vp].parse().unwrap(),
        peer_asn: Asn(65000 + vp as u32),
        prefix: Some(PREFIXES[pfx].parse().unwrap()),
        next_hop: None,
        as_path: path,
        communities: None,
        old_state: None,
        new_state: None,
    }
}

fn update_record(ts: u64, elems: Vec<BgpStreamElem>) -> BgpStreamRecord {
    BgpStreamRecord::new(
        "ris",
        "rrc00",
        DumpType::Updates,
        0,
        ts,
        DumpPosition::Middle,
        RecordStatus::Valid,
        elems,
    )
}

proptest! {
    #[test]
    fn rt_table_matches_sequential_oracle(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut rt = RtPlugin::new("rrc00");
        // Prime with an empty RIB so VPs come up.
        rt.process_record(&BgpStreamRecord::new(
            "ris", "rrc00", DumpType::Rib, 0, 0,
            DumpPosition::Only, RecordStatus::Valid, vec![],
        ));
        let mut oracle: HashMap<(IpAddr, Prefix), u32> = HashMap::new();
        for (k, op) in ops.iter().enumerate() {
            let ts = 10 + k as u64;
            rt.process_record(&update_record(ts, vec![elem(op, ts)]));
            match op {
                Op::Announce { vp, pfx, origin } => {
                    oracle.insert(
                        (VPS[*vp].parse().unwrap(), PREFIXES[*pfx].parse().unwrap()),
                        *origin,
                    );
                }
                Op::Withdraw { vp, pfx } => {
                    oracle.remove(&(
                        VPS[*vp].parse().unwrap(),
                        PREFIXES[*pfx].parse().unwrap(),
                    ));
                }
            }
        }
        rt.end_bin(0, 1_000_000);
        // Per-VP table sizes must equal the oracle's.
        for (i, vp) in VPS.iter().enumerate() {
            let ip: IpAddr = vp.parse().unwrap();
            let want = oracle.keys().filter(|(a, _)| *a == ip).count();
            prop_assert_eq!(rt.vp_table_size(ip), want, "vp {}", i);
        }
        // Diff accounting is bounded by elems processed.
        let total_diffs: u64 = rt.bin_series.iter().map(|b| b.diff_cells).sum();
        let total_elems: u64 = rt.bin_series.iter().map(|b| b.elems).sum();
        prop_assert!(total_diffs <= total_elems.max(1));
    }

    #[test]
    fn rt_never_panics_on_corrupt_interleavings(
        script in proptest::collection::vec((0u8..6, 0usize..3, 0usize..4), 0..80)
    ) {
        let mut rt = RtPlugin::new("rrc00");
        for (k, (kind, vp, pfx)) in script.iter().enumerate() {
            let ts = k as u64;
            let rec = match kind {
                0 => update_record(ts, vec![elem(&Op::Announce { vp: *vp, pfx: *pfx, origin: 9 }, ts)]),
                1 => update_record(ts, vec![elem(&Op::Withdraw { vp: *vp, pfx: *pfx }, ts)]),
                2 => BgpStreamRecord::new(
                    "ris", "rrc00", DumpType::Rib, ts, ts,
                    DumpPosition::Start, RecordStatus::Valid, vec![],
                ),
                3 => BgpStreamRecord::new(
                    "ris", "rrc00", DumpType::Rib, ts, ts,
                    DumpPosition::End, RecordStatus::Valid, vec![],
                ),
                4 => BgpStreamRecord::new(
                    "ris", "rrc00", DumpType::Updates, ts, ts,
                    DumpPosition::Middle, RecordStatus::CorruptedRecord, vec![],
                ),
                _ => BgpStreamRecord::new(
                    "ris", "rrc00", DumpType::Rib, ts, ts,
                    DumpPosition::Middle, RecordStatus::CorruptedRecord, vec![],
                ),
            };
            rt.process_record(&rec);
            if k % 7 == 6 {
                rt.end_bin(ts, ts + 1);
            }
        }
        rt.end_bin(1_000, 2_000);
        // Error probability stays a probability.
        let p = rt.error_stats.error_probability();
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
