//! Checkpoint round-trip determinism: for a random record prefix,
//! `checkpoint()` → fresh instance → `restore()` → continue with the
//! suffix must be **byte-identical** — partials and final checkpoint
//! alike — to the uninterrupted run. This is the property the
//! supervisor's restart-from-checkpoint path rides on, proven here
//! for every checkpointing plugin (`PfxMonitor`, `RtPlugin`,
//! `ElemCounter`) and every partitioning mode across shard counts
//! {1, 2, 4} — including mid-bin splits, where the checkpoint carries
//! in-flight bin state.

use bgp_types::{AsPath, Asn, Prefix};
use bgpstream::record::{DumpPosition, RecordStatus};
use bgpstream::{BgpStreamElem, BgpStreamRecord, ElemType};
use broker::DumpType;
use corsaro::runtime::{shard_of_peer, shard_of_prefix, ShardedPlugin};
use corsaro::{ElemCounter, Partitioning, PfxMonitor, RtPlugin};
use proptest::prelude::*;

const VPS: [&str; 3] = ["10.0.0.1", "10.0.0.2", "10.0.0.3"];
const PREFIXES: [&str; 4] = ["11.0.0.0/16", "11.1.0.0/16", "11.2.0.0/16", "11.3.0.0/16"];

#[derive(Clone, Debug)]
enum Op {
    Announce { vp: usize, pfx: usize, origin: u32 },
    Withdraw { vp: usize, pfx: usize },
    RibStart,
    RibEntry { vp: usize, pfx: usize, origin: u32 },
    RibEnd,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, 0usize..4, 100u32..105).prop_map(|(vp, pfx, origin)| Op::Announce {
            vp,
            pfx,
            origin
        }),
        (0usize..3, 0usize..4, 100u32..105).prop_map(|(vp, pfx, origin)| Op::Announce {
            vp,
            pfx,
            origin
        }),
        (0usize..3, 0usize..4).prop_map(|(vp, pfx)| Op::Withdraw { vp, pfx }),
        Just(Op::RibStart),
        (0usize..3, 0usize..4, 100u32..105).prop_map(|(vp, pfx, origin)| Op::RibEntry {
            vp,
            pfx,
            origin
        }),
        Just(Op::RibEnd),
    ]
}

fn elem(
    vp: usize,
    pfx: usize,
    elem_type: ElemType,
    path: Option<AsPath>,
    ts: u64,
) -> BgpStreamElem {
    BgpStreamElem {
        elem_type,
        time: ts,
        peer_address: VPS[vp].parse().unwrap(),
        peer_asn: Asn(65000 + vp as u32),
        prefix: Some(PREFIXES[pfx].parse().unwrap()),
        next_hop: None,
        as_path: path,
        communities: None,
        old_state: None,
        new_state: None,
    }
}

fn record(op: &Op, ts: u64) -> BgpStreamRecord {
    let (dump_type, position, elems) = match op {
        Op::Announce { vp, pfx, origin } => (
            DumpType::Updates,
            DumpPosition::Middle,
            vec![elem(
                *vp,
                *pfx,
                ElemType::Announcement,
                Some(AsPath::from_sequence([65000 + *vp as u32, *origin])),
                ts,
            )],
        ),
        Op::Withdraw { vp, pfx } => (
            DumpType::Updates,
            DumpPosition::Middle,
            vec![elem(*vp, *pfx, ElemType::Withdrawal, None, ts)],
        ),
        Op::RibStart => (DumpType::Rib, DumpPosition::Start, vec![]),
        Op::RibEntry { vp, pfx, origin } => (
            DumpType::Rib,
            DumpPosition::Middle,
            vec![elem(
                *vp,
                *pfx,
                ElemType::RibEntry,
                Some(AsPath::from_sequence([65000 + *vp as u32, *origin])),
                ts,
            )],
        ),
        Op::RibEnd => (DumpType::Rib, DumpPosition::End, vec![]),
    };
    BgpStreamRecord::new(
        "ris",
        "rrc00",
        dump_type,
        ts,
        ts,
        position,
        RecordStatus::Valid,
        elems,
    )
}

/// Feed one record to a shard instance exactly as the runtime's
/// worker loop would: mask per partitioning mode.
fn feed(
    plugin: &mut dyn ShardedPlugin,
    mode: Partitioning,
    shard: usize,
    shards: usize,
    rec: &BgpStreamRecord,
) {
    match mode {
        Partitioning::Pinned => plugin.process_record(rec),
        Partitioning::ByPrefix => {
            let mask: Vec<bool> = rec
                .elems()
                .iter()
                .map(|e| match &e.prefix {
                    None => true,
                    Some(p) => shard_of_prefix(p, shards) == shard,
                })
                .collect();
            plugin.process_sharded(rec, &mask);
        }
        Partitioning::ByPeer => {
            let mask: Vec<bool> = rec
                .elems()
                .iter()
                .map(|e| shard_of_peer(&e.peer_address, shards) == shard)
                .collect();
            plugin.process_sharded(rec, &mask);
        }
    }
}

/// Drive `records[from..to]` through the instance, closing a bin (and
/// collecting the partial) every `BIN_EVERY` records, mirroring what
/// an uninterrupted worker does. `partials` accumulates across calls
/// so the interrupted run's output concatenates seamlessly.
const BIN_EVERY: usize = 7;
const BIN: u64 = 100;

fn drive(
    plugin: &mut dyn ShardedPlugin,
    mode: Partitioning,
    shard: usize,
    shards: usize,
    records: &[BgpStreamRecord],
    from: usize,
    partials: &mut Vec<Vec<u8>>,
) {
    for (k, rec) in records.iter().enumerate().skip(from) {
        feed(plugin, mode, shard, shards, rec);
        if (k + 1) % BIN_EVERY == 0 {
            let start = (k / BIN_EVERY) as u64 * BIN;
            plugin.end_bin(start, start + BIN);
            partials.push(plugin.take_partial());
        }
    }
}

/// The property for one root plugin, one shard of `shards`: split the
/// record stream at `split`, checkpoint/restore across the split, and
/// compare everything observable against the uninterrupted instance.
fn roundtrip_one(
    root: &dyn ShardedPlugin,
    mode: Partitioning,
    shard: usize,
    shards: usize,
    records: &[BgpStreamRecord],
    split: usize,
) -> Result<(), TestCaseError> {
    // Uninterrupted reference.
    let mut alive = root.fork(shard, shards);
    let mut alive_partials = Vec::new();
    drive(
        &mut *alive,
        mode,
        shard,
        shards,
        records,
        0,
        &mut alive_partials,
    );

    // Interrupted: run to `split`, checkpoint, restore into a fresh
    // fork, continue.
    let mut first = root.fork(shard, shards);
    let mut restored_partials = Vec::new();
    for (k, rec) in records.iter().enumerate().take(split) {
        feed(&mut *first, mode, shard, shards, rec);
        if (k + 1) % BIN_EVERY == 0 {
            let start = (k / BIN_EVERY) as u64 * BIN;
            first.end_bin(start, start + BIN);
            restored_partials.push(first.take_partial());
        }
    }
    let ckpt = first.checkpoint();
    drop(first);
    let mut restored = root.fork(shard, shards);
    restored
        .restore(&ckpt)
        .map_err(|e| TestCaseError::fail(format!("restore failed: {e}")))?;
    prop_assert_eq!(
        restored.checkpoint(),
        ckpt,
        "restore must reproduce the checkpoint byte for byte"
    );
    drive(
        &mut *restored,
        mode,
        shard,
        shards,
        records,
        split,
        &mut restored_partials,
    );

    prop_assert_eq!(
        &restored_partials,
        &alive_partials,
        "bin partials diverged after restore (mode {:?}, shard {}/{}, split {})",
        mode,
        shard,
        shards,
        split
    );
    prop_assert_eq!(
        restored.checkpoint(),
        alive.checkpoint(),
        "final state diverged after restore"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_restore_is_byte_identical_to_an_uninterrupted_run(
        ops in proptest::collection::vec(arb_op(), 1..60),
        split_frac in 0u64..=100,
    ) {
        let records: Vec<BgpStreamRecord> = ops
            .iter()
            .enumerate()
            .map(|(k, op)| record(op, 10 + k as u64))
            .collect();
        // Any split point, including 0 (restore a fresh checkpoint)
        // and len (checkpoint at the very end) — and everything
        // mid-bin in between.
        let split = (records.len() as u64 * split_frac / 100) as usize;

        let ranges: Vec<Prefix> = PREFIXES.iter().map(|p| p.parse().unwrap()).collect();
        let pfx = PfxMonitor::new(ranges.iter().copied());
        let rt = RtPlugin::new("rrc00");
        let stats = ElemCounter::new();
        let roots: [(&dyn ShardedPlugin, Partitioning); 3] = [
            (&pfx, Partitioning::ByPrefix),
            (&rt, Partitioning::ByPeer),
            (&stats, Partitioning::Pinned),
        ];
        for (root, mode) in roots {
            for shards in [1usize, 2, 4] {
                let shard_set = if mode == Partitioning::Pinned { 0..1 } else { 0..shards };
                for shard in shard_set {
                    roundtrip_one(root, mode, shard, shards, &records, split)?;
                }
            }
        }
    }
}
