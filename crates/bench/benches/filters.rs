//! Criterion microbenchmarks for the stream-filtering additions: the
//! BMP codec (router-direct path must keep up with a live stream), the
//! AS-path regex matcher, and the elem filter set — plus the
//! trie-vs-linear prefix-filter ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgp_types::trie::PrefixMatch;
use bgp_types::{
    AsPath, Asn, BgpMessage, BgpUpdate, Community, CommunitySet, PathAttributes, Prefix, PrefixTrie,
};
use bgpstream::{AsPathRegex, BgpStreamElem, CommunityFilter, ElemType, Filters};
use bmp::{BmpMessage, BmpReader, PerPeerHeader};

fn sample_elem(k: u32) -> BgpStreamElem {
    BgpStreamElem {
        elem_type: ElemType::Announcement,
        time: 1_000_000 + k as u64,
        peer_address: "192.0.2.1".parse().unwrap(),
        peer_asn: Asn(65001 + k % 8),
        prefix: Some(Prefix::v4(
            std::net::Ipv4Addr::from(0x0b00_0000 + k * 256),
            24,
        )),
        next_hop: Some("192.0.2.1".parse().unwrap()),
        as_path: Some(AsPath::from_sequence([
            65001 + k % 8,
            3356 + k % 7,
            174,
            137 + k % 911,
        ])),
        communities: Some(CommunitySet::from_iter([Community::new(
            3356,
            (100 + k % 600) as u16,
        )])),
        old_state: None,
        new_state: None,
    }
}

fn bench_bmp_codec(c: &mut Criterion) {
    let msgs: Vec<BmpMessage> = (0..1000)
        .map(|k| {
            let e = sample_elem(k);
            BmpMessage::RouteMonitoring {
                peer: PerPeerHeader::global(e.peer_address, e.peer_asn, k, e.time as u32),
                update: BgpMessage::Update(BgpUpdate::announce(
                    vec![e.prefix.unwrap()],
                    PathAttributes::route(e.as_path.unwrap(), e.next_hop.unwrap()),
                )),
            }
        })
        .collect();
    let mut wire = Vec::new();
    for m in &msgs {
        wire.extend_from_slice(&m.encode());
    }
    let mut g = c.benchmark_group("bmp_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_1k_route_monitoring", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for m in &msgs {
                n += m.encode().len();
            }
            black_box(n)
        })
    });
    g.bench_function("decode_1k_route_monitoring", |b| {
        b.iter(|| {
            let (out, err) = BmpReader::new(black_box(&wire[..])).read_all();
            assert!(err.is_none());
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_aspath_regex(c: &mut Criterion) {
    let paths: Vec<Vec<u32>> = (0..1000u32)
        .map(|k| (0..8).map(|i| 100 + (k * 31 + i * 7) % 900).collect())
        .collect();
    let mut g = c.benchmark_group("aspath_regex");
    g.throughput(Throughput::Elements(paths.len() as u64));
    for (name, pat) in [
        ("literal_search", "_174_"),
        ("anchored_origin", "137$"),
        ("wildcard_chain", "^? * 174 * ?$"),
    ] {
        let re = AsPathRegex::parse(pat).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &paths {
                    if re.matches_tokens(black_box(p)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_filter_set(c: &mut Criterion) {
    let elems: Vec<BgpStreamElem> = (0..1000).map(sample_elem).collect();
    let mut g = c.benchmark_group("filter_set");
    g.throughput(Throughput::Elements(elems.len() as u64));

    let mut light = Filters::none();
    light.peer_asns.insert(Asn(65003));
    g.bench_function("peer_only", |b| {
        b.iter(|| {
            let n = elems.iter().filter(|e| light.matches(black_box(e))).count();
            black_box(n)
        })
    });

    let mut full = Filters::none();
    full.peer_asns.extend([Asn(65001), Asn(65003), Asn(65005)]);
    full.prefixes
        .push(("11.0.0.0/8".parse().unwrap(), PrefixMatch::MoreSpecific));
    full.communities.push(CommunityFilter::any_asn(300));
    full.as_paths.push(AsPathRegex::parse("_174_").unwrap());
    g.bench_function("combined", |b| {
        b.iter(|| {
            let n = elems.iter().filter(|e| full.matches(black_box(e))).count();
            black_box(n)
        })
    });
    g.finish();
}

/// Ablation: prefix membership via patricia trie vs linear scan over
/// the filter list — the reason `Filters` can afford many prefix
/// constraints only when backed by the trie used elsewhere (DESIGN.md
/// calls this out for pfxmonitor's range sets).
fn bench_prefix_filter_ablation(c: &mut Criterion) {
    let filter_prefixes: Vec<Prefix> = (0..512u32)
        .map(|k| Prefix::v4(std::net::Ipv4Addr::from(0x0a00_0000 + k * 65536), 16))
        .collect();
    let probes: Vec<Prefix> = (0..1000u32)
        .map(|k| Prefix::v4(std::net::Ipv4Addr::from(0x0a00_0000 + k * 4096), 24))
        .collect();

    let mut trie = PrefixTrie::new();
    for p in &filter_prefixes {
        trie.insert(*p, ());
    }

    let mut g = c.benchmark_group("prefix_filter_ablation");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("trie_512_filters", |b| {
        b.iter(|| {
            let n = probes
                .iter()
                .filter(|p| trie.longest_match(black_box(p)).is_some())
                .count();
            black_box(n)
        })
    });
    g.bench_function("linear_512_filters", |b| {
        b.iter(|| {
            let n = probes
                .iter()
                .filter(|p| filter_prefixes.iter().any(|f| f.contains(black_box(p))))
                .count();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bmp_codec,
    bench_aspath_regex,
    bench_filter_set,
    bench_prefix_filter_ablation
);
criterion_main!(benches);
