//! Broker-service benchmarks: what serving the broker costs.
//!
//! `queries_per_sec_local` pages a mixed historical query set through
//! an in-process [`LocalBroker`]; `queries_per_sec` pages the same
//! set through a [`RemoteBroker`] against a spawned [`BrokerService`]
//! (wire encode/decode, mq round trip, served view + page cache).
//! Both report elements = broker requests, so `rate_per_sec` is
//! queries per second. CI caps the served/local ratio with
//! `bench_gate --max-latency-ratio broker/queries_per_sec
//! broker/queries_per_sec_local` — both numbers come from the same
//! run, so the gate is host-speed independent.
//!
//! The group also emits `broker/poll_live_p50` and
//! `broker/poll_live_p99` — percentile round-trip latencies of served
//! live-cursor polls, measured sample by sample (a median-of-batches
//! bench cannot see tails). CI caps p99/p50: admission control and
//! the page cache must keep the tail a bounded multiple of the
//! median, not a timeout-and-retry cliff.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgpstream_repro::broker::{
    BrokerClient, BrokerService, DumpMeta, DumpType, Index, LocalBroker, Query, ReleasePolicy,
    RemoteBroker, ServiceConfig,
};
use bgpstream_repro::collector_sim::page_history;
use bgpstream_repro::mq::Cluster;

/// A day of metadata: two collectors, 300 s update dumps plus
/// periodic RIBs — enough rows that a window scan does real work.
fn day_index() -> Arc<Index> {
    let idx = Arc::new(Index::with_window(3600));
    for (project, collector, rib_every) in
        [("ris", "rrc00", 8 * 3600), ("routeviews", "rv2", 2 * 3600)]
    {
        for start in (0..24 * 3600).step_by(300) {
            idx.register(DumpMeta {
                project: project.into(),
                collector: collector.into(),
                dump_type: DumpType::Updates,
                interval_start: start,
                duration: 300,
                path: PathBuf::from(format!("/a/{collector}/u.{start}.mrt")),
                available_at: start + 120,
                size: 1 << 20,
            });
            if start % rib_every == 0 {
                idx.register(DumpMeta {
                    project: project.into(),
                    collector: collector.into(),
                    dump_type: DumpType::Rib,
                    interval_start: start,
                    duration: 0,
                    path: PathBuf::from(format!("/a/{collector}/r.{start}.mrt")),
                    available_at: start + 120,
                    size: 1 << 24,
                });
            }
        }
    }
    idx.advance_watermark(u64::MAX);
    idx
}

/// The tenant mix: full-day sweeps, scoped sub-windows, filtered
/// shapes — what a population of analyses asks concurrently.
fn query_set() -> Vec<Query> {
    let mut queries = vec![Query {
        start: 0,
        end: Some(24 * 3600),
        ..Default::default()
    }];
    for k in 0..4u64 {
        queries.push(Query {
            start: k * 6 * 3600,
            end: Some((k + 1) * 6 * 3600),
            dump_types: vec![DumpType::Updates],
            ..Default::default()
        });
    }
    queries.push(Query {
        projects: vec!["ris".into()],
        start: 3 * 3600,
        end: Some(9 * 3600),
        ..Default::default()
    });
    queries.push(Query {
        collectors: vec!["rv2".into()],
        dump_types: vec![DumpType::Rib],
        start: 0,
        end: Some(24 * 3600),
        ..Default::default()
    });
    queries
}

fn page_all(client: &Arc<dyn BrokerClient>, queries: &[Query]) -> u64 {
    let mut requests = 0;
    for q in queries {
        requests += page_history(client, q).expect("bench page").requests;
    }
    requests
}

/// Append one line in the vendored-criterion mini-JSON schema for a
/// hand-measured number (the percentile latencies below), so
/// `bench_gate` reads it exactly like a `bench_function` result.
fn emit_mini_json(group: &str, bench: &str, ns_per_iter: f64) {
    println!("{group}/{bench}: {ns_per_iter:.0} ns/iter");
    if let Ok(path) = std::env::var("CRITERION_MINI_JSON") {
        use std::io::Write as _;
        let line = format!(
            "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"ns_per_iter\":{ns_per_iter:.1},\
             \"throughput_kind\":\"none\",\"throughput_per_iter\":0,\
             \"rate_per_sec\":0.0,\"rate_unit\":\"none\"}}"
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn bench_broker(c: &mut Criterion) {
    let index = day_index();
    let queries = query_set();
    let local: Arc<dyn BrokerClient> = LocalBroker::shared(index.clone());
    let requests_per_pass = page_all(&local, &queries);

    let cluster = Cluster::shared();
    let handle = BrokerService::new(cluster.clone(), index, ServiceConfig::default()).spawn();
    let remote: Arc<dyn BrokerClient> = Arc::new(RemoteBroker::new(cluster, "bench"));

    let mut g = c.benchmark_group("broker");
    g.throughput(Throughput::Elements(requests_per_pass));
    g.bench_function("queries_per_sec_local", |b| {
        b.iter(|| black_box(page_all(&local, &queries)))
    });
    g.bench_function("queries_per_sec", |b| {
        b.iter(|| black_box(page_all(&remote, &queries)))
    });
    g.finish();

    // Tail latency of served live polls, one round trip per sample.
    let lease = remote
        .open_live(&Query::default(), ReleasePolicy::Watermark, None)
        .expect("bench lease");
    const SAMPLES: usize = 2000;
    let mut ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    for k in 0..SAMPLES {
        let start = std::time::Instant::now();
        black_box(remote.poll_live(lease, k as u64).expect("bench poll"));
        ns.push(start.elapsed().as_nanos() as f64);
    }
    remote.close_lease(lease).expect("bench close");
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    emit_mini_json("broker", "poll_live_p50", ns[SAMPLES / 2]);
    emit_mini_json("broker", "poll_live_p99", ns[SAMPLES * 99 / 100]);

    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_broker
}
criterion_main!(benches);
