//! Criterion microbenchmarks: MRT/BGP wire codec throughput and the
//! prefix trie (the per-record costs that dominate stream processing).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgp_types::trie::PrefixMatch;
use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, PrefixTrie};
use mrt::{Bgp4mp, MrtReader, MrtRecord, MrtWriter};

fn sample_update(k: u32) -> MrtRecord {
    let mut attrs = PathAttributes::route(
        AsPath::from_sequence([65001, 3356 + k % 7, 174, 137 + k % 911]),
        "192.0.2.1".parse().unwrap(),
    );
    attrs
        .communities
        .insert(bgp_types::Community::new(3356, 100 + (k % 50) as u16));
    let prefix = Prefix::v4(std::net::Ipv4Addr::from(0x0b00_0000 + k * 256), 24);
    MrtRecord::bgp4mp(
        1_000_000 + k,
        Bgp4mp::Message {
            peer_asn: Asn(65001),
            local_asn: Asn(12654),
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.254".parse().unwrap(),
            message: BgpMessage::Update(BgpUpdate::announce(vec![prefix], attrs)),
        },
    )
}

fn bench_mrt_codec(c: &mut Criterion) {
    let records: Vec<MrtRecord> = (0..1000).map(sample_update).collect();
    let mut file = Vec::new();
    {
        let mut w = MrtWriter::new(&mut file);
        for r in &records {
            w.write(r).unwrap();
        }
    }
    let mut g = c.benchmark_group("mrt_codec");
    g.throughput(Throughput::Bytes(file.len() as u64));
    g.bench_function("encode_1k_updates", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(file.len());
            let mut w = MrtWriter::new(&mut buf);
            for r in &records {
                w.write(black_box(r)).unwrap();
            }
            black_box(buf.len())
        })
    });
    g.bench_function("decode_1k_updates", |b| {
        b.iter(|| {
            let (recs, err) = MrtReader::new(black_box(&file[..])).read_all();
            assert!(err.is_none());
            black_box(recs.len())
        })
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for k in 0u32..10_000 {
        trie.insert(
            Prefix::v4(std::net::Ipv4Addr::from(0x0b00_0000 + k * 1024), 22),
            k,
        );
    }
    let queries: Vec<Prefix> = (0u32..1024)
        .map(|k| Prefix::v4(std::net::Ipv4Addr::from(0x0b00_0000 + k * 7919), 32))
        .collect();
    let mut g = c.benchmark_group("prefix_trie");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("longest_match_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                if trie.longest_match(black_box(q)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("match_any_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                if trie.matches(black_box(q), PrefixMatch::Any) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mrt_codec, bench_trie
}
criterion_main!(benches);
