//! Criterion macrobenchmarks over the full pipeline: the §3.3.4
//! sorting claim (multi-way merge vs raw sequential read) and
//! end-to-end stream consumption.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::DataInterface;
use bgpstream_repro::mrt::MrtReader;
use bgpstream_repro::worlds;

struct Archive {
    world: worlds::World,
    files: Vec<std::path::PathBuf>,
    bytes: u64,
}

fn build_archive() -> Archive {
    let dir = worlds::scratch_dir("bench-pipeline");
    let mut world = worlds::quickstart(dir, 99);
    world.sim.run_until(3600);
    let files: Vec<_> = world
        .sim
        .manifest()
        .iter()
        .map(|m| m.path.clone())
        .collect();
    let bytes = world.sim.stats().bytes;
    Archive {
        world,
        files,
        bytes,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let archive = build_archive();
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(archive.bytes));

    // Baseline: raw MRT parse of every file, no sorting.
    g.bench_function("raw_sequential_read", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for path in &archive.files {
                let bytes = std::fs::read(path).unwrap();
                let (recs, err) = MrtReader::new(&bytes[..]).read_all();
                assert!(err.is_none());
                n += recs.len() as u64;
            }
            black_box(n)
        })
    });

    // Full sorted stream: broker windows + overlap groups + k-way
    // merge + elem extraction. The §3.3.4 claim is that this costs
    // little more than the raw read.
    g.bench_function("sorted_stream", |b| {
        b.iter(|| {
            let mut stream = BgpStream::builder()
                .data_interface(DataInterface::Broker(archive.world.index.clone()))
                .interval(0, Some(3600))
                .start();
            let mut n = 0u64;
            while let Some(rec) = stream.next_record() {
                n += 1 + black_box(rec.elems().len() as u64);
            }
            black_box(n)
        })
    });
    g.finish();

    std::fs::remove_dir_all(&archive.world.dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
