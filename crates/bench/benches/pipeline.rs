//! Criterion macrobenchmarks over the full pipeline: the §3.3.4
//! sorting claim (multi-way merge vs raw sequential read), end-to-end
//! stream consumption, the compiled-filter pushdown (`filtered_stream`
//! vs `sorted_stream` — the PR 4 lazy-decode claim), and the sharded
//! consumer runtime against the sequential plugin pipeline
//! (`sequential_plugins` vs `sharded_stream` — the PR 3 scaling
//! claim).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgpstream_repro::bgp_types::trie::PrefixMatch;
use bgpstream_repro::bgp_types::Prefix;
use bgpstream_repro::bgpstream::{BgpStream, ElemType};
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{run_pipeline, ElemCounter, PfxMonitor, Plugin, RtPlugin};
use bgpstream_repro::mrt::{ChunkedReader, MrtReader, ParDecoder};
use bgpstream_repro::worlds;

struct Archive {
    world: worlds::World,
    files: Vec<std::path::PathBuf>,
    bytes: u64,
}

fn build_archive() -> Archive {
    let dir = worlds::scratch_dir("bench-pipeline");
    let mut world = worlds::quickstart(dir, 99);
    world.sim.run_until(3600);
    let files: Vec<_> = world
        .sim
        .manifest()
        .iter()
        .map(|m| m.path.clone())
        .collect();
    let bytes = world.sim.stats().bytes;
    Archive {
        world,
        files,
        bytes,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut archive = build_archive();
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(archive.bytes));

    // Baseline: raw MRT parse of every file, no sorting.
    g.bench_function("raw_sequential_read", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for path in &archive.files {
                let bytes = std::fs::read(path).unwrap();
                let (recs, err) = MrtReader::new(&bytes[..]).read_all();
                assert!(err.is_none());
                n += recs.len() as u64;
            }
            black_box(n)
        })
    });

    // Full sorted stream: broker windows + overlap groups + k-way
    // merge + elem extraction. The §3.3.4 claim is that this costs
    // little more than the raw read.
    g.bench_function("sorted_stream", |b| {
        b.iter(|| {
            let mut stream = BgpStream::builder()
                .broker_client(LocalBroker::shared(archive.world.index.clone()))
                .interval(0, Some(3600))
                .start();
            let mut n = 0u64;
            while let Some(rec) = stream.next_record() {
                n += 1 + black_box(rec.elems().len() as u64);
            }
            black_box(n)
        })
    });

    // Filter pushdown: the same archive consumed through a selective
    // filter set ("this prefix's subtree, announcements only" — the
    // interactive-query shape the paper's users run). The compiled
    // prefilter rejects most records from their raw bytes, before any
    // MrtBody/attribute allocation; CI gates this at ≥2x faster than
    // the unfiltered sorted_stream above (bench_gate --min-speedup,
    // min_cores 1 — no parallelism involved, so it never self-skips).
    let target = archive
        .world
        .sim
        .control_plane()
        .topology()
        .nodes
        .iter()
        .find_map(|n| n.prefixes_v4.first().map(|p| p.prefix))
        .expect("bench world announces at least one prefix");
    g.bench_function("filtered_stream", |b| {
        b.iter(|| {
            let mut stream = BgpStream::builder()
                .broker_client(LocalBroker::shared(archive.world.index.clone()))
                .interval(0, Some(3600))
                .filter_prefix(target, PrefixMatch::MoreSpecific)
                .filter_elem_type(ElemType::Announcement)
                .start();
            let mut n = 0u64;
            while let Some(rec) = stream.next_record() {
                n += 1 + black_box(rec.elems().len() as u64);
            }
            black_box(n)
        })
    });
    // Live tailing: the same archive consumed through the live-mode
    // machinery — a LiveFeeder re-publishing into a fresh index
    // (truthful watermark), a watermark-released LiveCursor, and the
    // non-blocking batch interface — publication and consumption
    // interleaved window by window on one thread, so the measurement
    // is pure publication→delivery cost with no sleeps. CI gates this
    // against sorted_stream with `bench_gate --max-latency-ratio`:
    // the live path may cost at most a small factor over the
    // historical read of the same bytes.
    let manifest = archive.world.sim.manifest().to_vec();
    g.bench_function("live_tail", |b| {
        use bgpstream_repro::bgpstream::{BatchStep, Clock};
        use bgpstream_repro::broker::Index;
        use bgpstream_repro::collector_sim::{FaultPlan, LiveFeeder};

        b.iter(|| {
            let index = std::sync::Arc::new(Index::with_window(900));
            let mut feeder = LiveFeeder::new(&manifest, index.clone(), &FaultPlan::none(), 1);
            let clock = Clock::manual(0);
            let mut stream = BgpStream::builder()
                .broker_client(LocalBroker::shared(index))
                .live(0)
                .watermark_release()
                .clock(clock.clone())
                .poll_interval(std::time::Duration::from_micros(10))
                .start();
            let horizon = feeder.horizon().saturating_add(1);
            let mut t = 0u64;
            let mut n = 0u64;
            loop {
                if !feeder.done() {
                    t += 900;
                    feeder.publish_until(t);
                    clock.advance_to(t);
                } else {
                    clock.advance_to(horizon);
                }
                loop {
                    match stream.next_batch_step(256) {
                        BatchStep::Records(recs) => {
                            for rec in recs {
                                n += 1 + black_box(rec.elems().len() as u64);
                            }
                        }
                        BatchStep::Idle { released_through } => {
                            if feeder.done() && released_through > horizon {
                                return black_box(n);
                            }
                            break;
                        }
                        BatchStep::End => return black_box(n),
                    }
                }
            }
        })
    });
    g.finish();
    std::fs::remove_dir_all(&archive.world.dir).ok();

    // Consumer scaling: a realistic standing-plugin set (several
    // prefix monitors, per-collector routing tables, stats) driven by
    // the sequential runner vs the sharded runtime at 4 workers, over
    // a heavier archive (bigger topology, 3 collectors, an outage
    // episode) where plugin work dominates the stream read. The read
    // is identical in both; the plugins are the work being spread
    // out. On a multi-core host `sharded_stream` should run ≥2x
    // faster than `sequential_plugins` (CI enforces this via
    // `bench_gate --min-speedup`); a single-core host can only
    // measure the runtime's overhead, so the gate skips itself there.
    let horizon = 4 * 3600;
    let dir = worlds::scratch_dir("bench-sharded");
    let mut world = worlds::outage_scenario(dir.clone(), 99, horizon, 1);
    world.sim.run_until(horizon);
    let ranges: Vec<Prefix> = world
        .sim
        .control_plane()
        .topology()
        .nodes
        .iter()
        .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
        .collect();
    let bytes = world.sim.stats().bytes;
    let make_stream = |world: &worlds::World| {
        BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .interval(0, Some(horizon))
            .start()
    };
    // 6 monitors watching overlapping slices of the address space +
    // one RT plugin per collector + elem stats.
    let monitors = |ranges: &[Prefix]| -> Vec<PfxMonitor> {
        (0..6)
            .map(|k| PfxMonitor::new(ranges.iter().skip(k % 3).copied()))
            .collect()
    };

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("sequential_plugins", |b| {
        b.iter(|| {
            let mut stream = make_stream(&world);
            let mut pfx = monitors(&ranges);
            let mut rts: Vec<RtPlugin> =
                world.collectors.iter().map(|c| RtPlugin::new(c)).collect();
            let mut stats = ElemCounter::new();
            let mut plugins: Vec<&mut dyn Plugin> = vec![&mut stats];
            plugins.extend(pfx.iter_mut().map(|p| p as &mut dyn Plugin));
            plugins.extend(rts.iter_mut().map(|p| p as &mut dyn Plugin));
            let n = run_pipeline(&mut stream, 300, &mut plugins);
            black_box((n, stats.total_elems()))
        })
    });

    g.bench_function("sharded_stream", |b| {
        let runtime = ShardedRuntime::builder().workers(4).bin_size(300).build();
        b.iter(|| {
            let mut stream = make_stream(&world);
            let mut pfx = monitors(&ranges);
            let mut rts: Vec<RtPlugin> =
                world.collectors.iter().map(|c| RtPlugin::new(c)).collect();
            let mut stats = ElemCounter::new();
            let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut stats];
            plugins.extend(pfx.iter_mut().map(|p| p as &mut dyn ShardedPlugin));
            plugins.extend(rts.iter_mut().map(|p| p as &mut dyn ShardedPlugin));
            let n = runtime.run(&mut stream, &mut plugins);
            black_box((n, stats.total_elems()))
        })
    });

    // Filter pushdown under the sharded runtime, over the heavier
    // 3-collector archive: the stream is scoped to one monitored
    // range up front, so the prefilter rejects most records before
    // decode and the workers see mostly elem-less envelopes. Measures
    // how the selective-query shape composes with fan-out (not gated:
    // the plugin mix differs from sharded_stream's full-feed run).
    let filter_range = ranges.first().copied().expect("outage world has ranges");
    g.bench_function("filtered_stream_sharded", |b| {
        let runtime = ShardedRuntime::builder().workers(4).bin_size(300).build();
        b.iter(|| {
            let mut stream = BgpStream::builder()
                .broker_client(LocalBroker::shared(world.index.clone()))
                .interval(0, Some(horizon))
                .filter_prefix(filter_range, PrefixMatch::Any)
                .start();
            let mut pfx = monitors(&ranges);
            let mut stats = ElemCounter::new();
            let mut plugins: Vec<&mut dyn ShardedPlugin> = vec![&mut stats];
            plugins.extend(pfx.iter_mut().map(|p| p as &mut dyn ShardedPlugin));
            let n = runtime.run(&mut stream, &mut plugins);
            black_box((n, stats.total_elems()))
        })
    });
    g.finish();

    std::fs::remove_dir_all(&dir).ok();

    // Parallel record-boundary decode (PR 8): identical decode-heavy
    // RIB bytes through the streaming sequential reader vs the
    // ParDecoder pipeline (frame → chunk fan-out → in-order merge) at
    // 4 workers. Framing is 12 header bytes per record; the work being
    // spread is attribute/NLRI parsing, so on a multi-core host
    // `parallel_decode` should run ≥2x faster than `sequential_decode`
    // (CI enforces this via `bench_gate --min-speedup`; a single-core
    // host can only measure pool overhead, so the gate skips itself
    // there).
    let bytes = decode_archive_bytes();
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("sequential_decode", |b| {
        b.iter(|| {
            let mut r = ChunkedReader::from_bytes(bytes.clone());
            let mut n = 0u64;
            while let Some(item) = r.next() {
                n += item.expect("bench archive is clean").timestamp as u64 & 1;
            }
            black_box(n)
        })
    });
    g.bench_function("parallel_decode", |b| {
        b.iter(|| {
            let mut d = ParDecoder::decode_records(ChunkedReader::from_bytes(bytes.clone()), 4);
            let mut n = 0u64;
            while let Some(item) = d.next() {
                n += item.expect("bench archive is clean").timestamp as u64 & 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

/// A decode-dominated archive: one peer index table and many RIB rows
/// with multi-entry attribute sets (AS paths, communities), so
/// per-record parse cost dwarfs the 12-byte framing scan.
fn decode_archive_bytes() -> Vec<u8> {
    use bgpstream_repro::bgp_types::{AsPath, Asn, Community, PathAttributes};
    use bgpstream_repro::mrt::table_dump_v2::TableDumpV2;
    use bgpstream_repro::mrt::{MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRow};

    let peers = 8u16;
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    w.write(&MrtRecord::table_dump_v2(
        0,
        TableDumpV2::PeerIndexTable(PeerIndexTable {
            collector_bgp_id: 1,
            view_name: String::new(),
            peers: (0..peers)
                .map(|i| PeerEntry {
                    bgp_id: i as u32,
                    ip: format!("192.0.2.{}", i + 1).parse().unwrap(),
                    asn: Asn(65000 + i as u32),
                })
                .collect(),
        }),
    ))
    .unwrap();
    for seq in 0..6_000u32 {
        let entries = (0..peers)
            .map(|peer_index| {
                let mut attrs = PathAttributes::route(
                    AsPath::from_sequence([
                        65000 + peer_index as u32,
                        3356,
                        1299,
                        174,
                        6939,
                        137 + seq % 31,
                    ]),
                    "192.0.2.1".parse().unwrap(),
                );
                attrs
                    .communities
                    .insert(Community::new(3356, (seq % 512) as u16));
                attrs
                    .communities
                    .insert(Community::new(1299, (40 + seq % 7) as u16));
                RibEntry {
                    peer_index,
                    originated_time: 1,
                    attrs,
                }
            })
            .collect();
        w.write(&MrtRecord::table_dump_v2(
            1,
            TableDumpV2::RibRow(RibRow {
                sequence: seq,
                prefix: format!("10.{}.{}.0/24", seq / 250, seq % 250)
                    .parse()
                    .unwrap(),
                entries,
            }),
        ))
        .unwrap();
    }
    buf
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
