//! Criterion benchmarks for the RIB layer (PR 10): folding a full
//! archive into Loc-RIB state (`rib/fold_throughput`), and the
//! time-travel claim — answering `RibQuery::at(T)` from a sealed
//! snapshot plus a bounded event delta (`rib/time_travel_query`) must
//! beat replaying the whole journal from genesis
//! (`rib/full_replay`). CI gates the latter pair at >=5x via
//! `bench_gate --min-speedup` (same-run ratio, no parallelism, never
//! self-skips).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::rib::{MemoryRibStore, RibFold, RibQuery, RibStore, RibTable};
use bgpstream_repro::topology::events::Scenario;
use bgpstream_repro::worlds;

const BIN: u64 = 300;
const SNAPSHOT_EVERY: u64 = 900;
const HORIZON: u64 = 3 * 3600;

fn mk_stream(world: &worlds::World) -> BgpStream {
    BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(HORIZON))
        .start()
}

fn bench_rib(c: &mut Criterion) {
    let dir = worlds::scratch_dir("bench-rib");
    let mut world = worlds::quickstart(dir, 77);
    // Pile heavy route flapping on top of the quickstart scenario:
    // the time-travel claim is about churny archives, where the
    // journal dwarfs the table and a from-genesis replay drowns in
    // updates that a sealed snapshot has already absorbed.
    {
        let topo = world.sim.control_plane().topology().clone();
        let mut sc = Scenario::new();
        for (k, n) in topo
            .nodes
            .iter()
            .filter(|n| !n.prefixes_v4.is_empty())
            .enumerate()
        {
            for (j, p) in n.prefixes_v4.iter().take(2).enumerate() {
                sc.flap(60 + 17 * k as u64 + 7 * j as u64, 32, 300, n.asn, p.prefix);
            }
        }
        world.sim.schedule(&sc);
    }
    world.sim.run_until(HORIZON);
    let bytes = world.sim.stats().bytes;

    let mut g = c.benchmark_group("rib");
    g.throughput(Throughput::Bytes(bytes));

    // The fold hot path: full sorted stream -> per-(collector, peer)
    // Loc-RIB state, journal + sealed snapshots published per bin.
    g.bench_function("fold_throughput", |b| {
        b.iter(|| {
            let store = MemoryRibStore::shared();
            let mut fold = RibFold::new(SNAPSHOT_EVERY).with_store(store.clone());
            let mut stream = mk_stream(&world);
            let stats = fold.ingest(&mut stream, BIN);
            fold.finish();
            black_box((stats.records, store.event_count()))
        })
    });

    // One folded store shared by the query benches: what a long-lived
    // service holds after ingesting the archive.
    let store = MemoryRibStore::shared();
    let mut fold = RibFold::new(SNAPSHOT_EVERY).with_store(store.clone());
    let mut stream = mk_stream(&world);
    fold.ingest(&mut stream, BIN);
    fold.finish();
    // Query late in the archive: the worst case for a replay (longest
    // journal prefix), the typical case for snapshot+delta (one
    // sealed frame + under one cadence worth of events).
    let t = HORIZON - 300;

    // The old answer: replay the whole journal from genesis.
    g.bench_function("full_replay", |b| {
        b.iter(|| {
            let mut table = RibTable::new();
            for ev in store.events_in(0, t) {
                table.apply(&ev);
            }
            black_box(table.view(t).encode().len())
        })
    });

    // The PR 10 answer: nearest snapshot <= T plus the event delta.
    g.bench_function("time_travel_query", |b| {
        b.iter(|| {
            let view = RibQuery::new()
                .at(t)
                .table(&*store)
                .expect("below watermark");
            black_box(view.encode().len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_rib);
criterion_main!(benches);
