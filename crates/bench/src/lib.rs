//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md's experiment index and EXPERIMENTS.md for
//! paper-vs-measured records). Absolute numbers come from the
//! simulated substrate, so the binaries print the *shape* quantities
//! the paper reports: who wins, by what factor, where the crossovers
//! and spikes sit.
//!
//! Scale is controlled with the `BENCH_SCALE` environment variable
//! (default `1`, floats allowed): horizons, episode counts and
//! topology sizes multiply by it.

#![forbid(unsafe_code)]

/// The scale factor from `BENCH_SCALE` (default 1.0).
pub fn scale() -> f64 {
    let s: f64 = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    s.max(0.1)
}

/// Scale an integer quantity.
pub fn scaled(base: u64) -> u64 {
    ((base as f64) * scale()).round() as u64
}

/// Print a standard header naming the experiment.
pub fn header(id: &str, what: &str) {
    println!("### {id} — {what}");
    println!(
        "### BENCH_SCALE={} (set the env var to scale the workload)",
        scale()
    );
}

/// Render a one-line ASCII sparkline for a series (for quick visual
/// inspection of spikes/dips in terminal output).
pub fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|v| GLYPHS[((v * 7) / max) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0, 5, 10]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn scale_default_is_one() {
        // Only meaningful when BENCH_SCALE is unset in the test env.
        if std::env::var("BENCH_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(scaled(100), 100);
        }
    }
}
