//! Figure 10 — visible prefixes of a country during government-ordered
//! outages (the Iraq June-July 2015 case study).
//!
//! Full §6.2 pipeline: RT plugins per collector → queue → sync server
//! → per-country and per-AS outage consumers. Paper shape: a series of
//! ~3-hour national outages visible as sharp dips of the country's
//! visible-prefix count, mirrored in the top ISPs' per-AS series.

use bench::{header, scaled, sparkline};
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::consumers::{GeoMap, GlobalView, OutageConsumer};
use bgpstream_repro::corsaro::codec::{decode_meta, RtMessage};
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::mq::{Cluster, SyncPolicy, SyncServer};
use bgpstream_repro::worlds;

fn main() {
    header("Figure 10", "per-country / per-AS outage detection");
    let dir = worlds::scratch_dir("fig10");
    let horizon = scaled(3 * 86_400);
    let episodes = scaled(6) as usize;
    // Scenario strength is seed-dependent: the outage dip must exceed
    // the consumer's 80%-of-baseline threshold, and the generated
    // topology decides how much of the country the scripted top ISPs
    // carry. Under vendor/rand's xoshiro stream, seed 2 yields a ~38%
    // dip (the original seed 10 only ~15%, below threshold). If this
    // assert starts failing after an RNG or generator change, re-sweep
    // seeds rather than loosening the threshold.
    let mut world = worlds::outage_scenario(dir.clone(), 2, horizon, episodes);
    let country = world.info.country.unwrap();
    let cc = String::from_utf8_lossy(&country).into_owned();
    println!(
        "country {cc}: {} top ISPs scripted down for 3 h x {} episodes",
        world.info.country_isps.len(),
        episodes
    );
    let geo = GeoMap::from_topology(world.sim.control_plane().topology());
    world.sim.run_until(horizon);

    let mq = Cluster::shared();
    let bin = 900u64;
    for collector in world.collectors.clone() {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(world.index.clone()))
            .collector(&collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(&collector).with_queue(mq.clone(), 0);
        run_pipeline(&mut stream, bin, &mut [&mut rt]);
    }

    // IODA-style sync (30-minute timeout favouring completeness).
    let mut sync = SyncServer::new(SyncPolicy::Timeout(1800), world.collectors.clone());
    for part in 0..mq.partitions("rt.meta").max(1) {
        let mut off = 0u64;
        loop {
            let msgs = mq.fetch("rt.meta", part, off, 1024);
            if msgs.is_empty() {
                break;
            }
            off += msgs.len() as u64;
            for m in msgs {
                if let Ok((collector, b)) = decode_meta(&m.payload) {
                    sync.observe(&collector, b, b);
                }
            }
        }
    }

    // Replay diffs in bin order into the consumers.
    let mut queued = Vec::new();
    for part in 0..mq.partitions("rt.tables").max(1) {
        let mut off = 0u64;
        loop {
            let msgs = mq.fetch("rt.tables", part, off, 1024);
            if msgs.is_empty() {
                break;
            }
            off += msgs.len() as u64;
            queued.extend(msgs);
        }
    }
    queued.sort_by_key(|m| m.timestamp);
    let mut view = GlobalView::new();
    let mut consumer = OutageConsumer::new(geo, 3);
    let mut next = 0usize;
    for decision in sync.poll(u64::MAX) {
        while next < queued.len() && queued[next].timestamp <= decision.bin {
            if let Ok(rt) = RtMessage::decode(&queued[next].payload) {
                view.apply(&rt);
            }
            next += 1;
        }
        consumer.observe_bin(&view, decision.bin);
    }

    let series = consumer.country(country).expect("country tracked").to_vec();
    let vals: Vec<u64> = series.iter().map(|(_, n)| *n as u64).collect();
    println!("\nvisible {cc} prefixes per {bin}-s bin:");
    println!("{}", sparkline(&vals));
    let baseline = vals.iter().copied().max().unwrap_or(0);
    let min = vals.iter().copied().min().unwrap_or(0);
    println!(
        "baseline {} -> outage floor {} ({:.0}% drop)",
        baseline,
        min,
        (baseline - min) as f64 * 100.0 / baseline.max(1) as f64
    );

    // Count distinct dips and compare with ground truth.
    let thresh = baseline * 4 / 5;
    let mut dips = 0;
    let mut below = false;
    for v in &vals {
        if *v < thresh && !below {
            dips += 1;
            below = true;
        } else if *v >= thresh {
            below = false;
        }
    }
    println!("dips below 80% of baseline: {dips} (scripted: {episodes})");
    // Per-AS series of the top ISP mirrors the dips.
    let isp = world.info.country_isps[0];
    if let Some(isp_series) = consumer.as_series.get(&isp) {
        let isp_vals: Vec<u64> = isp_series.iter().map(|(_, n)| *n as u64).collect();
        println!(
            "\ntop ISP AS{} visible prefixes: {}",
            isp.0,
            sparkline(&isp_vals)
        );
        let isp_min = isp_vals.iter().min().copied().unwrap_or(0);
        println!("ISP series floor during outages: {isp_min} (paper: stacked ISP lines drop)");
    }
    assert_eq!(dips, episodes, "every scripted outage must be visible");
    std::fs::remove_dir_all(&dir).ok();
}
