//! §3.3.4 — "the cost of sorting is negligible compared to the cost of
//! actually reading records from the dump files".
//!
//! Processes the same archive twice: once through the full sorted
//! stream (overlap grouping + multi-way merge + elem extraction) and
//! once by sequentially parsing every file with the raw MRT reader.
//! Reports the relative overhead.

use std::time::Instant;

use bench::{header, scaled};
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::mrt::MrtReader;
use bgpstream_repro::worlds;

fn main() {
    header("§3.3.4", "sorting cost vs reading cost");
    let dir = worlds::scratch_dir("sortcost");
    let mut world = worlds::quickstart(dir.clone(), 13);
    let horizon = scaled(6 * 3600);
    world.sim.run_until(horizon);
    let manifest: Vec<_> = world.sim.manifest().to_vec();
    println!(
        "archive: {} files, {} records, {} bytes",
        world.sim.stats().files,
        world.sim.stats().records,
        world.sim.stats().bytes
    );

    // Warm the page cache so neither pass pays cold-read costs the
    // other does not.
    for m in &manifest {
        std::fs::read(&m.path).expect("dump file");
    }

    // Baseline: raw sequential parse (no sorting, no annotation),
    // streaming records without collecting them.
    let t0 = Instant::now();
    let mut raw_records = 0u64;
    for m in &manifest {
        let file = std::fs::File::open(&m.path).expect("dump file");
        let mut reader = MrtReader::new(std::io::BufReader::new(file));
        while let Some(r) = reader.next() {
            r.expect("clean archive");
            raw_records += 1;
        }
    }
    let raw_time = t0.elapsed();

    // Full sorted stream.
    let t1 = Instant::now();
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(horizon))
        .start();
    let mut stream_records = 0u64;
    while let Some(_rec) = stream.next_record() {
        stream_records += 1;
    }
    let stream_time = t1.elapsed();

    println!("raw sequential parse:   {raw_records:8} records in {raw_time:?}");
    println!("sorted stream:          {stream_records:8} records in {stream_time:?}");
    let overhead = stream_time.as_secs_f64() / raw_time.as_secs_f64().max(1e-9);
    println!(
        "sorted/raw time ratio:  {overhead:.2}x (includes elem extraction + annotation; \
         paper: sorting negligible vs reading)"
    );
    assert_eq!(
        raw_records, stream_records,
        "both paths must see every record"
    );
    std::fs::remove_dir_all(&dir).ok();
}
