//! Figure 5c — number of ASNs and fraction classified as transit
//! (appearing mid-path), for IPv4 and IPv6.
//!
//! Paper shape: IPv4 ASN count grows near-linearly while the transit
//! fraction stays constant (~16 % in 2016); IPv6 starts transit-heavy
//! and decays toward the IPv4 level as edge adoption catches up,
//! remaining higher (~21 % in 2016).

use bench::{header, scaled, sparkline};
use bgpstream_repro::analytics::{rib_partitions, transit_fraction};
use bgpstream_repro::worlds;

fn main() {
    header("Figure 5c", "transit-AS fraction, IPv4 vs IPv6");
    let dir = worlds::scratch_dir("fig5c");
    let months = scaled(60) as u32;
    let (world, times) =
        worlds::longitudinal(dir.clone(), 7, months, 6u32.min(months.max(1)), None);
    let parts = rib_partitions(&world.index, 0, *times.last().unwrap());
    let points = transit_fraction(&world.index, &parts, 8);

    println!("\n  time    v4-ASNs  v4-transit%   v6-ASNs  v6-transit%");
    let mut v4_asns = Vec::new();
    for p in &points {
        v4_asns.push(p.v4_asns as u64);
        println!(
            "{:8} {:8} {:11.1}% {:9} {:11.1}%",
            p.time,
            p.v4_asns,
            p.v4_transit_frac * 100.0,
            p.v6_asns,
            if p.v6_asns == 0 {
                0.0
            } else {
                p.v6_transit_frac * 100.0
            }
        );
    }
    println!("\nv4 ASN count over time: {}", sparkline(&v4_asns));
    let first = points.first().expect("snapshots");
    let last = points.last().expect("snapshots");
    println!(
        "\nv4 transit fraction drift: {:.1}% -> {:.1}% (paper: constant)",
        first.v4_transit_frac * 100.0,
        last.v4_transit_frac * 100.0
    );
    let v6: Vec<&bgpstream_repro::analytics::TransitPoint> =
        points.iter().filter(|p| p.v6_asns > 0).collect();
    if v6.len() >= 2 {
        println!(
            "v6 transit fraction decay: {:.1}% -> {:.1}% (paper: decays, stays above v4)",
            v6[0].v6_transit_frac * 100.0,
            v6.last().unwrap().v6_transit_frac * 100.0
        );
        println!(
            "final gap: v6 {:.1}% vs v4 {:.1}% (paper 2016: 21% vs 16%)",
            v6.last().unwrap().v6_transit_frac * 100.0,
            last.v4_transit_frac * 100.0
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
