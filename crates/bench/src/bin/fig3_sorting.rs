//! Figure 3 — intra- and inter-collector sorting.
//!
//! Generates 30 minutes of RIS + RouteViews dumps (the figure's
//! scenario), shows how the dump-file set partitions into disjoint
//! overlap groups, runs the multi-way merge, and verifies the output
//! stream is time-sorted.

use bench::header;
use bgpstream_repro::bgpstream::sort::partition_overlap_groups;
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::index::{BrokerCursor, Query};
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::worlds;

fn main() {
    header("Figure 3", "intra-/inter-collector sorting in libBGPStream");
    let dir = worlds::scratch_dir("fig3");
    let mut world = worlds::quickstart(dir.clone(), 3);
    world.sim.run_until(1800);

    // The dump-file set for the first 30 minutes.
    let q = Query {
        start: 0,
        end: Some(1800),
        ..Default::default()
    };
    let mut cursor = BrokerCursor { window_start: 0 };
    let mut files = Vec::new();
    loop {
        let resp = world.index.query(&q, &mut cursor, u64::MAX);
        files.extend(resp.files);
        if resp.exhausted {
            break;
        }
    }
    println!("dump files in 30 min: {}", files.len());
    let groups = partition_overlap_groups(&files);
    println!("disjoint overlap groups: {}", groups.len());
    for (i, g) in groups.iter().enumerate() {
        let lo = g.iter().map(|m| m.interval_start).min().unwrap();
        let hi = g.iter().map(|m| m.interval_end()).max().unwrap();
        let names: Vec<String> = g
            .iter()
            .map(|m| format!("{}/{}@{}", m.collector, m.dump_type, m.interval_start))
            .collect();
        println!(
            "  set {}: {} files covering [{lo}, {hi}): {}",
            i + 1,
            g.len(),
            names.join(" ")
        );
    }

    // Merge and verify ordering (the figure's bottom lane).
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(1800))
        .start();
    let mut last = 0u64;
    let mut n = 0u64;
    let mut inversions = 0u64;
    let mut sources = std::collections::BTreeSet::new();
    while let Some(rec) = stream.next_record() {
        if rec.timestamp < last {
            inversions += 1;
        }
        last = rec.timestamp;
        sources.insert(format!("{}:{}", rec.collector(), rec.dump_type() as u8));
        n += 1;
    }
    let st = stream.stats();
    println!("merged records: {n} from {} sources", sources.len());
    println!("timestamp inversions: {inversions} (paper: record-level sorted stream)");
    println!(
        "merge groups processed: {}, max simultaneous open files: {}",
        st.groups, st.max_group_width
    );
    assert_eq!(inversions, 0, "stream must be sorted");
    std::fs::remove_dir_all(&dir).ok();
}
