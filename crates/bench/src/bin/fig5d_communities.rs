//! Figure 5d — BGP community diversity as observed by VPs.
//!
//! Paper shape: VPs differ widely in how many distinct community AS
//! identifiers they observe (en-route stripping); only ~83 % of VPs
//! observe communities at all; collector- and project-level
//! aggregation exposes which collectors see the most heterogeneous
//! community sets (the basis for choosing route-views2/RRC12 in §4.3).

use bench::{header, scaled};
use bgpstream_repro::analytics::{community_diversity, rib_partitions};
use bgpstream_repro::worlds;

fn main() {
    header(
        "Figure 5d",
        "community diversity per VP / collector / project",
    );
    let dir = worlds::scratch_dir("fig5d");
    let months = scaled(24) as u32;
    let (world, times) = worlds::longitudinal(dir.clone(), 8, months, months.max(1), None);
    let t = *times.last().unwrap();
    let parts: Vec<_> = rib_partitions(&world.index, t, t);
    let d = community_diversity(&world.index, &parts, 8);

    println!("\nunique communities observed: {}", d.unique_communities);
    println!(
        "VPs observing communities: {:.0}% (paper: ~83%)",
        d.vps_seeing_communities * 100.0
    );
    println!("\nper-VP distinct community AS identifiers (circle sizes in the paper's figure):");
    let mut per_vp: Vec<_> = d.per_vp.iter().collect();
    per_vp.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for ((collector, peer), n) in per_vp.iter().take(15) {
        println!("  {collector:14} {peer:16} {n:6}");
    }
    println!("\nper-collector aggregation (grey circles):");
    let mut per_c: Vec<_> = d.per_collector.iter().collect();
    per_c.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for (c, n) in &per_c {
        println!("  {c:14} {n:6}");
    }
    println!("\nper-project aggregation:");
    for (p, n) in &d.per_project {
        println!("  {p:14} {n:6}");
    }
    println!("\npaper shape: heavy skew across VPs; a few collectors dominate diversity.");
    std::fs::remove_dir_all(&dir).ok();
}
