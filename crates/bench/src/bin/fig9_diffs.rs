//! Figure 9 — RT diffs vs BGP elems, as a function of the time-bin
//! size.
//!
//! Runs the RT plugin over one collector's updates at bin sizes from
//! 1 to 60 minutes and reports the average and maximum number of BGP
//! elems vs diff cells per bin. Paper shape: diffs are >3x fewer than
//! elems at 1-minute bins and the reduction factor grows with bin
//! size (~13x at 1 hour); maxima are damped even more (burst
//! resilience).

use std::sync::Arc;

use bench::{header, scaled};
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::{Index, LocalBroker};
use bgpstream_repro::collector_sim::{standard_collectors, SimConfig, Simulator};
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::topology::control::ControlPlane;
use bgpstream_repro::topology::events::Scenario;
use bgpstream_repro::topology::gen::{generate, TopologyConfig};
use bgpstream_repro::worlds::scratch_dir;

fn main() {
    header("Figure 9", "RT diff cells vs BGP elems per time bin");
    let dir = scratch_dir("fig9");
    let horizon = scaled(6 * 3600);
    let cp = ControlPlane::new(
        Arc::new(generate(&TopologyConfig {
            seed: 9,
            ..TopologyConfig::default()
        })),
        u64::MAX,
    );
    let specs = standard_collectors(&cp, 1, 0, 6, 1.0, 9);
    let collector = specs[0].name.clone();
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());

    // Update workload: prefixes flapping at mixed periods — fast
    // convergence-style churn (sub-minute), medium, and slow flaps.
    let topo = sim.control_plane().topology().clone();
    let mut sc = Scenario::new();
    let mut k = 0u64;
    for n in topo.nodes.iter().filter(|n| !n.prefixes_v4.is_empty()) {
        for op in n.prefixes_v4.iter().take(2) {
            let period = match k % 3 {
                0 => 40,   // path-exploration-style bursts
                1 => 300,  // medium churn
                _ => 1500, // slow flapping
            };
            let times = (horizon / period / 4).clamp(2, 200) as u32;
            sc.flap(60 + (k * 29) % 600, times, period, n.asn, op.prefix);
            k += 1;
            if k > 120 {
                break;
            }
        }
        if k > 120 {
            break;
        }
    }
    sim.schedule(&sc);
    sim.run_until(horizon);
    println!(
        "workload: {} flap scripts over {} s, {} update records",
        k,
        horizon,
        sim.stats().records
    );

    println!("\n bin(min)   avg-elems  avg-diffs  reduction   max-elems  max-diffs");
    let mut reductions = Vec::new();
    for bin_min in [1u64, 5, 10, 15, 20, 30, 45, 60] {
        let bin = bin_min * 60;
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .collector(&collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(&collector);
        run_pipeline(&mut stream, bin, &mut [&mut rt]);
        // Steady-state bins only: skip the first bin (initial RIB
        // materialisation).
        let steady: Vec<_> = rt.bin_series.iter().skip(1).collect();
        if steady.is_empty() {
            continue;
        }
        let avg = |f: fn(&&bgpstream_repro::corsaro::RtBinStats) -> u64| {
            steady.iter().map(f).sum::<u64>() as f64 / steady.len() as f64
        };
        let avg_elems = avg(|b| b.elems);
        let avg_diffs = avg(|b| b.diff_cells);
        let max_elems = steady.iter().map(|b| b.elems).max().unwrap();
        let max_diffs = steady.iter().map(|b| b.diff_cells).max().unwrap();
        let reduction = avg_elems / avg_diffs.max(0.001);
        reductions.push((bin_min, reduction));
        println!(
            "{bin_min:8} {avg_elems:11.1} {avg_diffs:10.1} {reduction:9.1}x {max_elems:11} {max_diffs:10}"
        );
    }
    let first = reductions.first().expect("bins ran");
    let last = reductions.last().expect("bins ran");
    println!(
        "\nreduction factor grows with bin size: {:.1}x @ {} min -> {:.1}x @ {} min",
        first.1, first.0, last.1, last.0
    );
    println!("paper: >3x @ 1 min -> ~13x @ 60 min (route-views2, March 2016)");
    assert!(
        last.1 > first.1,
        "reduction factor must increase with bin size"
    );
    std::fs::remove_dir_all(&dir).ok();
}
