//! §6.2.1 — RT plugin reconstruction accuracy: RIS vs RouteViews.
//!
//! The paper evaluates the RT plugin by periodically comparing the
//! reconstructed (main) cells against the shadow cells of each new RIB
//! dump: error probability = mismatching prefixes / all VPs' prefixes,
//! measured at 1e-8 for RIS and 1e-5 for RouteViews. The gap is caused
//! by "unresponsive VPs for which we do not have state messages
//! (e.g. RouteViews)". We reproduce the mechanism: VP sessions bounce
//! while prefixes are withdrawn behind their back; RIS collectors dump
//! state messages (the RT plugin resets the VP), RouteViews collectors
//! do not (the RT plugin carries stale entries to the next RIB).

use std::sync::Arc;

use bench::{header, scaled};
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::{Index, LocalBroker};
use bgpstream_repro::collector_sim::{
    CollectorSpec, SimConfig, Simulator, VpSpec, RIS, ROUTEVIEWS,
};
use bgpstream_repro::corsaro::{run_pipeline, RtPlugin};
use bgpstream_repro::topology::control::ControlPlane;
use bgpstream_repro::topology::events::{Event, EventKind, Scenario};
use bgpstream_repro::topology::gen::{generate, TopologyConfig};
use bgpstream_repro::worlds::scratch_dir;

fn main() {
    header("§6.2.1", "RT plugin error probability: RIS vs RouteViews");
    let dir = scratch_dir("rtacc");
    let cp = ControlPlane::new(
        Arc::new(generate(&TopologyConfig {
            seed: 12,
            ..TopologyConfig::default()
        })),
        u64::MAX,
    );
    // Same VPs behind one RIS and one RouteViews collector, so the
    // only difference is the state-message behaviour.
    let vps: Vec<VpSpec> = cp
        .transit_vp_candidates()
        .into_iter()
        .take(6)
        .map(|asn| VpSpec {
            asn,
            full_feed: true,
        })
        .collect();
    let specs = vec![
        CollectorSpec {
            name: "rrc00".into(),
            project: RIS,
            vps: vps.clone(),
        },
        CollectorSpec {
            name: "route-views2".into(),
            project: ROUTEVIEWS,
            vps: vps.clone(),
        },
    ];
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let idx = Index::shared();
    sim.attach_index(idx.clone());

    // Scenario: repeated session bounces on one VP of each collector;
    // during each downtime some prefixes are withdrawn and stay
    // withdrawn past the next RIB dump. A RIS reconstruction is
    // cleared by the state messages; a RouteViews reconstruction
    // silently keeps the stale entries until the RIB comparison
    // exposes them. Bounce times avoid RIB dump instants so the
    // comparison itself is clean.
    let horizon = scaled(26 * 3600); // a bit over three RIS RIB periods
    let topo = sim.control_plane().topology().clone();
    let bounce_vp = vps[0].asn;
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(60)
        .enumerate()
    {
        let k = k as u64;
        // Withdraw during the k-th bounce window; re-announce only
        // after RouteViews' *next* RIB (2 h cadence) has dumped.
        let bounce_start = 3000 + (k % 6) * 9000;
        sc.push(Event::at(
            bounce_start + 120,
            EventKind::Withdraw {
                origin: n.asn,
                prefix: n.prefixes_v4[0].prefix,
            },
        ));
        sc.push(Event::at(
            bounce_start + 4 * 3600,
            EventKind::Announce {
                origin: n.asn,
                prefix: n.prefixes_v4[0].prefix,
            },
        ));
    }
    sim.schedule(&sc);
    for b in 0..6u64 {
        let t = 3000 + b * 9000;
        sim.schedule_session_reset(t, 0, bounce_vp, 600);
        sim.schedule_session_reset(t, 1, bounce_vp, 600);
    }
    sim.run_until(horizon);

    let mut results = Vec::new();
    for collector in ["rrc00", "route-views2"] {
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(idx.clone()))
            .collector(collector)
            .interval(0, Some(horizon))
            .start();
        let mut rt = RtPlugin::new(collector);
        run_pipeline(&mut stream, 600, &mut [&mut rt]);
        results.push((collector, rt.error_stats));
    }

    println!("\ncollector        cells-checked  mismatched  error-probability  (paper)");
    for (c, e) in &results {
        let paper = if c.starts_with("rrc") { "1e-8" } else { "1e-5" };
        println!(
            "{c:16} {:13} {:11} {:18.2e}  ({paper})",
            e.cells_checked,
            e.cells_mismatched,
            e.error_probability()
        );
    }
    let ris = results[0].1.error_probability();
    let rv = results[1].1.error_probability();
    println!(
        "\nRouteViews/RIS error ratio: {:.1}x (paper: ~1000x — RIS dumps state messages, RouteViews does not)",
        rv / ris.max(1e-12)
    );
    assert!(
        rv > ris,
        "RouteViews must reconstruct less accurately than RIS"
    );
    std::fs::remove_dir_all(&dir).ok();
}
