//! Listing 1 / §4.2 — AS-path inflation.
//!
//! Streams all collectors' RIB dumps at one instant, compares observed
//! minimum AS-path length per <VP, origin> pair against the shortest
//! path on the undirected AS graph built from the same data. Paper
//! (on August 2015 data): >30 % of 10M pairs inflated, by 1 to 11
//! extra hops; Gao & Wang on 2000-2001 data: >20 %, max 10.

use bench::{header, scaled};
use bgpstream_repro::analytics::{path_inflation, rib_partitions};
use bgpstream_repro::topology::TopologyConfig;
use bgpstream_repro::worlds;

fn main() {
    header("Listing 1", "AS-path inflation by routing policies");
    let dir = worlds::scratch_dir("listing1");
    let n_edge = scaled(800) as usize;
    let (world, times) = worlds::longitudinal(
        dir.clone(),
        11,
        0,
        1,
        Some(TopologyConfig {
            seed: 11,
            n_transit: scaled(120) as usize,
            n_edge,
            transit_peer_mean: 2.5,
            ..Default::default()
        }),
    );
    let t = times[0];
    let parts = rib_partitions(&world.index, t, t);
    println!("partitions (collector RIBs): {}", parts.len());
    let report = path_inflation(&world.index, &parts, 8);
    println!("<VP, origin> pairs compared: {}", report.pairs);
    println!(
        "inflated pairs: {:.1}% (paper: >30%; Gao-Wang 2002: >20%)",
        report.inflated_frac * 100.0
    );
    println!(
        "max extra hops: {} (paper: 11; Gao-Wang: 10)",
        report.max_extra_hops
    );
    println!("\nextra hops   pairs   share");
    for (extra, n) in &report.histogram {
        println!(
            "{extra:10} {n:8}   {:5.2}%",
            *n as f64 * 100.0 / report.pairs.max(1) as f64
        );
    }
    assert!(
        report.inflated_frac > 0.0,
        "policy routing must inflate some paths"
    );
    println!("\nshape: most pairs uninflated; a policy-induced tail of +1..+N hops. The");
    println!("simulated topology is shallower than the Internet, so the tail is shorter.");
    std::fs::remove_dir_all(&dir).ok();
}
