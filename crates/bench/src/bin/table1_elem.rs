//! Table 1 — the BGPStream elem structure.
//!
//! Prints one elem of each type with every Table 1 field, showing
//! which fields are conditionally populated ("*" in the paper's
//! table): prefix / next-hop / AS-path / communities for routes and
//! announcements, old/new state for state messages.

use bench::header;
use bgpstream_repro::bgpstream::{BgpStream, ElemType};
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::worlds;

fn show(elem: &bgpstream_repro::bgpstream::BgpStreamElem) {
    println!(
        "type:         {:?} ({})",
        elem.elem_type,
        elem.elem_type.code()
    );
    println!("time:         {}", elem.time);
    println!("peer address: {}", elem.peer_address);
    println!("peer ASN:     {}", elem.peer_asn);
    println!(
        "prefix*:      {}",
        elem.prefix.map(|p| p.to_string()).unwrap_or("-".into())
    );
    println!(
        "next hop*:    {}",
        elem.next_hop.map(|n| n.to_string()).unwrap_or("-".into())
    );
    println!(
        "AS path*:     {}",
        elem.as_path
            .as_ref()
            .map(|p| p.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "community*:   {}",
        elem.communities
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or("-".into())
    );
    println!(
        "old state*:   {}",
        elem.old_state.map(|s| s.to_string()).unwrap_or("-".into())
    );
    println!(
        "new state*:   {}",
        elem.new_state.map(|s| s.to_string()).unwrap_or("-".into())
    );
    println!();
}

fn main() {
    header(
        "Table 1",
        "BGPStream elem fields (one sample per elem type)",
    );
    let dir = worlds::scratch_dir("table1");
    let mut world = worlds::quickstart(dir.clone(), 1);
    // A session reset on the RIS collector produces state-message
    // elems too (RouteViews does not dump them).
    let vp = world.sim.vps_of(0)[0];
    world.sim.schedule_session_reset(600, 0, vp, 300);
    world.sim.run_until(3600);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(3600))
        .start();
    let mut shown: std::collections::HashSet<ElemType> = Default::default();
    while let Some(rec) = stream.next_record() {
        for elem in rec.elems() {
            if shown.insert(elem.elem_type) {
                show(elem);
            }
        }
        if shown.len() == 4 {
            break;
        }
    }
    assert_eq!(shown.len(), 4, "all four elem types must appear: {shown:?}");
    println!("(* = conditionally populated based on type, as in Table 1)");
    std::fs::remove_dir_all(&dir).ok();
}
