//! Ablation (§3.3.4) — why libBGPStream partitions the dump-file set
//! into disjoint overlap groups before multi-way merging.
//!
//! "The computational cost of the multi-way merging is proportional to
//! the number of queues (files) considered. We therefore break the
//! dump file set in disjoint subsets." This ablation runs the same
//! archive through (a) the paper's partitioned merge, (b) a single
//! merge with every file open at once, and (c) a raw unsorted
//! sequential read, reporting wall time and merge width.

use std::sync::Arc;
use std::time::Instant;

use bench::{header, scaled};
use bgpstream_repro::bgpstream::sort::{partition_overlap_groups, GroupMerger};
use bgpstream_repro::bgpstream::Filters;
use bgpstream_repro::broker::index::{BrokerCursor, Query};
use bgpstream_repro::mrt::MrtReader;
use bgpstream_repro::worlds;

fn main() {
    header(
        "Ablation §3.3.4",
        "overlap-partitioned merge vs single k-way merge",
    );
    let dir = worlds::scratch_dir("ablation");
    let mut world = worlds::quickstart(dir.clone(), 14);
    let horizon = scaled(12 * 3600);
    world.sim.run_until(horizon);

    let q = Query {
        start: 0,
        end: Some(horizon),
        ..Default::default()
    };
    let mut cursor = BrokerCursor { window_start: 0 };
    let mut files = Vec::new();
    loop {
        let resp = world.index.query(&q, &mut cursor, u64::MAX);
        files.extend(resp.files);
        if resp.exhausted {
            break;
        }
    }
    println!(
        "archive: {} files, {} bytes",
        files.len(),
        world.sim.stats().bytes
    );
    let filters = Arc::new(Filters::none().compile());

    // (a) Partitioned merge (the paper's design).
    let t = Instant::now();
    let groups = partition_overlap_groups(&files);
    let max_width = groups.iter().map(|g| g.len()).max().unwrap_or(0);
    let mut n_a = 0u64;
    let mut inversions_a = 0u64;
    let mut last = 0u64;
    for g in groups.iter().cloned() {
        let mut m = GroupMerger::open(g, filters.clone());
        while let Some(rec) = m.next() {
            if rec.timestamp < last {
                inversions_a += 1;
            }
            last = rec.timestamp;
            n_a += 1;
        }
    }
    let time_a = t.elapsed();

    // (b) Single merge: every file open simultaneously.
    let t = Instant::now();
    let mut m = GroupMerger::open(files.clone(), filters.clone());
    let single_width = m.width();
    let mut n_b = 0u64;
    let mut inversions_b = 0u64;
    last = 0;
    while let Some(rec) = m.next() {
        if rec.timestamp < last {
            inversions_b += 1;
        }
        last = rec.timestamp;
        n_b += 1;
    }
    let time_b = t.elapsed();

    // (c) Raw unsorted sequential read.
    let t = Instant::now();
    let mut n_c = 0u64;
    for f in &files {
        let bytes = std::fs::read(&f.path).expect("dump file");
        let (recs, err) = MrtReader::new(&bytes[..]).read_all();
        assert!(err.is_none());
        n_c += recs.len() as u64;
    }
    let time_c = t.elapsed();

    println!("\nvariant                      records  merge-width  sorted  time");
    println!(
        "partitioned merge (paper)  {n_a:9} {:12} {:7} {time_a:?}",
        max_width,
        inversions_a == 0
    );
    println!(
        "single k-way merge         {n_b:9} {:12} {:7} {time_b:?}",
        single_width,
        inversions_b == 0
    );
    println!(
        "raw sequential (unsorted)  {n_c:9} {:12} {:7} {time_c:?}",
        "-", "-"
    );
    println!(
        "\npartitioning caps the merge width at {max_width} instead of {single_width} \
         ({} groups); both produce identical sorted output.",
        groups.len()
    );
    assert_eq!(n_a, n_b);
    assert_eq!(n_a, n_c);
    assert_eq!(inversions_a, 0);
    assert_eq!(inversions_b, 0);
    std::fs::remove_dir_all(&dir).ok();
}
