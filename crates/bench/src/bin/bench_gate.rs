//! CI perf gate: fail when `pipeline/sorted_stream` regresses more
//! than the allowed margin against a committed baseline.
//!
//! Usage:
//!
//! ```text
//! bench_gate <fresh.jsonl> <baseline.json> [max_regression_pct]
//! bench_gate --min-speedup <fresh.jsonl> <slow_bench> <fast_bench> <factor> [min_cores]
//! bench_gate --max-latency-ratio <fresh.jsonl> <bench> <base_bench> <max_ratio>
//! ```
//!
//! `<fresh.jsonl>` is the `CRITERION_MINI_JSON` output of a bench run
//! on the current machine; `<baseline.json>` is a committed snapshot
//! (e.g. `BENCH_pr2.json`). Because CI runners and the machines that
//! captured the baselines differ in speed, the gate compares the
//! *ratio* of `pipeline/sorted_stream` to `pipeline/raw_sequential_read`
//! — both measured in the same run — against the baseline's ratio.
//! The raw sequential read is a fixed workload touched by neither the
//! sorting nor the stream layers, so the ratio isolates exactly the
//! overhead this repo's §3.3.4 machinery adds, independent of host
//! speed. The run fails when the fresh ratio exceeds the baseline
//! ratio by more than `max_regression_pct` percent (default 15).
//!
//! Bench references in `--min-speedup` / `--max-latency-ratio` may
//! be fully qualified as `group/bench` (e.g.
//! `broker/queries_per_sec`); a bare name defaults to the `pipeline`
//! group for back-compat with the earlier CI invocations.
//!
//! `--min-speedup` gates the sharded-runtime scaling claim:
//! `<fast_bench>` must be at least `factor`× faster than
//! `<slow_bench>` in the same fresh run. A parallelism claim
//! is only testable where parallelism exists, so the check SKIPs
//! (exit 0, with a notice) when the host has fewer than `min_cores`
//! (default 4) CPUs.
//!
//! `--max-latency-ratio` is the inverse bound, gating an overhead
//! claim: `<bench>` may cost at most `max_ratio`× of
//! `<base_bench>` in the same fresh run. PR 5 uses it to cap
//! the live tail's publication→delivery cost against the historical
//! `sorted_stream` read of the same archive; PR 6 caps the served
//! broker's query cost against the in-process `LocalBroker` and the
//! p99 live-poll round trip against the p50. Never self-skips (no
//! parallelism involved).

use std::process::ExitCode;

/// Extract `ns_per_iter` for `group/bench` from JSON text (works on
/// both the mini JSON-lines format and the committed pretty-printed
/// snapshots: whitespace is stripped before matching, and none of the
/// string values here contain spaces).
fn ns_per_iter(json: &str, group: &str, bench: &str) -> Option<f64> {
    let squashed: String = json.chars().filter(|c| !c.is_whitespace()).collect();
    let needle = format!("\"group\":\"{group}\",\"bench\":\"{bench}\",\"ns_per_iter\":");
    let start = squashed.find(&needle)? + needle.len();
    let rest = &squashed[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Split a bench reference into `(group, bench)`. References may be
/// fully qualified (`broker/queries_per_sec`); a bare name keeps the
/// historical default group `pipeline`, so committed CI invocations
/// predating non-pipeline gates parse unchanged.
fn parse_ref(reference: &str) -> (&str, &str) {
    match reference.split_once('/') {
        Some((group, bench)) => (group, bench),
        None => ("pipeline", reference),
    }
}

/// `<[group/]bench>` ns/iter from fresh results, or exit 2.
fn read_bench_ns(fresh: &str, reference: &str) -> f64 {
    let (group, bench) = parse_ref(reference);
    match ns_per_iter(fresh, group, bench) {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("bench_gate: {group}/{bench} missing from fresh results");
            std::process::exit(2);
        }
    }
}

fn min_speedup(args: &[String]) -> ExitCode {
    if args.len() < 4 {
        eprintln!(
            "usage: bench_gate --min-speedup <fresh.jsonl> <slow_bench> <fast_bench> \
             <factor> [min_cores]"
        );
        return ExitCode::from(2);
    }
    let (fresh_path, slow, fast) = (&args[0], &args[1], &args[2]);
    let factor: f64 = args[3].parse().expect("factor must be a number");
    let min_cores: usize = args
        .get(4)
        .map(|s| s.parse().expect("min_cores must be an integer"))
        .unwrap_or(4);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < min_cores {
        println!(
            "bench_gate: SKIP — {cores} CPU(s) available, speedup gate needs {min_cores} \
             (a parallel runtime cannot beat sequential on a serial machine)"
        );
        return ExitCode::SUCCESS;
    }
    let fresh = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("cannot read fresh results {fresh_path}: {e}"));
    let slow_ns = read_bench_ns(&fresh, slow);
    let fast_ns = read_bench_ns(&fresh, fast);
    let speedup = slow_ns / fast_ns;
    println!(
        "bench_gate: {fast} {speedup:.2}x vs {slow} ({fast_ns:.0} ns vs {slow_ns:.0} ns) \
         on {cores} cores; required {factor:.2}x"
    );
    if speedup < factor {
        eprintln!("bench_gate: FAIL — speedup {speedup:.2}x below required {factor:.2}x");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK");
    ExitCode::SUCCESS
}

fn max_latency_ratio(args: &[String]) -> ExitCode {
    if args.len() < 4 {
        eprintln!(
            "usage: bench_gate --max-latency-ratio <fresh.jsonl> <bench> <base_bench> <max_ratio>"
        );
        return ExitCode::from(2);
    }
    let (fresh_path, bench, base) = (&args[0], &args[1], &args[2]);
    let max_ratio: f64 = args[3].parse().expect("max_ratio must be a number");
    let fresh = std::fs::read_to_string(fresh_path)
        .unwrap_or_else(|e| panic!("cannot read fresh results {fresh_path}: {e}"));
    let bench_ns = read_bench_ns(&fresh, bench);
    let base_ns = read_bench_ns(&fresh, base);
    let ratio = bench_ns / base_ns;
    println!(
        "bench_gate: {bench} {ratio:.2}x of {base} ({bench_ns:.0} ns vs {base_ns:.0} ns); \
         allowed {max_ratio:.2}x"
    );
    if ratio > max_ratio {
        eprintln!("bench_gate: FAIL — ratio {ratio:.2}x above allowed {max_ratio:.2}x");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(|s| s.as_str()) == Some("--min-speedup") {
        return min_speedup(&args[2..]);
    }
    if args.get(1).map(|s| s.as_str()) == Some("--max-latency-ratio") {
        return max_latency_ratio(&args[2..]);
    }
    if args.len() < 3 {
        eprintln!("usage: bench_gate <fresh.jsonl> <baseline.json> [max_regression_pct]");
        return ExitCode::from(2);
    }
    let max_pct: f64 = args
        .get(3)
        .map(|s| s.parse().expect("max_regression_pct must be a number"))
        .unwrap_or(15.0);
    let fresh = std::fs::read_to_string(&args[1])
        .unwrap_or_else(|e| panic!("cannot read fresh results {}: {e}", args[1]));
    let base = std::fs::read_to_string(&args[2])
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args[2]));

    let read = |json: &str, what: &str, bench: &str| -> f64 {
        match ns_per_iter(json, "pipeline", bench) {
            Some(v) if v > 0.0 => v,
            _ => {
                eprintln!("bench_gate: pipeline/{bench} missing from {what}");
                std::process::exit(2);
            }
        }
    };
    let fresh_sorted = read(&fresh, "fresh results", "sorted_stream");
    let fresh_raw = read(&fresh, "fresh results", "raw_sequential_read");
    let base_sorted = read(&base, "baseline", "sorted_stream");
    let base_raw = read(&base, "baseline", "raw_sequential_read");

    let fresh_ratio = fresh_sorted / fresh_raw;
    let base_ratio = base_sorted / base_raw;
    let limit = base_ratio * (1.0 + max_pct / 100.0);
    println!(
        "bench_gate: sorted/raw ratio {fresh_ratio:.3} (sorted {fresh_sorted:.0} ns, \
         raw {fresh_raw:.0} ns); baseline ratio {base_ratio:.3}; limit {limit:.3} (+{max_pct}%)"
    );
    if fresh_ratio > limit {
        eprintln!(
            "bench_gate: FAIL — pipeline/sorted_stream regressed {:.1}% relative to \
             raw_sequential_read vs the committed baseline",
            (fresh_ratio / base_ratio - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{ns_per_iter, parse_ref};

    #[test]
    fn bench_refs_parse_with_and_without_group() {
        assert_eq!(
            parse_ref("broker/queries_per_sec"),
            ("broker", "queries_per_sec")
        );
        assert_eq!(parse_ref("sorted_stream"), ("pipeline", "sorted_stream"));
    }

    const MINI: &str = r#"{"group":"pipeline","bench":"raw_sequential_read","ns_per_iter":550365.2,"throughput_kind":"bytes","throughput_per_iter":95224,"rate_per_sec":165.0}
{"group":"pipeline","bench":"sorted_stream","ns_per_iter":528177.0,"throughput_kind":"bytes","throughput_per_iter":95224,"rate_per_sec":171.9}"#;

    const PRETTY: &str = r#"{
  "results": [
    {
      "group": "pipeline",
      "bench": "sorted_stream",
      "ns_per_iter": 741445.8,
      "throughput_kind": "bytes"
    }
  ]
}"#;

    #[test]
    fn parses_mini_json_lines() {
        assert_eq!(
            ns_per_iter(MINI, "pipeline", "sorted_stream"),
            Some(528177.0)
        );
        assert_eq!(
            ns_per_iter(MINI, "pipeline", "raw_sequential_read"),
            Some(550365.2)
        );
    }

    #[test]
    fn parses_pretty_printed_snapshot() {
        assert_eq!(
            ns_per_iter(PRETTY, "pipeline", "sorted_stream"),
            Some(741445.8)
        );
        assert_eq!(ns_per_iter(PRETTY, "pipeline", "missing"), None);
    }
}
