//! Figure 5b — unique MOAS sets over time, overall vs per collector.
//!
//! Paper shape: slow growth of observable MOAS sets, and the overall
//! aggregation is always significantly larger than the maximum
//! identified by any single collector.

use bench::{header, scaled, sparkline};
use bgpstream_repro::analytics::{moas_sets, rib_partitions};
use bgpstream_repro::worlds;

fn main() {
    header("Figure 5b", "unique MOAS sets: overall vs per-collector");
    let dir = worlds::scratch_dir("fig5b");
    let months = scaled(60) as u32;
    let (world, times) =
        worlds::longitudinal(dir.clone(), 6, months, 6u32.min(months.max(1)), None);
    let parts = rib_partitions(&world.index, 0, *times.last().unwrap());
    let points = moas_sets(&world.index, &parts, 8);

    println!("\n  time     overall   best-single-collector   ratio");
    let mut overall_series = Vec::new();
    for p in &points {
        let best = p.per_collector.values().max().copied().unwrap_or(0);
        overall_series.push(p.overall as u64);
        println!(
            "{:8} {:9} {:21} {:7.2}",
            p.time,
            p.overall,
            best,
            p.overall as f64 / best.max(1) as f64
        );
    }
    println!(
        "\noverall MOAS sets over time: {}",
        sparkline(&overall_series)
    );
    let last = points.last().expect("at least one snapshot");
    let best = last.per_collector.values().max().copied().unwrap_or(0);
    assert!(
        last.overall >= best,
        "overall must dominate any single collector"
    );
    println!("paper shape: overall (top line) always above every per-collector line; slow growth.");
    std::fs::remove_dir_all(&dir).ok();
}
