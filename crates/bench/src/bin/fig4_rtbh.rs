//! Figure 4 — data-plane reachability of black-holed destinations
//! during vs after RTBH.
//!
//! For every detected black-holed prefix, emulated traceroutes run
//! from ~50 probe ASes during the RTBH episode and again after it.
//! 4a: fraction of traceroutes reaching each destination host.
//! 4b: fraction reaching the destination's origin AS.
//! Paper shape: during RTBH most destinations are reached by <5 % of
//! probes (many by none), a minority is partially reachable via
//! customers/peers; after RTBH, the vast majority are reached by
//! ≥95 % of probes and origin-AS reachability recovers fully.

use bench::{header, scaled};
use bgpstream_repro::bgpstream::{BgpStream, CommunityFilter, ElemType};
use bgpstream_repro::broker::{DumpType, LocalBroker};
use bgpstream_repro::topology::dataplane::{select_probes, traceroute};
use bgpstream_repro::topology::{Event, EventKind};
use bgpstream_repro::worlds;

fn main() {
    header("Figure 4", "RTBH data-plane reachability (during vs after)");
    let dir = worlds::scratch_dir("fig4");
    let horizon = scaled(48 * 3600);
    let episodes = scaled(24) as usize;
    let mut world = worlds::rtbh_scenario(dir.clone(), 4, horizon, episodes);
    println!("scripted RTBH episodes: {}", world.info.rtbh.len());
    world.sim.run_until(horizon);

    // Detection stream: any `*:666` community (§4.3's first stream).
    let mut bh = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .record_type(DumpType::Updates)
        .filter_community(CommunityFilter::any_asn(666))
        .filter_elem_type(ElemType::Announcement)
        .interval(0, Some(horizon))
        .start();
    let mut detected = std::collections::BTreeSet::new();
    while let Some(rec) = bh.next_matching_record() {
        for e in rec.elems() {
            if let Some(p) = e.prefix {
                detected.insert(p);
            }
        }
    }
    println!(
        "black-holed prefixes detected at collectors: {} / {} scripted",
        detected.len(),
        world.info.rtbh.len()
    );

    // Measure each detected destination.
    let mut during_dest = Vec::new();
    let mut after_dest = Vec::new();
    let mut during_origin = Vec::new();
    let mut after_origin = Vec::new();
    for (_, _, origin, prefix) in world.info.rtbh.clone() {
        if !detected.contains(&prefix) {
            continue;
        }
        let cp = world.sim.control_plane();
        let probes = select_probes(cp, origin, 25);
        cp.apply(&Event::at(
            cp.time() + 1,
            EventKind::StartRtbh { origin, prefix },
        ));
        let during: Vec<_> = probes
            .iter()
            .filter_map(|p| traceroute(cp, *p, &prefix))
            .collect();
        cp.apply(&Event::at(
            cp.time() + 1,
            EventKind::EndRtbh { origin, prefix },
        ));
        let after: Vec<_> = probes
            .iter()
            .filter_map(|p| traceroute(cp, *p, &prefix))
            .collect();
        let frac = |v: &[_], f: fn(&bgpstream_repro::topology::dataplane::TraceResult) -> bool| {
            let v: &[bgpstream_repro::topology::dataplane::TraceResult] = v;
            if v.is_empty() {
                0.0
            } else {
                v.iter().filter(|r| f(r)).count() as f64 / v.len() as f64
            }
        };
        during_dest.push(frac(&during, |r| r.reached_dest));
        after_dest.push(frac(&after, |r| r.reached_dest));
        during_origin.push(frac(&during, |r| r.reached_origin));
        after_origin.push(frac(&after, |r| r.reached_origin));
    }

    let band = |v: &[f64], lo: f64, hi: f64| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().filter(|x| **x >= lo && **x < hi).count() as f64 * 100.0 / v.len() as f64
        }
    };
    println!("\n--- Figure 4a: fraction of traceroutes reaching each destination ---");
    println!("                         during-RTBH   after-RTBH   (paper during/after)");
    println!(
        "never reached (0%):      {:10.0}% {:11.0}%   (73% / ~0%)",
        band(&during_dest, 0.0, 0.0001),
        band(&after_dest, 0.0, 0.0001)
    );
    println!(
        "reached by <5%:          {:10.0}% {:11.0}%   (77% / ~0%)",
        band(&during_dest, 0.0, 0.05),
        band(&after_dest, 0.0, 0.05)
    );
    println!(
        "partially (20-80%):      {:10.0}% {:11.0}%   (13% / small)",
        band(&during_dest, 0.2, 0.8),
        band(&after_dest, 0.2, 0.8)
    );
    println!(
        "reached by >=95%:        {:10.0}% {:11.0}%   (rare / 83%)",
        band(&during_dest, 0.95, 1.1),
        band(&after_dest, 0.95, 1.1)
    );
    println!("\n--- Figure 4b: fraction reaching the origin AS ---");
    println!(
        "low origin reach (<=40%): {:9.0}% {:11.0}%   (majority / rare)",
        band(&during_origin, 0.0, 0.4001),
        band(&after_origin, 0.0, 0.4001)
    );
    println!(
        "full origin reach (100%): {:9.0}% {:11.0}%   (rare / vast majority)",
        band(&during_origin, 0.9999, 1.1),
        band(&after_origin, 0.9999, 1.1)
    );
    std::fs::remove_dir_all(&dir).ok();
}
