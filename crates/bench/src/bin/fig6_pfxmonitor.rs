//! Figure 6 — monitoring a victim's IP space with the pfxmonitor
//! plugin (the GARR / AS137 hijack case study).
//!
//! Paper shape: the unique-prefix series oscillates mildly
//! (aggregation/de-aggregation) while the unique-origin series spikes
//! from 1 to 2 during each of the four hijack episodes, each lasting
//! about an hour.
//!
//! Pass `--workers N` to drive the monitor on the sharded runtime
//! (`corsaro::runtime`) instead of the sequential pipeline — the
//! figure must come out identical either way.

use bench::{header, scaled, sparkline};
use bgpstream_repro::bgpstream::BgpStream;
use bgpstream_repro::broker::LocalBroker;
use bgpstream_repro::corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use bgpstream_repro::corsaro::{run_pipeline, PfxMonitor};
use bgpstream_repro::worlds;

/// `--workers N` (0/absent = sequential pipeline).
fn workers_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--workers") {
        None => 0,
        Some(i) => args
            .get(i + 1)
            .expect("--workers requires a value")
            .parse()
            .expect("--workers takes an integer"),
    }
}

fn main() {
    header(
        "Figure 6",
        "pfxmonitor over a victim's IP space (GARR hijacks)",
    );
    let dir = worlds::scratch_dir("fig6");
    let horizon = scaled(86_400);
    let mut world = worlds::hijack_scenario(dir.clone(), 6, horizon, 4);
    println!(
        "victim AS{} ({} ranges), attacker AS{}, episodes at {:?}",
        world.info.victim.unwrap(),
        world.info.victim_ranges.len(),
        world.info.attacker.unwrap(),
        world
            .info
            .hijacks
            .iter()
            .map(|(t, _)| *t)
            .collect::<Vec<_>>()
    );
    world.sim.run_until(horizon);

    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(world.index.clone()))
        .interval(0, Some(horizon))
        .start();
    let mut monitor = PfxMonitor::new(world.info.victim_ranges.iter().copied());
    match workers_flag() {
        0 => {
            run_pipeline(&mut stream, 300, &mut [&mut monitor]);
        }
        workers => {
            println!("(sharded runtime, {workers} workers)");
            ShardedRuntime::builder()
                .workers(workers)
                .bin_size(300)
                .build()
                .run(&mut stream, &mut [&mut monitor as &mut dyn ShardedPlugin]);
        }
    }

    let prefixes: Vec<u64> = monitor.series.iter().map(|p| p.prefixes as u64).collect();
    let origins: Vec<u64> = monitor.series.iter().map(|p| p.origins as u64).collect();
    println!("\nunique prefixes per 5-min bin: {}", sparkline(&prefixes));
    println!("unique origins  per 5-min bin: {}", sparkline(&origins));

    // Spike accounting vs ground truth.
    let spikes: Vec<u64> = monitor
        .series
        .windows(2)
        .filter(|w| w[0].origins == 1 && w[1].origins > 1)
        .map(|w| w[1].time)
        .collect();
    println!("\norigin-count spikes detected at bins: {spikes:?}");
    println!(
        "ground-truth episode starts:          {:?}",
        world
            .info
            .hijacks
            .iter()
            .map(|(t, _)| *t)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        spikes.len(),
        world.info.hijacks.len(),
        "each scripted hijack must produce exactly one spike"
    );
    println!(
        "paper shape: {} spikes of the origin series 1 -> 2, ~1 h each.",
        spikes.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
