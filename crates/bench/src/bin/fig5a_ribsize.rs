//! Figure 5a — growth of the IPv4 routing table in VPs over time.
//!
//! Longitudinal analysis over monthly RIB snapshots: per-VP table
//! sizes, the partial-feed skew, and the paper's full-feed definition
//! (within 20 percentage points of the per-bin maximum). Also reports
//! archive volume (the §2 ">2 TB of compressed data in 2015" claim,
//! scaled).

use bench::{header, scaled, sparkline};
use bgpstream_repro::analytics::{full_feed_vps, rib_partitions, rib_size_per_vp};
use bgpstream_repro::worlds;

fn main() {
    header(
        "Figure 5a",
        "IPv4 routing-table growth per VP; full- vs partial-feed",
    );
    let dir = worlds::scratch_dir("fig5a");
    let months = scaled(60) as u32;
    let step = 6u32.min(months.max(1));
    let (world, times) = worlds::longitudinal(dir.clone(), 5, months, step, None);
    println!(
        "{} collectors, {} RIB snapshots, archive bytes written: {}",
        world.collectors.len(),
        times.len() * world.collectors.len(),
        world.sim.stats().bytes
    );

    let parts = rib_partitions(&world.index, 0, *times.last().unwrap());
    let sizes = rib_size_per_vp(&world.index, &parts, 8);
    let feeds = full_feed_vps(&sizes);

    println!("\n  time      VPs   min    p50    max    mean   full-feed");
    let mut means = Vec::new();
    for &t in &times {
        let mut at: Vec<usize> = sizes
            .iter()
            .filter(|p| p.time == t)
            .map(|p| p.prefixes_v4)
            .collect();
        at.sort_unstable();
        if at.is_empty() {
            continue;
        }
        let full = feeds.iter().filter(|(ft, _, is)| *ft == t && *is).count();
        let mean = at.iter().sum::<usize>() / at.len();
        means.push(mean as u64);
        println!(
            "{t:8} {:6} {:6} {:6} {:6} {:7}   {}/{}",
            at.len(),
            at[0],
            at[at.len() / 2],
            at[at.len() - 1],
            mean,
            full,
            at.len()
        );
    }
    println!("\nmean table size over time: {}", sparkline(&means));
    let growth = *means.last().unwrap_or(&1) as f64 / (*means.first().unwrap_or(&1)).max(1) as f64;
    println!("growth factor over the span: {growth:.1}x (paper: ~5x over 2001-2016)");
    println!("paper shape: numerous partial-feed VPs skew the distribution downward; only");
    println!("a minority of VPs are within 20 points of the maximum (our full-feed counts above).");
    std::fs::remove_dir_all(&dir).ok();
}
