//! BGP path attributes.
//!
//! [`PathAttributes`] carries the attribute subset that MRT dumps
//! preserve and that BGPStream exposes through elems: ORIGIN, AS_PATH,
//! NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF and COMMUNITIES. (The paper
//! notes libBGPStream does not yet expose *all* attributes; we expose
//! the same set its elems do, plus MED/LOCAL_PREF which the wire codec
//! must round-trip anyway.)

use std::fmt;
use std::net::IpAddr;

use crate::asn::AsPath;
use crate::community::CommunitySet;

/// The ORIGIN attribute (RFC 4271 §4.3, type 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Origin {
    /// Learned from an interior protocol.
    #[default]
    Igp = 0,
    /// Learned via EGP (historic).
    Egp = 1,
    /// Unknown provenance.
    Incomplete = 2,
}

impl Origin {
    /// Decode the wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Origin::Igp,
            1 => Origin::Egp,
            2 => Origin::Incomplete,
            _ => return None,
        })
    }

    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "INCOMPLETE",
        })
    }
}

/// The path attributes of one route.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PathAttributes {
    /// ORIGIN (mandatory on announcements).
    pub origin: Origin,
    /// AS_PATH (mandatory on announcements; may be empty for routes a
    /// VP originates itself).
    pub as_path: AsPath,
    /// NEXT_HOP; for IPv6 routes this travels inside MP_REACH_NLRI.
    pub next_hop: Option<IpAddr>,
    /// MULTI_EXIT_DISC (optional non-transitive).
    pub med: Option<u32>,
    /// LOCAL_PREF (sent on IBGP sessions; collectors peer EBGP so this
    /// is usually absent, but the codec round-trips it).
    pub local_pref: Option<u32>,
    /// COMMUNITIES (RFC 1997).
    pub communities: CommunitySet,
}

impl PathAttributes {
    /// Attributes with just an AS path and next hop — the common shape
    /// produced by the collector simulator.
    pub fn route(as_path: AsPath, next_hop: IpAddr) -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path,
            next_hop: Some(next_hop),
            med: None,
            local_pref: None,
            communities: CommunitySet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn origin_roundtrip() {
        for c in 0..=2u8 {
            assert_eq!(Origin::from_code(c).unwrap().code(), c);
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn origin_display() {
        assert_eq!(Origin::Igp.to_string(), "IGP");
        assert_eq!(Origin::Incomplete.to_string(), "INCOMPLETE");
    }

    #[test]
    fn route_constructor_defaults() {
        let a = PathAttributes::route(
            AsPath::from_sequence([1, 2]),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
        );
        assert_eq!(a.origin, Origin::Igp);
        assert!(a.communities.is_empty());
        assert!(a.med.is_none());
    }
}
