//! IPv4/IPv6 CIDR prefixes.
//!
//! A [`Prefix`] is the unit of reachability in BGP: NLRI entries,
//! withdrawals and RIB rows are all keyed by prefix. The representation
//! is a 128-bit integer holding the network bits left-aligned (IPv4
//! mapped into the top 32 bits) plus a length, which makes containment
//! and ordering cheap bit arithmetic shared across families.

use std::cmp::Ordering;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Error returned when parsing a prefix from text fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

/// A CIDR prefix, IPv4 or IPv6.
///
/// Invariants: `len <= max_len()` and all bits beyond `len` are zero
/// (enforced by constructors via masking).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    /// Network bits, left-aligned in 128 bits. For IPv4 the address
    /// occupies bits 127..=96.
    bits: u128,
    /// Prefix length in bits (0..=32 v4, 0..=128 v6).
    len: u8,
    /// True for IPv4.
    v4: bool,
}

impl Prefix {
    /// Construct an IPv4 prefix; host bits beyond `len` are masked off.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length {len} > 32");
        let raw = (u32::from(addr) as u128) << 96;
        Prefix {
            bits: mask(raw, len),
            len,
            v4: true,
        }
    }

    /// Construct an IPv6 prefix; host bits beyond `len` are masked off.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length {len} > 128");
        Prefix {
            bits: mask(u128::from(addr), len),
            len,
            v4: false,
        }
    }

    /// Construct from a generic [`IpAddr`].
    pub fn new(addr: IpAddr, len: u8) -> Self {
        match addr {
            IpAddr::V4(a) => Prefix::v4(a, len),
            IpAddr::V6(a) => Prefix::v6(a, len),
        }
    }

    /// The all-zero default route for the family (`0.0.0.0/0` / `::/0`).
    pub fn default_route(v4: bool) -> Self {
        if v4 {
            Prefix::v4(Ipv4Addr::UNSPECIFIED, 0)
        } else {
            Prefix::v6(Ipv6Addr::UNSPECIFIED, 0)
        }
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True when the prefix length is zero (default route).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True for IPv4 prefixes.
    pub fn is_ipv4(&self) -> bool {
        self.v4
    }

    /// Maximum prefix length for the family (32 or 128).
    pub fn max_len(&self) -> u8 {
        if self.v4 {
            32
        } else {
            128
        }
    }

    /// Network address as an [`IpAddr`].
    pub fn network(&self) -> IpAddr {
        if self.v4 {
            IpAddr::V4(Ipv4Addr::from((self.bits >> 96) as u32))
        } else {
            IpAddr::V6(Ipv6Addr::from(self.bits))
        }
    }

    /// The left-aligned network bits (shared-key form used by the trie).
    pub fn raw_bits(&self) -> u128 {
        self.bits
    }

    /// Bit `i` (0 = most significant network bit). Bits past `len` read
    /// as stored (always zero by construction).
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 128);
        (self.bits >> (127 - i)) & 1 == 1
    }

    /// True iff `self` contains `other` (same family, `self` no longer
    /// than `other`, and network bits agree on `self.len` bits).
    /// Reflexive.
    pub fn contains(&self, other: &Prefix) -> bool {
        self.v4 == other.v4 && self.len <= other.len && mask(other.bits, self.len) == self.bits
    }

    /// True iff one of the two prefixes contains the other (address
    /// ranges intersect).
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The immediate parent (one bit shorter), or `None` at length 0.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            bits: mask(self.bits, len),
            len,
            v4: self.v4,
        })
    }

    /// The two children one bit longer, or `None` at the family's
    /// maximum length.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= self.max_len() {
            return None;
        }
        let len = self.len + 1;
        let hi_bit = 1u128 << (127 - self.len as u32);
        Some((
            Prefix {
                bits: self.bits,
                len,
                v4: self.v4,
            },
            Prefix {
                bits: self.bits | hi_bit,
                len,
                v4: self.v4,
            },
        ))
    }

    /// A host route (`/32` or `/128`) for the `n`-th address inside the
    /// prefix (wrapping within the prefix's host space). Used by the
    /// RTBH case study to pick black-holed target addresses.
    pub fn host(&self, n: u128) -> Prefix {
        let max = self.max_len();
        let host_bits = (max - self.len) as u32;
        let span: u128 = if host_bits >= 128 {
            u128::MAX
        } else {
            (1 << host_bits) - 1
        };
        let offset = if span == 0 { 0 } else { n & span };
        let shift = 128 - max as u32;
        Prefix {
            bits: self.bits | (offset << shift),
            len: max,
            v4: self.v4,
        }
    }
}

/// Zero all bits of `raw` beyond the first `len`.
fn mask(raw: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else if len >= 128 {
        raw
    } else {
        raw & (u128::MAX << (128 - len as u32))
    }
}

impl Ord for Prefix {
    /// Family first (IPv4 before IPv6), then network bits, then length:
    /// the order `bgpdump` output sorts prefixes in.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .v4
            .cmp(&self.v4)
            .then(self.bits.cmp(&other.bits))
            .then(self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("missing '/' in {s:?}")))?;
        let addr: IpAddr = addr
            .parse()
            .map_err(|e| PrefixParseError(format!("{s:?}: {e}")))?;
        let len: u8 = len
            .parse()
            .map_err(|e| PrefixParseError(format!("{s:?}: {e}")))?;
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(PrefixParseError(format!("{s:?}: length {len} > {max}")));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "10.0.0.0/8",
            "192.168.1.0/24",
            "0.0.0.0/0",
            "2001:db8::/32",
            "::/0",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn host_bits_are_masked() {
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
        assert_eq!(p("2001:db8::ffff/32").to_string(), "2001:db8::/32");
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("notanip/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").contains(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").contains(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").contains(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").contains(&p("11.0.0.0/16")));
        // Cross-family never contains.
        assert!(!p("0.0.0.0/0").contains(&p("::/0")));
    }

    #[test]
    fn overlap_is_symmetric_containment() {
        assert!(p("10.0.0.0/8").overlaps(&p("10.250.0.0/16")));
        assert!(p("10.250.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
    }

    #[test]
    fn default_route_contains_everything_in_family() {
        let d4 = Prefix::default_route(true);
        assert!(d4.contains(&p("203.0.113.0/24")));
        assert!(!d4.contains(&p("2001:db8::/32")));
    }

    #[test]
    fn parent_and_children() {
        let x = p("192.168.0.0/24");
        assert_eq!(x.parent().unwrap().to_string(), "192.168.0.0/23");
        let (lo, hi) = x.children().unwrap();
        assert_eq!(lo.to_string(), "192.168.0.0/25");
        assert_eq!(hi.to_string(), "192.168.0.128/25");
        assert!(x.contains(&lo) && x.contains(&hi));
        assert!(p("10.0.0.0/0").parent().is_none());
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn host_picks_addresses_inside() {
        let x = p("203.0.113.0/24");
        let h0 = x.host(0);
        let h5 = x.host(5);
        assert_eq!(h0.to_string(), "203.0.113.0/32");
        assert_eq!(h5.to_string(), "203.0.113.5/32");
        assert!(x.contains(&h5));
        // Wraps past the host space.
        assert_eq!(x.host(256).to_string(), "203.0.113.0/32");
    }

    #[test]
    fn ordering_groups_v4_first() {
        let mut v = [p("2001:db8::/32"), p("10.0.0.0/8"), p("10.0.0.0/9")];
        v.sort();
        assert_eq!(
            v.iter().map(|x| x.to_string()).collect::<Vec<_>>(),
            vec!["10.0.0.0/8", "10.0.0.0/9", "2001:db8::/32"]
        );
    }

    #[test]
    fn bit_indexing() {
        let x = p("128.0.0.0/1");
        assert!(x.bit(0));
        let y = p("64.0.0.0/2");
        assert!(!y.bit(0));
        assert!(y.bit(1));
    }
}
