//! A binary patricia-style trie keyed by [`Prefix`].
//!
//! The pfxmonitor plugin (Section 6.1) must select "RIB and Updates
//! dump records related to prefixes that overlap with the given IP
//! address ranges", and libBGPStream's prefix filters support exact,
//! more-specific and less-specific matching — all of which reduce to
//! walks of this trie. It stores one optional value per inserted prefix
//! and supports longest-prefix match, containment queries in both
//! directions, and iteration.

use crate::prefix::Prefix;

/// Matching mode for prefix filters, mirroring libBGPStream's
/// `prefix-exact`, `prefix-more`, `prefix-less` and `prefix-any`
/// filter options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefixMatch {
    /// The queried prefix equals a stored prefix.
    Exact,
    /// The queried prefix equals or is contained in a stored prefix
    /// (stored is less specific or equal).
    MoreSpecific,
    /// The queried prefix equals or contains a stored prefix (stored is
    /// more specific or equal).
    LessSpecific,
    /// Either direction of overlap.
    Any,
}

#[derive(Debug)]
struct Node<V> {
    /// Value present iff a prefix terminates here.
    value: Option<(Prefix, V)>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A prefix-keyed trie with one value per prefix.
///
/// Two separate roots are kept per address family so IPv4 and IPv6 keys
/// never collide even though both are stored left-aligned in 128 bits.
#[derive(Debug)]
pub struct PrefixTrie<V> {
    root_v4: Node<V>,
    root_v6: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root_v4: Node::new(),
            root_v6: Node::new(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn root(&self, v4: bool) -> &Node<V> {
        if v4 {
            &self.root_v4
        } else {
            &self.root_v6
        }
    }

    fn root_mut(&mut self, v4: bool) -> &mut Node<V> {
        if v4 {
            &mut self.root_v4
        } else {
            &mut self.root_v6
        }
    }

    /// Insert `prefix` with `value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = self.root_mut(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.take();
        node.value = Some((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Remove `prefix`, returning its value if present. Empty interior
    /// nodes are left in place (removal is rare in our workloads).
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        let mut node = self.root_mut(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let out = node.value.take();
        if out.is_some() {
            self.len -= 1;
        }
        out.map(|(_, v)| v)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = self.root(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref().map(|(_, v)| v)
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = self.root_mut(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut().map(|(_, v)| v)
    }

    /// Longest stored prefix containing `prefix` (including an exact
    /// match), i.e. the route a router would select for this
    /// destination.
    pub fn longest_match(&self, prefix: &Prefix) -> Option<(&Prefix, &V)> {
        let mut node = self.root(prefix.is_ipv4());
        let mut best = node.value.as_ref();
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(n) => {
                    node = n;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best.map(|(p, v)| (p, v))
    }

    /// Walk the stored prefixes that contain `prefix` (root-down,
    /// shortest first), stopping as soon as `f` returns true. Returns
    /// whether any call did. Allocation-free counterpart of
    /// [`PrefixTrie::covering`] for hot-path membership tests.
    pub fn any_covering(&self, prefix: &Prefix, mut f: impl FnMut(&Prefix, &V) -> bool) -> bool {
        let mut node = self.root(prefix.is_ipv4());
        if let Some((p, v)) = node.value.as_ref() {
            if f(p, v) {
                return true;
            }
        }
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(n) => {
                    node = n;
                    if let Some((p, v)) = node.value.as_ref() {
                        if f(p, v) {
                            return true;
                        }
                    }
                }
                None => break,
            }
        }
        false
    }

    /// Walk the stored prefixes contained in `prefix` (subtree, bit
    /// order), stopping as soon as `f` returns true. Returns whether
    /// any call did. Allocation-free counterpart of
    /// [`PrefixTrie::covered_by`].
    pub fn any_covered_by(&self, prefix: &Prefix, mut f: impl FnMut(&Prefix, &V) -> bool) -> bool {
        let mut node = self.root(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(n) => node = n,
                None => return false,
            }
        }
        any_in_subtree(node, &mut f)
    }

    /// All stored prefixes that contain `prefix` (walk from the root),
    /// shortest first.
    pub fn covering(&self, prefix: &Prefix) -> Vec<(&Prefix, &V)> {
        let mut out = Vec::new();
        let mut node = self.root(prefix.is_ipv4());
        if let Some((p, v)) = node.value.as_ref() {
            out.push((p, v));
        }
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(n) => {
                    node = n;
                    if let Some((p, v)) = node.value.as_ref() {
                        out.push((p, v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// All stored prefixes contained in `prefix` (subtree walk),
    /// in bit order.
    pub fn covered_by(&self, prefix: &Prefix) -> Vec<(&Prefix, &V)> {
        let mut node = self.root(prefix.is_ipv4());
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(n) => node = n,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        collect(node, &mut out);
        out
    }

    /// True iff any stored prefix overlaps `prefix` in the requested
    /// `mode`. Allocation-free: membership reduces to the early-exit
    /// walks, never to materialised covering/covered-by lists.
    pub fn matches(&self, prefix: &Prefix, mode: PrefixMatch) -> bool {
        let any = |_: &Prefix, _: &V| true;
        match mode {
            PrefixMatch::Exact => self.get(prefix).is_some(),
            PrefixMatch::MoreSpecific => self.any_covering(prefix, any),
            PrefixMatch::LessSpecific => self.any_covered_by(prefix, any),
            PrefixMatch::Any => self.any_covering(prefix, any) || self.any_covered_by(prefix, any),
        }
    }

    /// Iterate over all stored `(prefix, value)` pairs (IPv4 subtree
    /// first, bit order within a family).
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root_v4, &mut out);
        collect(&self.root_v6, &mut out);
        out.into_iter()
    }
}

fn any_in_subtree<V>(node: &Node<V>, f: &mut impl FnMut(&Prefix, &V) -> bool) -> bool {
    if let Some((p, v)) = node.value.as_ref() {
        if f(p, v) {
            return true;
        }
    }
    node.children
        .iter()
        .flatten()
        .any(|child| any_in_subtree(child, f))
}

fn collect<'a, V>(node: &'a Node<V>, out: &mut Vec<(&'a Prefix, &'a V)>) {
    if let Some((p, v)) = node.value.as_ref() {
        out.push((p, v));
    }
    for child in node.children.iter().flatten() {
        collect(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample() -> PrefixTrie<u32> {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("10.1.2.0/24"), 3);
        t.insert(p("192.0.2.0/24"), 4);
        t.insert(p("2001:db8::/32"), 5);
        t
    }

    #[test]
    fn insert_get_remove() {
        let mut t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(&p("10.1.0.0/16")), Some(&2));
        assert_eq!(t.insert(p("10.1.0.0/16"), 20), Some(2));
        assert_eq!(t.len(), 5);
        assert_eq!(t.remove(&p("10.1.0.0/16")), Some(20));
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&p("10.1.0.0/16")), None);
        assert_eq!(t.remove(&p("10.1.0.0/16")), None);
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let t = sample();
        let (m, v) = t.longest_match(&p("10.1.2.3/32")).unwrap();
        assert_eq!((m.to_string().as_str(), *v), ("10.1.2.0/24", 3));
        let (m, _) = t.longest_match(&p("10.9.0.0/16")).unwrap();
        assert_eq!(m.to_string(), "10.0.0.0/8");
        assert!(t.longest_match(&p("172.16.0.0/12")).is_none());
    }

    #[test]
    fn longest_match_exact_hit() {
        let t = sample();
        let (m, _) = t.longest_match(&p("10.1.0.0/16")).unwrap();
        assert_eq!(m.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn covering_returns_chain() {
        let t = sample();
        let c: Vec<String> = t
            .covering(&p("10.1.2.0/24"))
            .iter()
            .map(|(p, _)| p.to_string())
            .collect();
        assert_eq!(c, vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let t = sample();
        let c: Vec<String> = t
            .covered_by(&p("10.0.0.0/8"))
            .iter()
            .map(|(p, _)| p.to_string())
            .collect();
        assert_eq!(c, vec!["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]);
        assert!(t.covered_by(&p("172.16.0.0/12")).is_empty());
    }

    #[test]
    fn families_are_disjoint() {
        let t = sample();
        assert!(t.covering(&p("::/0")).is_empty());
        assert_eq!(t.covered_by(&p("::/0")).len(), 1);
    }

    #[test]
    fn match_modes() {
        let t = sample();
        assert!(t.matches(&p("10.0.0.0/8"), PrefixMatch::Exact));
        assert!(!t.matches(&p("10.0.0.0/9"), PrefixMatch::Exact));
        assert!(t.matches(&p("10.1.2.3/32"), PrefixMatch::MoreSpecific));
        assert!(!t.matches(&p("11.0.0.0/8"), PrefixMatch::MoreSpecific));
        assert!(t.matches(&p("0.0.0.0/0"), PrefixMatch::LessSpecific));
        assert!(t.matches(&p("10.0.0.0/9"), PrefixMatch::Any));
        assert!(!t.matches(&p("172.16.0.0/12"), PrefixMatch::Any));
    }

    #[test]
    fn iter_yields_everything() {
        let t = sample();
        assert_eq!(t.iter().count(), 5);
        let sum: u32 = t.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, 15);
    }

    #[test]
    fn any_covering_walks_and_early_exits() {
        let t = sample();
        // Agrees with the materialised walk.
        assert!(t.any_covering(&p("10.1.2.3/32"), |_, _| true));
        assert!(!t.any_covering(&p("172.16.0.0/12"), |_, _| true));
        // Predicate filtering: only the /24 value is 3.
        assert!(t.any_covering(&p("10.1.2.3/32"), |_, v| *v == 3));
        assert!(!t.any_covering(&p("10.1.2.3/32"), |_, v| *v == 99));
        // Early exit: stops at the first hit (shortest prefix first).
        let mut seen = Vec::new();
        t.any_covering(&p("10.1.2.3/32"), |pfx, _| {
            seen.push(pfx.to_string());
            true
        });
        assert_eq!(seen, vec!["10.0.0.0/8"]);
    }

    #[test]
    fn any_covered_by_scans_subtree() {
        let t = sample();
        assert!(t.any_covered_by(&p("10.0.0.0/8"), |_, _| true));
        assert!(t.any_covered_by(&p("10.1.0.0/16"), |_, v| *v == 3));
        assert!(!t.any_covered_by(&p("10.1.0.0/16"), |_, v| *v == 4));
        assert!(!t.any_covered_by(&p("172.16.0.0/12"), |_, _| true));
        // Exact-length node counts as covered-by (reflexive).
        assert!(t.any_covered_by(&p("192.0.2.0/24"), |_, v| *v == 4));
    }

    #[test]
    fn default_route_storable() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0u8);
        assert!(t.matches(&p("198.51.100.0/24"), PrefixMatch::MoreSpecific));
    }
}
