//! Core BGP protocol model shared by the whole BGPStream reproduction.
//!
//! This crate implements the data model of the Border Gateway Protocol
//! (RFC 4271) as needed by a route-collector pipeline:
//!
//! * [`Asn`] and [`AsPath`] — autonomous-system numbers and AS paths,
//!   including `AS_SET` / `AS_SEQUENCE` segments;
//! * [`Prefix`] — IPv4/IPv6 CIDR prefixes with containment/overlap tests
//!   and a longest-prefix-match [`trie::PrefixTrie`];
//! * [`Community`] — RFC 1997 communities (including the conventional
//!   `ASN:666` black-holing communities used in Section 4.3 of the
//!   paper);
//! * [`attrs::PathAttributes`] — the subset of path attributes that MRT
//!   dumps carry and that `BGPStream elem`s expose (Table 1);
//! * [`message`] — wire-format encoding/decoding of BGP UPDATE messages
//!   (the payload of MRT `BGP4MP_MESSAGE` records);
//! * [`fsm::SessionState`] — the BGP finite-state-machine states used by
//!   RIPE RIS `STATE_CHANGE` records and by the `old_state`/`new_state`
//!   elem fields.
//!
//! Everything here is deterministic, allocation-conscious and free of
//! I/O; the `mrt` crate layers the RFC 6396 container format on top.

#![forbid(unsafe_code)]

pub mod asn;
pub mod attrs;
pub mod community;
pub mod fsm;
pub mod message;
pub mod prefix;
pub mod trie;

pub use asn::{AsPath, AsPathSegment, Asn};
pub use attrs::{Origin, PathAttributes};
pub use community::{Community, CommunitySet, BLACKHOLE_VALUE};
pub use fsm::SessionState;
pub use message::{BgpMessage, BgpUpdate};
pub use prefix::{Prefix, PrefixParseError};
pub use trie::PrefixTrie;
