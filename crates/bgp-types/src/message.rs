//! BGP message wire codec (RFC 4271), with multiprotocol extensions
//! (RFC 4760) for IPv6 NLRI.
//!
//! MRT `BGP4MP_MESSAGE(_AS4)` records embed a raw BGP message; this
//! module provides the encoder the collector simulator uses to produce
//! those records and the decoder libBGPStream uses to extract elems.
//! AS numbers are always encoded 4-byte (the `_AS4` record flavour),
//! matching what modern collectors emit.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::asn::{AsPath, AsPathSegment, Asn};
use crate::attrs::{Origin, PathAttributes};
use crate::community::{Community, CommunitySet};
use crate::prefix::Prefix;

/// BGP message header marker: 16 bytes of 0xFF.
const MARKER: [u8; 16] = [0xFF; 16];
/// Fixed header size: marker + length + type.
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_COMMUNITIES: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXT_LEN: u8 = 0x10;

const AFI_IPV4: u16 = 1;
const AFI_IPV6: u16 = 2;
const SAFI_UNICAST: u8 = 1;

const SEG_SET: u8 = 1;
const SEG_SEQUENCE: u8 = 2;

/// Errors raised while decoding BGP wire data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Fewer bytes than a structure requires.
    Truncated(&'static str),
    /// A length field contradicts the enclosing structure.
    BadLength(&'static str),
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Unknown message type code.
    UnknownType(u8),
    /// A semantically invalid field (bad origin code, prefix length…).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated(w) => write!(f, "truncated {w}"),
            CodecError::BadLength(w) => write!(f, "bad length in {w}"),
            CodecError::BadMarker => write!(f, "bad BGP header marker"),
            CodecError::UnknownType(t) => write!(f, "unknown BGP message type {t}"),
            CodecError::Invalid(w) => write!(f, "invalid {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A BGP UPDATE message: withdrawals plus announcements sharing one
/// attribute set. IPv6 NLRI travels in MP_REACH/MP_UNREACH attributes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BgpUpdate {
    /// Prefixes no longer reachable.
    pub withdrawals: Vec<Prefix>,
    /// Shared path attributes (`None` for pure withdrawals).
    pub attrs: Option<PathAttributes>,
    /// Prefixes now reachable via `attrs`.
    pub announcements: Vec<Prefix>,
}

impl BgpUpdate {
    /// An announcement of `prefixes` with attributes `attrs`.
    pub fn announce(prefixes: Vec<Prefix>, attrs: PathAttributes) -> Self {
        BgpUpdate {
            withdrawals: Vec::new(),
            attrs: Some(attrs),
            announcements: prefixes,
        }
    }

    /// A withdrawal of `prefixes`.
    pub fn withdraw(prefixes: Vec<Prefix>) -> Self {
        BgpUpdate {
            withdrawals: prefixes,
            attrs: None,
            announcements: Vec::new(),
        }
    }

    /// True when the update carries nothing (keepalive-ish; collectors
    /// never emit these).
    pub fn is_empty(&self) -> bool {
        self.withdrawals.is_empty() && self.announcements.is_empty()
    }
}

/// A decoded BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    /// Session open.
    Open {
        /// The speaker's AS number (AS_TRANS on the wire when > 16 bits).
        asn: Asn,
        /// Proposed hold time in seconds.
        hold_time: u16,
        /// The speaker's BGP identifier.
        bgp_id: u32,
    },
    /// Route update.
    Update(BgpUpdate),
    /// Error notification.
    Notification {
        /// Error code (RFC 4271 §4.5).
        code: u8,
        /// Error subcode.
        subcode: u8,
    },
    /// Keepalive.
    Keepalive,
}

impl BgpMessage {
    /// Encode to the full wire form (header + body).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        let ty = match self {
            BgpMessage::Open {
                asn,
                hold_time,
                bgp_id,
            } => {
                body.put_u8(4); // version
                                // 2-byte ASN field: AS_TRANS for 4-byte ASNs.
                let as16 = if asn.0 > u16::MAX as u32 {
                    23456
                } else {
                    asn.0 as u16
                };
                body.put_u16(as16);
                body.put_u16(*hold_time);
                body.put_u32(*bgp_id);
                body.put_u8(0); // no optional parameters
                TYPE_OPEN
            }
            BgpMessage::Update(u) => {
                encode_update_body(u, &mut body);
                TYPE_UPDATE
            }
            BgpMessage::Notification { code, subcode } => {
                body.put_u8(*code);
                body.put_u8(*subcode);
                TYPE_NOTIFICATION
            }
            BgpMessage::Keepalive => TYPE_KEEPALIVE,
        };
        let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
        out.put_slice(&MARKER);
        out.put_u16((HEADER_LEN + body.len()) as u16);
        out.put_u8(ty);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode one message from `buf`, which must contain exactly one
    /// whole message.
    pub fn decode(mut buf: &[u8]) -> Result<BgpMessage, CodecError> {
        if buf.len() < HEADER_LEN {
            return Err(CodecError::Truncated("BGP header"));
        }
        if buf[..16] != MARKER {
            return Err(CodecError::BadMarker);
        }
        buf.advance(16);
        let total = buf.get_u16() as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&total) {
            return Err(CodecError::BadLength("BGP header"));
        }
        let ty = buf.get_u8();
        let body_len = total - HEADER_LEN;
        if buf.len() < body_len {
            return Err(CodecError::Truncated("BGP body"));
        }
        let mut body = &buf[..body_len];
        match ty {
            TYPE_OPEN => {
                if body.len() < 10 {
                    return Err(CodecError::Truncated("OPEN body"));
                }
                let _version = body.get_u8();
                let asn = Asn(body.get_u16() as u32);
                let hold_time = body.get_u16();
                let bgp_id = body.get_u32();
                Ok(BgpMessage::Open {
                    asn,
                    hold_time,
                    bgp_id,
                })
            }
            TYPE_UPDATE => Ok(BgpMessage::Update(decode_update_body(body)?)),
            TYPE_NOTIFICATION => {
                if body.len() < 2 {
                    return Err(CodecError::Truncated("NOTIFICATION body"));
                }
                Ok(BgpMessage::Notification {
                    code: body.get_u8(),
                    subcode: body.get_u8(),
                })
            }
            TYPE_KEEPALIVE => Ok(BgpMessage::Keepalive),
            other => Err(CodecError::UnknownType(other)),
        }
    }
}

fn split_by_family(prefixes: &[Prefix]) -> (Vec<Prefix>, Vec<Prefix>) {
    let (mut v4, mut v6) = (Vec::new(), Vec::new());
    for p in prefixes {
        if p.is_ipv4() {
            v4.push(*p);
        } else {
            v6.push(*p);
        }
    }
    (v4, v6)
}

fn encode_update_body(u: &BgpUpdate, out: &mut BytesMut) {
    let (wd_v4, wd_v6) = split_by_family(&u.withdrawals);
    let (ann_v4, ann_v6) = split_by_family(&u.announcements);

    // Withdrawn routes (IPv4 only in the base message).
    let mut wd = BytesMut::new();
    for p in &wd_v4 {
        encode_nlri(p, &mut wd);
    }
    out.put_u16(wd.len() as u16);
    out.put_slice(&wd);

    // Path attributes.
    let mut attrs = BytesMut::new();
    encode_attrs(u.attrs.as_ref(), &ann_v6, &wd_v6, false, &mut attrs);
    out.put_u16(attrs.len() as u16);
    out.put_slice(&attrs);

    // IPv4 NLRI.
    for p in &ann_v4 {
        encode_nlri(p, out);
    }
}

/// Encode a bare path-attribute sequence (no length prefix).
///
/// `ann_v6` prefixes are carried in an MP_REACH_NLRI attribute and
/// `wd_v6` in MP_UNREACH_NLRI. With `force_mp_nexthop`, an MP_REACH
/// attribute carrying only the IPv6 next hop (no NLRI) is emitted even
/// when `ann_v6` is empty — the shape TABLE_DUMP_V2 RIB rows use.
pub fn encode_attrs(
    a: Option<&PathAttributes>,
    ann_v6: &[Prefix],
    wd_v6: &[Prefix],
    force_mp_nexthop: bool,
    attrs: &mut BytesMut,
) {
    if let Some(a) = a {
        put_attr(attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &[a.origin.code()]);
        let mut path = BytesMut::new();
        encode_as_path(&a.as_path, &mut path);
        put_attr(attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &path);
        if let Some(IpAddr::V4(nh)) = a.next_hop {
            put_attr(attrs, FLAG_TRANSITIVE, ATTR_NEXT_HOP, &nh.octets());
        }
        if let Some(med) = a.med {
            put_attr(attrs, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
        }
        if let Some(lp) = a.local_pref {
            put_attr(attrs, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &lp.to_be_bytes());
        }
        if !a.communities.is_empty() {
            let mut cs = BytesMut::new();
            for c in a.communities.iter() {
                cs.put_u32(c.as_u32());
            }
            put_attr(
                attrs,
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_COMMUNITIES,
                &cs,
            );
        }
        let v6_nexthop = matches!(a.next_hop, Some(IpAddr::V6(_)));
        if !ann_v6.is_empty() || (force_mp_nexthop && v6_nexthop) {
            let mut mp = BytesMut::new();
            mp.put_u16(AFI_IPV6);
            mp.put_u8(SAFI_UNICAST);
            let nh6: Ipv6Addr = match a.next_hop {
                Some(IpAddr::V6(nh)) => nh,
                _ => Ipv6Addr::UNSPECIFIED,
            };
            mp.put_u8(16);
            mp.put_slice(&nh6.octets());
            mp.put_u8(0); // reserved (SNPA count)
            for p in ann_v6 {
                encode_nlri(p, &mut mp);
            }
            put_attr(attrs, FLAG_OPTIONAL, ATTR_MP_REACH, &mp);
        }
    }
    if !wd_v6.is_empty() {
        let mut mp = BytesMut::new();
        mp.put_u16(AFI_IPV6);
        mp.put_u8(SAFI_UNICAST);
        for p in wd_v6 {
            encode_nlri(p, &mut mp);
        }
        put_attr(attrs, FLAG_OPTIONAL, ATTR_MP_UNREACH, &mp);
    }
}

fn put_attr(out: &mut BytesMut, flags: u8, ty: u8, data: &[u8]) {
    if data.len() > u8::MAX as usize {
        out.put_u8(flags | FLAG_EXT_LEN);
        out.put_u8(ty);
        out.put_u16(data.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(ty);
        out.put_u8(data.len() as u8);
    }
    out.put_slice(data);
}

fn encode_as_path(path: &AsPath, out: &mut BytesMut) {
    for seg in path.segments() {
        let (ty, asns) = match seg {
            AsPathSegment::Set(v) => (SEG_SET, v),
            AsPathSegment::Sequence(v) => (SEG_SEQUENCE, v),
        };
        // RFC limits a segment to 255 ASNs; split long sequences.
        for chunk in asns.chunks(255) {
            out.put_u8(ty);
            out.put_u8(chunk.len() as u8);
            for a in chunk {
                out.put_u32(a.0);
            }
        }
    }
}

fn decode_as_path(mut buf: &[u8]) -> Result<AsPath, CodecError> {
    let mut segments = Vec::new();
    while buf.has_remaining() {
        if buf.len() < 2 {
            return Err(CodecError::Truncated("AS_PATH segment header"));
        }
        let ty = buf.get_u8();
        let count = buf.get_u8() as usize;
        if buf.len() < count * 4 {
            return Err(CodecError::Truncated("AS_PATH segment body"));
        }
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(Asn(buf.get_u32()));
        }
        segments.push(match ty {
            SEG_SET => AsPathSegment::Set(asns),
            SEG_SEQUENCE => AsPathSegment::Sequence(asns),
            _ => return Err(CodecError::Invalid("AS_PATH segment type")),
        });
    }
    // Merge consecutive SEQUENCE segments re-split by the 255 limit.
    let mut merged: Vec<AsPathSegment> = Vec::with_capacity(segments.len());
    for seg in segments {
        match (merged.last_mut(), seg) {
            (Some(AsPathSegment::Sequence(a)), AsPathSegment::Sequence(b))
                if a.len() == 255 || b.len() == 255 =>
            {
                a.extend(b);
            }
            (_, seg) => merged.push(seg),
        }
    }
    Ok(AsPath::from_segments(merged))
}

/// Encode a prefix in NLRI form: length byte + minimal network bytes.
pub fn encode_nlri(p: &Prefix, out: &mut BytesMut) {
    out.put_u8(p.len());
    let nbytes = (p.len() as usize).div_ceil(8);
    let raw = p.raw_bits().to_be_bytes();
    out.put_slice(&raw[..nbytes]);
}

/// Decode one NLRI entry from `buf`, advancing it.
pub fn decode_nlri(buf: &mut &[u8], v4: bool) -> Result<Prefix, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated("NLRI length"));
    }
    let len = buf.get_u8();
    let max = if v4 { 32 } else { 128 };
    if len > max {
        return Err(CodecError::Invalid("NLRI prefix length"));
    }
    let nbytes = (len as usize).div_ceil(8);
    if buf.len() < nbytes {
        return Err(CodecError::Truncated("NLRI body"));
    }
    let mut raw = [0u8; 16];
    raw[..nbytes].copy_from_slice(&buf[..nbytes]);
    buf.advance(nbytes);
    let bits = u128::from_be_bytes(raw);
    Ok(if v4 {
        Prefix::v4(Ipv4Addr::from((bits >> 96) as u32), len)
    } else {
        Prefix::v6(Ipv6Addr::from(bits), len)
    })
}

/// The result of decoding a bare path-attribute sequence.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DecodedAttrs {
    /// The recognised attributes.
    pub attrs: PathAttributes,
    /// True if at least one attribute was present.
    pub present: bool,
    /// Prefixes announced via MP_REACH_NLRI.
    pub mp_announcements: Vec<Prefix>,
    /// Prefixes withdrawn via MP_UNREACH_NLRI.
    pub mp_withdrawals: Vec<Prefix>,
}

fn decode_update_body(mut body: &[u8]) -> Result<BgpUpdate, CodecError> {
    if body.len() < 2 {
        return Err(CodecError::Truncated("UPDATE withdrawn length"));
    }
    let wd_len = body.get_u16() as usize;
    if body.len() < wd_len {
        return Err(CodecError::BadLength("UPDATE withdrawn routes"));
    }
    let mut withdrawals = Vec::new();
    {
        let mut wd = &body[..wd_len];
        while !wd.is_empty() {
            withdrawals.push(decode_nlri(&mut wd, true)?);
        }
    }
    body.advance(wd_len);

    if body.len() < 2 {
        return Err(CodecError::Truncated("UPDATE attribute length"));
    }
    let attr_len = body.get_u16() as usize;
    if body.len() < attr_len {
        return Err(CodecError::BadLength("UPDATE path attributes"));
    }
    let decoded = decode_attrs(&body[..attr_len])?;
    body.advance(attr_len);

    withdrawals.extend(decoded.mp_withdrawals);
    let mut announcements = decoded.mp_announcements;
    while !body.is_empty() {
        let mut b = body;
        announcements.push(decode_nlri(&mut b, true)?);
        body = b;
    }

    Ok(BgpUpdate {
        withdrawals,
        attrs: if decoded.present {
            Some(decoded.attrs)
        } else {
            None
        },
        announcements,
    })
}

/// Decode a bare path-attribute sequence (no length prefix).
pub fn decode_attrs(mut attrs_raw: &[u8]) -> Result<DecodedAttrs, CodecError> {
    let mut attrs = PathAttributes::default();
    let mut saw_attr = false;
    let mut mp_announcements: Vec<Prefix> = Vec::new();
    let mut withdrawals: Vec<Prefix> = Vec::new();
    while !attrs_raw.is_empty() {
        if attrs_raw.len() < 2 {
            return Err(CodecError::Truncated("attribute header"));
        }
        let flags = attrs_raw.get_u8();
        let ty = attrs_raw.get_u8();
        let len = if flags & FLAG_EXT_LEN != 0 {
            if attrs_raw.len() < 2 {
                return Err(CodecError::Truncated("attribute ext length"));
            }
            attrs_raw.get_u16() as usize
        } else {
            if attrs_raw.is_empty() {
                return Err(CodecError::Truncated("attribute length"));
            }
            attrs_raw.get_u8() as usize
        };
        if attrs_raw.len() < len {
            return Err(CodecError::BadLength("attribute body"));
        }
        let mut data = &attrs_raw[..len];
        attrs_raw.advance(len);
        saw_attr = true;
        match ty {
            ATTR_ORIGIN => {
                if data.len() != 1 {
                    return Err(CodecError::BadLength("ORIGIN"));
                }
                attrs.origin =
                    Origin::from_code(data[0]).ok_or(CodecError::Invalid("ORIGIN code"))?;
            }
            ATTR_AS_PATH => attrs.as_path = decode_as_path(data)?,
            ATTR_NEXT_HOP => {
                if data.len() != 4 {
                    return Err(CodecError::BadLength("NEXT_HOP"));
                }
                attrs.next_hop = Some(IpAddr::V4(Ipv4Addr::new(
                    data[0], data[1], data[2], data[3],
                )));
            }
            ATTR_MED => {
                if data.len() != 4 {
                    return Err(CodecError::BadLength("MED"));
                }
                attrs.med = Some(data.get_u32());
            }
            ATTR_LOCAL_PREF => {
                if data.len() != 4 {
                    return Err(CodecError::BadLength("LOCAL_PREF"));
                }
                attrs.local_pref = Some(data.get_u32());
            }
            ATTR_COMMUNITIES => {
                if !data.len().is_multiple_of(4) {
                    return Err(CodecError::BadLength("COMMUNITIES"));
                }
                let mut cs = Vec::with_capacity(data.len() / 4);
                while data.has_remaining() {
                    cs.push(Community::from_u32(data.get_u32()));
                }
                attrs.communities = CommunitySet::from_iter(cs);
            }
            ATTR_MP_REACH => {
                if data.len() < 5 {
                    return Err(CodecError::Truncated("MP_REACH header"));
                }
                let afi = data.get_u16();
                let _safi = data.get_u8();
                let nh_len = data.get_u8() as usize;
                if data.len() < nh_len + 1 {
                    return Err(CodecError::Truncated("MP_REACH next hop"));
                }
                if afi == AFI_IPV6 && nh_len >= 16 {
                    let mut nh = [0u8; 16];
                    nh.copy_from_slice(&data[..16]);
                    attrs.next_hop = Some(IpAddr::V6(Ipv6Addr::from(nh)));
                }
                data.advance(nh_len);
                let _reserved = data.get_u8();
                let v4 = afi == AFI_IPV4;
                while !data.is_empty() {
                    mp_announcements.push(decode_nlri(&mut data, v4)?);
                }
            }
            ATTR_MP_UNREACH => {
                if data.len() < 3 {
                    return Err(CodecError::Truncated("MP_UNREACH header"));
                }
                let afi = data.get_u16();
                let _safi = data.get_u8();
                let v4 = afi == AFI_IPV4;
                while !data.is_empty() {
                    withdrawals.push(decode_nlri(&mut data, v4)?);
                }
            }
            _ => {} // unknown attributes are skipped, as bgpdump does
        }
    }

    Ok(DecodedAttrs {
        attrs,
        present: saw_attr,
        mp_announcements,
        mp_withdrawals: withdrawals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::Community;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample_attrs() -> PathAttributes {
        let mut a = PathAttributes::route(
            AsPath::from_sequence([65001, 3356, 137]),
            IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)),
        );
        a.communities.insert(Community::new(3356, 100));
        a.communities.insert(Community::blackhole(3356));
        a.med = Some(50);
        a
    }

    #[test]
    fn update_roundtrip_v4() {
        let u = BgpUpdate {
            withdrawals: vec![p("198.51.100.0/24")],
            attrs: Some(sample_attrs()),
            announcements: vec![p("203.0.113.0/24"), p("203.0.113.0/25")],
        };
        let wire = BgpMessage::Update(u.clone()).encode();
        let back = BgpMessage::decode(&wire).unwrap();
        assert_eq!(back, BgpMessage::Update(u));
    }

    #[test]
    fn update_roundtrip_v6() {
        let mut a = PathAttributes::route(
            AsPath::from_sequence([65001, 6939]),
            IpAddr::V6("2001:db8::1".parse().unwrap()),
        );
        a.origin = Origin::Incomplete;
        let u = BgpUpdate {
            withdrawals: vec![p("2001:db8:dead::/48")],
            attrs: Some(a),
            announcements: vec![p("2001:db8:beef::/48")],
        };
        let wire = BgpMessage::Update(u.clone()).encode();
        let back = BgpMessage::decode(&wire).unwrap();
        assert_eq!(back, BgpMessage::Update(u));
    }

    #[test]
    fn pure_withdrawal_roundtrip() {
        let u = BgpUpdate::withdraw(vec![p("10.0.0.0/8"), p("10.1.0.0/16")]);
        let wire = BgpMessage::Update(u.clone()).encode();
        match BgpMessage::decode(&wire).unwrap() {
            BgpMessage::Update(back) => {
                assert_eq!(back.withdrawals, u.withdrawals);
                assert!(back.attrs.is_none());
                assert!(back.announcements.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_family_update_roundtrip() {
        let mut a = sample_attrs();
        a.next_hop = Some(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        let u = BgpUpdate {
            withdrawals: vec![p("198.51.100.0/24"), p("2001:db8:1::/48")],
            attrs: Some(a),
            announcements: vec![p("203.0.113.0/24")],
        };
        let wire = BgpMessage::Update(u.clone()).encode();
        match BgpMessage::decode(&wire).unwrap() {
            BgpMessage::Update(back) => {
                // Withdrawals may be reordered (v6 travels in MP_UNREACH).
                let mut got = back.withdrawals.clone();
                let mut want = u.withdrawals.clone();
                got.sort();
                want.sort();
                assert_eq!(got, want);
                assert_eq!(back.announcements, u.announcements);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keepalive_and_notification_roundtrip() {
        let wire = BgpMessage::Keepalive.encode();
        assert_eq!(wire.len(), HEADER_LEN);
        assert_eq!(BgpMessage::decode(&wire).unwrap(), BgpMessage::Keepalive);

        let n = BgpMessage::Notification {
            code: 6,
            subcode: 2,
        };
        assert_eq!(BgpMessage::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn open_roundtrip_small_asn() {
        let o = BgpMessage::Open {
            asn: Asn(65001),
            hold_time: 180,
            bgp_id: 0x0a000001,
        };
        assert_eq!(BgpMessage::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn open_large_asn_uses_as_trans() {
        let o = BgpMessage::Open {
            asn: Asn(400_000),
            hold_time: 90,
            bgp_id: 1,
        };
        match BgpMessage::decode(&o.encode()).unwrap() {
            BgpMessage::Open { asn, .. } => assert_eq!(asn, Asn(23456)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let mut wire = BgpMessage::Keepalive.encode().to_vec();
        wire[3] = 0;
        assert_eq!(BgpMessage::decode(&wire), Err(CodecError::BadMarker));
    }

    #[test]
    fn decode_rejects_truncation() {
        let wire =
            BgpMessage::Update(BgpUpdate::announce(vec![p("10.0.0.0/8")], sample_attrs())).encode();
        for cut in [0, 5, HEADER_LEN, wire.len() - 1] {
            assert!(BgpMessage::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_prefix_len() {
        // Hand-build an update whose NLRI claims /40 on IPv4.
        let mut body = BytesMut::new();
        body.put_u16(0); // no withdrawals
        body.put_u16(0); // no attributes
        body.put_u8(40); // bogus prefix length
        body.put_slice(&[1, 2, 3, 4, 5]);
        let mut wire = BytesMut::new();
        wire.put_slice(&MARKER);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(TYPE_UPDATE);
        wire.put_slice(&body);
        assert!(matches!(
            BgpMessage::decode(&wire),
            Err(CodecError::Invalid("NLRI prefix length"))
        ));
    }

    #[test]
    fn long_as_path_splits_and_merges() {
        // 300 hops forces two wire segments that must re-merge.
        let hops: Vec<u32> = (1..=300).collect();
        let u = BgpUpdate::announce(
            vec![p("10.0.0.0/8")],
            PathAttributes::route(
                AsPath::from_sequence(hops.clone()),
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            ),
        );
        let wire = BgpMessage::Update(u).encode();
        match BgpMessage::decode(&wire).unwrap() {
            BgpMessage::Update(back) => {
                let path = back.attrs.unwrap().as_path;
                assert_eq!(path.hop_count(), 300);
                assert_eq!(path.asns().map(|a| a.0).collect::<Vec<_>>(), hops);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nlri_zero_length_prefix() {
        let mut out = BytesMut::new();
        encode_nlri(&p("0.0.0.0/0"), &mut out);
        assert_eq!(out.as_ref(), &[0u8]);
        let mut sl: &[u8] = &out;
        assert_eq!(decode_nlri(&mut sl, true).unwrap(), p("0.0.0.0/0"));
    }
}
