//! BGP session finite-state-machine states (RFC 4271 §8.2.2).
//!
//! RIPE RIS collectors maintain one FSM per VP session and dump a
//! `STATE_CHANGE` MRT record whenever the state moves; BGPStream elems
//! expose these as the `old_state` / `new_state` fields of Table 1.
//! RouteViews collectors do not dump state messages — the RT plugin
//! (Section 6.2.1) compensates by declaring a VP down when none of its
//! routes appear in the latest RIB dump.

use std::fmt;

/// The six BGP FSM states, with wire codes as used by MRT
/// `BGP4MP_STATE_CHANGE` records (RFC 6396 §4.4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SessionState {
    /// Initial state; no resources allocated.
    Idle = 1,
    /// Waiting for the transport connection.
    Connect = 2,
    /// Retrying the transport connection.
    Active = 3,
    /// OPEN sent, waiting for peer's OPEN.
    OpenSent = 4,
    /// OPEN received, waiting for KEEPALIVE.
    OpenConfirm = 5,
    /// Session up; routes are exchanged.
    Established = 6,
}

impl SessionState {
    /// Decode a wire code, `None` for anything outside 1..=6.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => SessionState::Idle,
            2 => SessionState::Connect,
            3 => SessionState::Active,
            4 => SessionState::OpenSent,
            5 => SessionState::OpenConfirm,
            6 => SessionState::Established,
            _ => return None,
        })
    }

    /// The MRT wire code.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Whether routes are being exchanged in this state.
    pub fn is_established(self) -> bool {
        self == SessionState::Established
    }

    /// The canonical intermediate states a session walks through from
    /// `Idle` to `Established`; used by the collector simulator to emit
    /// realistic state-change sequences on session (re-)establishment.
    pub fn bring_up_sequence() -> [SessionState; 5] {
        [
            SessionState::Connect,
            SessionState::Active,
            SessionState::OpenSent,
            SessionState::OpenConfirm,
            SessionState::Established,
        ]
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionState::Idle => "IDLE",
            SessionState::Connect => "CONNECT",
            SessionState::Active => "ACTIVE",
            SessionState::OpenSent => "OPENSENT",
            SessionState::OpenConfirm => "OPENCONFIRM",
            SessionState::Established => "ESTABLISHED",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for code in 1..=6u16 {
            let s = SessionState::from_code(code).unwrap();
            assert_eq!(s.code(), code);
        }
        assert_eq!(SessionState::from_code(0), None);
        assert_eq!(SessionState::from_code(7), None);
    }

    #[test]
    fn established_detection() {
        assert!(SessionState::Established.is_established());
        assert!(!SessionState::Idle.is_established());
    }

    #[test]
    fn bring_up_ends_established() {
        let seq = SessionState::bring_up_sequence();
        assert_eq!(*seq.last().unwrap(), SessionState::Established);
        // Codes strictly increase along the bring-up.
        for w in seq.windows(2) {
            assert!(w[0].code() < w[1].code());
        }
    }

    #[test]
    fn display_matches_bgpdump_convention() {
        assert_eq!(SessionState::Established.to_string(), "ESTABLISHED");
        assert_eq!(SessionState::Idle.to_string(), "IDLE");
    }
}
