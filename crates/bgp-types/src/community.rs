//! RFC 1997 BGP communities.
//!
//! A community is a 32-bit opaque value conventionally read as
//! `ASN:value` where the high 16 bits name the AS that defined the
//! community. Section 4.3 of the paper builds its RTBH study on
//! provider black-holing communities; Section 5 (Figure 5d) measures
//! community diversity by counting the distinct AS identifiers seen in
//! community attributes at each VP.

use std::fmt;
use std::str::FromStr;

/// The conventional community value providers assign to black-holing
/// (`ASN:666`, later standardized as BLACKHOLE 65535:666 by RFC 7999).
pub const BLACKHOLE_VALUE: u16 = 666;

/// One RFC 1997 community (`ASN:value`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Community {
    /// High 16 bits: AS identifier (the AS targeted by / defining the
    /// community).
    pub asn: u16,
    /// Low 16 bits: operator-defined value.
    pub value: u16,
}

impl Community {
    /// Build from the two 16-bit halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }

    /// Build from the raw 32-bit wire value.
    pub fn from_u32(raw: u32) -> Self {
        Community {
            asn: (raw >> 16) as u16,
            value: raw as u16,
        }
    }

    /// The raw 32-bit wire value.
    pub fn as_u32(&self) -> u32 {
        ((self.asn as u32) << 16) | self.value as u32
    }

    /// The conventional black-holing community of provider `asn`.
    pub fn blackhole(asn: u16) -> Self {
        Community {
            asn,
            value: BLACKHOLE_VALUE,
        }
    }

    /// Whether this community requests black-holing by convention.
    pub fn is_blackhole(&self) -> bool {
        self.value == BLACKHOLE_VALUE
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

impl FromStr for Community {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in community {s:?}"))?;
        Ok(Community {
            asn: a.parse().map_err(|e| format!("{s:?}: {e}"))?,
            value: v.parse().map_err(|e| format!("{s:?}: {e}"))?,
        })
    }
}

/// An ordered, deduplicated set of communities as carried by one route.
///
/// Kept sorted so equality, hashing and diffing are canonical
/// regardless of the order communities were attached in.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct CommunitySet {
    items: Vec<Community>,
}

impl CommunitySet {
    /// The empty set.
    pub fn new() -> Self {
        CommunitySet { items: Vec::new() }
    }

    /// Build from any iterator, sorting and deduplicating.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Community>>(iter: I) -> Self {
        let mut items: Vec<Community> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        CommunitySet { items }
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no communities are attached.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert, keeping canonical order. Returns true if newly added.
    pub fn insert(&mut self, c: Community) -> bool {
        match self.items.binary_search(&c) {
            Ok(_) => false,
            Err(i) => {
                self.items.insert(i, c);
                true
            }
        }
    }

    /// Remove a community; returns true if it was present.
    pub fn remove(&mut self, c: &Community) -> bool {
        match self.items.binary_search(c) {
            Ok(i) => {
                self.items.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, c: &Community) -> bool {
        self.items.binary_search(c).is_ok()
    }

    /// Whether any community requests black-holing.
    pub fn has_blackhole(&self) -> bool {
        self.items.iter().any(|c| c.is_blackhole())
    }

    /// Iterate in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Community> {
        self.items.iter()
    }

    /// The sorted backing slice.
    pub fn as_slice(&self) -> &[Community] {
        &self.items
    }

    /// Render space-separated in `bgpdump` style.
    pub fn to_bgpdump_string(&self) -> String {
        self.items
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bgpdump_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let c = Community::new(3356, 100);
        assert_eq!(Community::from_u32(c.as_u32()), c);
        assert_eq!(c.as_u32(), (3356u32 << 16) | 100);
    }

    #[test]
    fn parse_and_display() {
        let c: Community = "65535:666".parse().unwrap();
        assert_eq!(c, Community::new(65535, 666));
        assert_eq!(c.to_string(), "65535:666");
        assert!("65536:1".parse::<Community>().is_err());
        assert!("no-colon".parse::<Community>().is_err());
    }

    #[test]
    fn blackhole_detection() {
        assert!(Community::blackhole(3356).is_blackhole());
        assert!(!Community::new(3356, 667).is_blackhole());
        let set = CommunitySet::from_iter([Community::new(1, 2), Community::blackhole(174)]);
        assert!(set.has_blackhole());
    }

    #[test]
    fn set_is_canonical() {
        let a = CommunitySet::from_iter([
            Community::new(2, 2),
            Community::new(1, 1),
            Community::new(2, 2),
        ]);
        let b = CommunitySet::from_iter([Community::new(1, 1), Community::new(2, 2)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = CommunitySet::new();
        assert!(s.insert(Community::new(5, 5)));
        assert!(!s.insert(Community::new(5, 5)));
        assert!(s.contains(&Community::new(5, 5)));
        assert!(s.remove(&Community::new(5, 5)));
        assert!(!s.remove(&Community::new(5, 5)));
        assert!(s.is_empty());
    }

    #[test]
    fn bgpdump_rendering() {
        let s = CommunitySet::from_iter([Community::new(2, 20), Community::new(1, 10)]);
        assert_eq!(s.to_string(), "1:10 2:20");
    }
}
