//! Autonomous-system numbers and AS paths.
//!
//! An AS path is an ordered list of segments (RFC 4271 §4.3, path
//! attribute type 2). The common case is a single `AS_SEQUENCE`; route
//! aggregation may introduce `AS_SET` segments. BGPStream exposes the
//! full segment structure and provides convenience iteration over hops,
//! matching the string rendering of `bgpdump`.

use std::fmt;

/// An autonomous-system number (4-byte, RFC 6793).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved AS number used by collectors when a VP did not
    /// supply one (never appears in simulated topologies).
    pub const RESERVED: Asn = Asn(0);

    /// Whether this is a private-use ASN (RFC 6996).
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// One segment of an AS path.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AsPathSegment {
    /// An ordered sequence of ASes traversed by the route.
    Sequence(Vec<Asn>),
    /// An unordered set of ASes, produced by route aggregation.
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// Number of ASNs stored in the segment.
    pub fn len(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.len(),
        }
    }

    /// True if the segment carries no ASNs (invalid on the wire, but
    /// representable; the codec rejects it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ASNs of the segment in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// Number of hops this segment contributes to path length for
    /// route-selection purposes: an `AS_SET` counts as one hop
    /// (RFC 4271 §9.1.2.2 a).
    pub fn hop_count(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) => v.len(),
            AsPathSegment::Set(_) => 1,
        }
    }
}

/// An AS path: the ordered list of segments from the vantage point
/// toward the origin AS.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// An empty path (used for locally originated routes).
    pub fn empty() -> Self {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Build a path consisting of a single `AS_SEQUENCE`.
    pub fn from_sequence<I: IntoIterator<Item = u32>>(asns: I) -> Self {
        AsPath {
            segments: vec![AsPathSegment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// Build a path from explicit segments.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// True if the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterate over every ASN in the path in order (sets flattened in
    /// stored order).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Path length as used by BGP route selection: sequences count per
    /// hop, each set counts once.
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(|s| s.hop_count()).sum()
    }

    /// The neighbour AS of the vantage point (first ASN of the first
    /// sequence segment), if any.
    pub fn first_asn(&self) -> Option<Asn> {
        self.segments
            .first()
            .and_then(|s| s.asns().first().copied())
    }

    /// The origin AS (last ASN of the path) if the path ends with a
    /// sequence; a trailing `AS_SET` yields `None` because the origin is
    /// ambiguous (aggregated route).
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            AsPathSegment::Sequence(v) => v.last().copied(),
            AsPathSegment::Set(_) => None,
        }
    }

    /// All candidate origin ASes: the single origin for sequences, or
    /// every member of a trailing set. MOAS analyses use this.
    pub fn origins(&self) -> Vec<Asn> {
        match self.segments.last() {
            Some(AsPathSegment::Sequence(v)) => v.last().copied().into_iter().collect(),
            Some(AsPathSegment::Set(v)) => v.clone(),
            None => Vec::new(),
        }
    }

    /// Prepend one ASN (what a router does when exporting a route).
    /// Grows the leading sequence, creating one if the path starts with
    /// a set.
    pub fn prepend(&mut self, asn: Asn) {
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => v.insert(0, asn),
            _ => self.segments.insert(0, AsPathSegment::Sequence(vec![asn])),
        }
    }

    /// The unique ASNs in path order with consecutive duplicates
    /// (prepending) collapsed — the `groupby` idiom of Listing 1.
    pub fn hops_dedup(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::new();
        for asn in self.asns() {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
        out
    }

    /// Whether the path contains `asn` anywhere (loop detection,
    /// transit analyses).
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Render in `bgpdump` style: sequences space-separated, sets as
    /// `{a,b,c}`.
    pub fn to_bgpdump_string(&self) -> String {
        let mut out = String::new();
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match seg {
                AsPathSegment::Sequence(v) => {
                    for (j, a) in v.iter().enumerate() {
                        if j > 0 {
                            out.push(' ');
                        }
                        out.push_str(&a.to_string());
                    }
                }
                AsPathSegment::Set(v) => {
                    out.push('{');
                    for (j, a) in v.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&a.to_string());
                    }
                    out.push('}');
                }
            }
        }
        out
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bgpdump_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_sequence() {
        let p = AsPath::from_sequence([65001, 65002, 65003]);
        assert_eq!(p.to_string(), "65001 65002 65003");
    }

    #[test]
    fn display_with_set() {
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
            AsPathSegment::Set(vec![Asn(3), Asn(4)]),
        ]);
        assert_eq!(p.to_string(), "1 2 {3,4}");
    }

    #[test]
    fn origin_of_sequence() {
        let p = AsPath::from_sequence([10, 20, 30]);
        assert_eq!(p.origin(), Some(Asn(30)));
        assert_eq!(p.first_asn(), Some(Asn(10)));
    }

    #[test]
    fn origin_of_trailing_set_is_ambiguous() {
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1)]),
            AsPathSegment::Set(vec![Asn(2), Asn(3)]),
        ]);
        assert_eq!(p.origin(), None);
        assert_eq!(p.origins(), vec![Asn(2), Asn(3)]);
    }

    #[test]
    fn hop_count_counts_set_once() {
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
            AsPathSegment::Set(vec![Asn(3), Asn(4), Asn(5)]),
        ]);
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn prepend_grows_leading_sequence() {
        let mut p = AsPath::from_sequence([2, 3]);
        p.prepend(Asn(1));
        assert_eq!(p.to_string(), "1 2 3");
        assert_eq!(p.segments().len(), 1);
    }

    #[test]
    fn prepend_on_leading_set_creates_sequence() {
        let mut p = AsPath::from_segments(vec![AsPathSegment::Set(vec![Asn(9)])]);
        p.prepend(Asn(1));
        assert_eq!(p.to_string(), "1 {9}");
        assert_eq!(p.segments().len(), 2);
    }

    #[test]
    fn hops_dedup_collapses_prepending() {
        let p = AsPath::from_sequence([1, 1, 1, 2, 3, 3]);
        assert_eq!(p.hops_dedup(), vec![Asn(1), Asn(2), Asn(3)]);
    }

    #[test]
    fn empty_path() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.origin(), None);
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn private_asn_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(!Asn(3356).is_private());
        assert!(Asn(4_200_000_000).is_private());
    }

    #[test]
    fn contains_looks_in_sets() {
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1)]),
            AsPathSegment::Set(vec![Asn(7), Asn(8)]),
        ]);
        assert!(p.contains(Asn(7)));
        assert!(!p.contains(Asn(9)));
    }
}
