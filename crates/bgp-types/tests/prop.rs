//! Property-based tests for the BGP protocol model.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bgp_types::message::{decode_nlri, encode_nlri};
use bgp_types::{
    AsPath, AsPathSegment, Asn, BgpMessage, BgpUpdate, Community, CommunitySet, Origin,
    PathAttributes, Prefix, PrefixTrie,
};
use bytes::BytesMut;
use proptest::prelude::*;

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::v4(Ipv4Addr::from(addr), len))
}

fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(addr, len)| Prefix::v6(Ipv6Addr::from(addr), len))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![arb_prefix_v4(), arb_prefix_v6()]
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(1u32..100_000, 1..8)
                .prop_map(|v| AsPathSegment::Sequence(v.into_iter().map(Asn).collect())),
            proptest::collection::vec(1u32..100_000, 1..4)
                .prop_map(|v| AsPathSegment::Set(v.into_iter().map(Asn).collect())),
        ],
        1..4,
    )
    .prop_map(AsPath::from_segments)
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_as_path(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec((any::<u16>(), any::<u16>()), 0..6),
        0u8..=2,
    )
        .prop_map(|(as_path, nh, med, comms, origin)| PathAttributes {
            origin: Origin::from_code(origin).unwrap(),
            as_path,
            next_hop: Some(IpAddr::V4(Ipv4Addr::from(nh))),
            med,
            local_pref: None,
            communities: CommunitySet::from_iter(
                comms.into_iter().map(|(a, v)| Community::new(a, v)),
            ),
        })
}

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_is_reflexive(p in arb_prefix()) {
        prop_assert!(p.contains(&p));
        prop_assert!(p.overlaps(&p));
    }

    #[test]
    fn prefix_parent_contains_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.contains(&p));
            prop_assert!(!p.contains(&parent) || p == parent);
        }
        if let Some((lo, hi)) = p.children() {
            prop_assert!(p.contains(&lo));
            prop_assert!(p.contains(&hi));
            prop_assert_ne!(lo, hi);
        }
    }

    #[test]
    fn prefix_host_is_contained(p in arb_prefix_v4(), n in any::<u64>()) {
        let h = p.host(n as u128);
        prop_assert!(p.contains(&h));
        prop_assert_eq!(h.len(), 32);
    }

    #[test]
    fn nlri_roundtrip(p in arb_prefix()) {
        let mut buf = BytesMut::new();
        encode_nlri(&p, &mut buf);
        let mut sl: &[u8] = &buf;
        let back = decode_nlri(&mut sl, p.is_ipv4()).unwrap();
        prop_assert_eq!(p, back);
        prop_assert!(sl.is_empty());
    }

    #[test]
    fn update_codec_roundtrip(
        wd in proptest::collection::vec(arb_prefix_v4(), 0..8),
        ann in proptest::collection::vec(arb_prefix(), 1..8),
        attrs in arb_attrs(),
    ) {
        // Dedup: the wire cannot distinguish duplicated NLRI entries
        // from re-announcements, so feed it canonical input.
        let mut wd = wd; wd.sort(); wd.dedup();
        let mut ann = ann; ann.sort(); ann.dedup();
        let u = BgpUpdate { withdrawals: wd, attrs: Some(attrs), announcements: ann };
        let wire = BgpMessage::Update(u.clone()).encode();
        prop_assume!(wire.len() <= bgp_types::message::MAX_MESSAGE_LEN);
        match BgpMessage::decode(&wire).unwrap() {
            BgpMessage::Update(mut back) => {
                back.withdrawals.sort();
                back.announcements.sort();
                let mut want = u;
                want.withdrawals.sort();
                want.announcements.sort();
                // v6 next-hop may be synthesised as :: when absent; keep equal inputs.
                prop_assert_eq!(back.withdrawals, want.withdrawals);
                prop_assert_eq!(back.announcements, want.announcements);
                let ba = back.attrs.unwrap();
                let wa = want.attrs.unwrap();
                prop_assert_eq!(ba.as_path, wa.as_path);
                prop_assert_eq!(ba.communities, wa.communities);
                prop_assert_eq!(ba.origin, wa.origin);
                prop_assert_eq!(ba.med, wa.med);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn trie_longest_match_agrees_with_linear_scan(
        entries in proptest::collection::vec(arb_prefix_v4(), 1..40),
        query in arb_prefix_v4(),
    ) {
        let mut trie = PrefixTrie::new();
        for (i, p) in entries.iter().enumerate() {
            trie.insert(*p, i);
        }
        let expected = entries
            .iter()
            .filter(|p| p.contains(&query))
            .max_by_key(|p| p.len()).copied();
        let got = trie.longest_match(&query).map(|(p, _)| *p);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn trie_insert_remove_restores(entries in proptest::collection::vec(arb_prefix(), 1..30)) {
        let mut trie: PrefixTrie<usize> = PrefixTrie::new();
        let mut uniq = entries.clone();
        uniq.sort();
        uniq.dedup();
        for (i, p) in uniq.iter().enumerate() {
            prop_assert!(trie.insert(*p, i).is_none());
        }
        prop_assert_eq!(trie.len(), uniq.len());
        for p in &uniq {
            prop_assert!(trie.remove(p).is_some());
        }
        prop_assert!(trie.is_empty());
    }

    #[test]
    fn as_path_prepend_preserves_suffix(path in arb_as_path(), asn in 1u32..1_000_000) {
        let mut p2 = path.clone();
        p2.prepend(Asn(asn));
        prop_assert_eq!(p2.first_asn(), Some(Asn(asn)));
        let orig: Vec<Asn> = path.asns().collect();
        let new: Vec<Asn> = p2.asns().collect();
        prop_assert_eq!(&new[1..], &orig[..]);
    }

    #[test]
    fn community_u32_roundtrip(a in any::<u16>(), v in any::<u16>()) {
        let c = Community::new(a, v);
        prop_assert_eq!(Community::from_u32(c.as_u32()), c);
        let s = c.to_string();
        prop_assert_eq!(s.parse::<Community>().unwrap(), c);
    }
}
