//! Thread spawning behind the facade. Under `--features loom-lite`,
//! threads spawned here become model threads of the active scheduler
//! (and plain named std threads when no model is running); in a normal
//! build they are always named `std::thread`s.

#[cfg(feature = "loom-lite")]
pub use loom_lite::thread::{spawn, spawn_named, JoinHandle};

#[cfg(not(feature = "loom-lite"))]
mod real {
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }

        pub fn thread_name(&self) -> Option<String> {
            self.0.thread().name().map(str::to_owned)
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle(std::thread::spawn(f))
    }

    pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle(
            std::thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                // xcheck:allow(unwrap) — spawn failure (OS resource exhaustion) has no recovery path
                .expect("spawn thread"),
        )
    }
}

#[cfg(not(feature = "loom-lite"))]
pub use real::{spawn, spawn_named, JoinHandle};
