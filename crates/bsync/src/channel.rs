//! MPMC channels built on the facade's [`Mutex`]/[`Condvar`], so one
//! implementation serves both builds: real condvar-backed queues in a
//! normal build, fully modeled queues under `--features loom-lite`
//! (every send/recv/drop is a scheduler decision point for free).
//!
//! API mirrors the `crossbeam::channel` subset the workspace uses:
//! unbounded and bounded MPMC queues, blocking `send`/`recv`,
//! `try_recv`, and a draining iterator. Bounded senders block while
//! the queue is at capacity; dropping the last receiver unblocks and
//! fails them. Deviation kept from the crossbeam shim: a bounded
//! capacity of 0 (rendezvous) is treated as capacity 1.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::{Condvar, Mutex, MutexGuard};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// `None` = unbounded; `Some(cap)` = senders block at `cap`.
    capacity: Option<usize>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock()
    }
}

/// Multi-producer sender half; cloneable.
pub struct Sender<T>(Arc<Shared<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake parked receivers so they observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

/// Multi-consumer receiver half; cloneable (receivers share one queue —
/// each message is delivered to exactly one receiver).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.lock();
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake senders parked on a full bounded queue so they
            // observe disconnection instead of blocking forever.
            self.0.not_full.notify_all();
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Like the real crate: no `T: Debug` bound.
        f.write_str("SendError(..)")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Why a [`Sender::try_send`] could not deliver; the value comes back
/// in both cases so the caller can retry or re-route it.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity right now.
    Full(T),
    /// Every receiver is gone; the queue can never drain.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Like the real crate: no `T: Debug` bound.
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while a bounded queue is at capacity.
    /// Fails (returning the value) once every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.capacity {
                Some(cap) if inner.queue.len() >= cap => {
                    // Backpressure: park until a receiver pops.
                    self.0.not_full.wait(&mut inner);
                }
                _ => break,
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Deliver `value` only if it can be enqueued right now. A full
    /// bounded queue returns [`TrySendError::Full`] instead of parking
    /// the caller — the supervised runtime uses this to bound how long
    /// a stalled worker can hold the coordinator hostage.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = inner.capacity {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            self.0.not_empty.wait(&mut inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.lock();
        match inner.queue.pop_front() {
            Some(v) => {
                drop(inner);
                self.0.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Messages currently queued (racy by nature; diagnostics only).
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until all senders drop.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            capacity,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A channel holding at most `cap` messages: `send` blocks while the
/// queue is full (backpressure). `cap = 0` behaves as 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_fan_out() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap();
            3u32
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), 3);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(2), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(4).unwrap();
        assert_eq!(rx.try_recv(), Ok(4));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
