//! Virtual time for deadline/backoff logic. Production code holds a
//! [`Clock`] and asks it for milliseconds; tests (and model tests)
//! swap in a manual clock whose `sleep` *advances* time instead of
//! blocking, so TTL/retry paths run deterministically and instantly.
//!
//! This module is the workspace's one sanctioned home for
//! `Instant::now`/`thread::sleep` outside wall-clock-ok modules
//! (feeders, soaks, benches) — `crates/xcheck` allowlists it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::atomic::{AtomicU64, Ordering};

/// Milliseconds-resolution clock, either wall (system) or manual.
///
/// Cheap to clone; manual clones share one timeline.
#[derive(Clone, Debug)]
pub struct Clock(Kind);

#[derive(Clone, Debug)]
enum Kind {
    System { epoch: Instant },
    Manual { now_ms: Arc<AtomicU64> },
}

impl Default for Clock {
    fn default() -> Self {
        Clock::system()
    }
}

impl Clock {
    /// Wall clock, measured from construction.
    pub fn system() -> Self {
        Clock(Kind::System {
            epoch: Instant::now(),
        })
    }

    /// Manual clock starting at `start_ms`; only [`Clock::advance_millis`]
    /// and [`Clock::sleep`] move it.
    pub fn manual(start_ms: u64) -> Self {
        Clock(Kind::Manual {
            now_ms: Arc::new(AtomicU64::new(start_ms)),
        })
    }

    pub fn is_manual(&self) -> bool {
        matches!(self.0, Kind::Manual { .. })
    }

    pub fn now_millis(&self) -> u64 {
        match &self.0 {
            Kind::System { epoch } => epoch.elapsed().as_millis() as u64,
            Kind::Manual { now_ms } => now_ms.load(Ordering::SeqCst),
        }
    }

    /// Move a manual clock forward; a no-op on the system clock (wall
    /// time cannot be steered).
    pub fn advance_millis(&self, ms: u64) {
        if let Kind::Manual { now_ms } = &self.0 {
            now_ms.fetch_add(ms, Ordering::SeqCst);
        }
    }

    /// Wait out `d`: a real sleep on the system clock, an instant
    /// time-advance on a manual clock (never less than 1ms, so backoff
    /// loops always make progress toward their deadline).
    pub fn sleep(&self, d: Duration) {
        match &self.0 {
            Kind::System { .. } => std::thread::sleep(d),
            Kind::Manual { now_ms } => {
                now_ms.fetch_add((d.as_millis() as u64).max(1), Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_steerable_and_shared() {
        let c = Clock::manual(100);
        let c2 = c.clone();
        assert_eq!(c.now_millis(), 100);
        c.advance_millis(50);
        assert_eq!(c2.now_millis(), 150, "clones share the timeline");
        c2.sleep(Duration::from_millis(25));
        assert_eq!(c.now_millis(), 175);
        c.sleep(Duration::from_micros(10));
        assert_eq!(c.now_millis(), 176, "sub-ms sleeps still progress");
        assert!(c.is_manual());
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = Clock::system();
        let a = c.now_millis();
        c.sleep(Duration::from_millis(5));
        assert!(c.now_millis() >= a + 4);
        c.advance_millis(1_000_000); // no-op on wall time
        assert!(c.now_millis() < 1_000_000);
        assert!(!c.is_manual());
    }
}
