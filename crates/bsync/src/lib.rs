#![forbid(unsafe_code)]
//! The workspace sync facade (`bsync` = BGPStream sync).
//!
//! Every crate in the workspace imports its concurrency primitives —
//! locks, condvars, channels, atomics, thread spawning, and the
//! [`time::Clock`] used for deadlines and backoff — from here instead
//! of `std::sync`/`parking_lot`/`crossbeam` directly (`crates/xcheck`
//! enforces this). In a normal build the facade re-exports the real
//! primitives with zero overhead; under `--features loom-lite` the
//! same import surface resolves to [`loom-lite`]'s instrumented types,
//! so every lock/channel/atomic operation becomes a decision point for
//! the schedule-exploring model checker.
//!
//! [`loom-lite`]: https://github.com/tokio-rs/loom
//!
//! ```text
//!   mq / broker / analytics / corsaro / core
//!                    │  use bsync::{Mutex, channel, atomic, thread}
//!                    ▼
//!     ┌──────────── bsync ────────────┐
//!     │ default          --features loom-lite
//!     │   │                     │
//!     ▼   ▼                     ▼
//!  parking_lot, std       vendor/loom-lite
//!  (real primitives)      (exploring scheduler)
//! ```
//!
//! Model tests live in downstream crates as `tests/loom_*.rs`, gated
//! `#![cfg(feature = "loom-lite")]`, and drive the checker through
//! `bsync::model` (the re-exported loom-lite API; present only under
//! the feature, so no intra-doc link).

#[cfg(feature = "loom-lite")]
pub use loom_lite::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
#[cfg(not(feature = "loom-lite"))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// The model-checker API, available only under `--features loom-lite`
/// so model tests can `use bsync::model::{explore, Builder}`.
#[cfg(feature = "loom-lite")]
pub mod model {
    pub use loom_lite::{explore, model, Builder, Failure, Report};
}

pub mod atomic {
    //! Atomics behind the facade. In a normal build these are exactly
    //! `std::sync::atomic`'s types, so swapping imports is free.
    #[cfg(feature = "loom-lite")]
    pub use loom_lite::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(feature = "loom-lite"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

pub mod channel;
pub mod pool;
pub mod thread;
pub mod time;
