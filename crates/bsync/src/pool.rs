//! [`ShardPool`] — the persistent, addressed worker pool used by the
//! sharded consumer runtime (`corsaro::runtime`) and the parallel MRT
//! decode front-end (`mrt::par`).
//!
//! The pool lives in `bsync` because it is built entirely from the
//! facade's own primitives (bounded [`channel`]s and named [`thread`]
//! spawns), so under `--features loom-lite` a pool inside a model test
//! is fully instrumented, and because it sits below every crate that
//! needs it (`analytics` re-exports it unchanged; `mrt` cannot depend
//! on `analytics` without a cycle through `bgpstream-core`).

use std::sync::Arc;

use crate::{channel, thread};

/// A persistent pool of addressed workers.
///
/// Every worker has its *own* bounded input queue: message `m` sent
/// with [`ShardPool::send`]`(w, m)` is processed by worker `w` and no
/// other, and messages to one worker are processed strictly in send
/// order. That addressed-FIFO property is what lets the sharded
/// consumer runtime keep per-shard plugin state on a fixed worker —
/// and the parallel decoder assign chunk sequence numbers round-robin
/// — and still guarantee deterministic results.
///
/// Workers run until the pool is dropped (or [`ShardPool::join`]ed):
/// they drain their queues, then exit when the senders disconnect.
pub struct ShardPool<M: Send + 'static> {
    txs: Vec<channel::Sender<M>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl<M: Send + 'static> ShardPool<M> {
    /// Spawn `workers` threads (at least 1), each with a queue bounded
    /// at `queue_cap` messages. `init(w)` builds worker `w`'s private
    /// state on the calling thread; `handler(w, &mut state, msg)` runs
    /// on the worker for every message.
    pub fn spawn<S, I, F>(workers: usize, queue_cap: usize, mut init: I, handler: F) -> Self
    where
        S: Send + 'static,
        I: FnMut(usize) -> S,
        F: Fn(usize, &mut S, M) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let handler = Arc::new(handler);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::bounded::<M>(queue_cap.max(1));
            let mut state = init(w);
            let handler = Arc::clone(&handler);
            txs.push(tx);
            handles.push(thread::spawn_named("shard-worker", move || {
                while let Ok(msg) = rx.recv() {
                    handler(w, &mut state, msg);
                }
            }));
        }
        ShardPool { txs, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Deliver `msg` to worker `w`, blocking while its queue is full
    /// (backpressure). Returns false if the worker is gone.
    pub fn send(&self, w: usize, msg: M) -> bool {
        self.txs[w].send(msg).is_ok()
    }

    /// Non-blocking [`ShardPool::send`]: a full queue returns
    /// [`channel::TrySendError::Full`] instead of parking the caller.
    /// The supervised runtime polls this so a stalled worker shows up
    /// as a bounded-time stall instead of wedging the coordinator.
    pub fn try_send(&self, w: usize, msg: M) -> Result<(), channel::TrySendError<M>> {
        self.txs[w].try_send(msg)
    }

    /// Deliver a copy of `msg` to every worker (used for barriers and
    /// shared-batch fan-out; `M` is typically an `Arc`, so a "copy" is
    /// a reference-count bump).
    pub fn broadcast(&self, msg: M) -> bool
    where
        M: Clone,
    {
        let mut ok = true;
        for tx in &self.txs {
            ok &= tx.send(msg.clone()).is_ok();
        }
        ok
    }

    /// Disconnect the queues and wait for every worker to drain and
    /// exit (same as dropping the pool, but explicit at call sites
    /// that rely on the barrier). Returns how many workers exited by
    /// panic — the caller decides whether that is fatal, so a
    /// supervised restart can drain a crashed pool and rebuild it
    /// instead of cascading the panic.
    pub fn join(mut self) -> usize {
        self.txs.clear();
        let mut panicked = 0;
        for h in self.handles.drain(..) {
            panicked += usize::from(h.join().is_err());
        }
        panicked
    }

    /// Abandon the pool without waiting: disconnect the queues and
    /// detach the worker threads. For workers that are *stalled* (stuck
    /// inside a handler), where [`ShardPool::join`] would block
    /// forever; the zombie thread keeps its private state but can never
    /// receive another message.
    pub fn detach(mut self) {
        self.txs.clear();
        self.handles.clear();
    }
}

impl<M: Send + 'static> Drop for ShardPool<M> {
    fn drop(&mut self) {
        self.txs.clear();
        // Worker panics are surfaced through the pool's message
        // contract (the runtime's `ResMsg::Panicked`) or the explicit
        // `join` count — never by panicking out of a destructor, which
        // would poison every caller holding a pool across an unwind.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_pool_routes_to_addressed_worker_in_order() {
        let (res_tx, res_rx) = channel::unbounded::<(usize, u64, u64)>();
        let pool = ShardPool::spawn(
            3,
            2,
            |_| 0u64, // per-worker running sum
            move |w, sum, v: u64| {
                *sum += v;
                res_tx.send((w, v, *sum)).unwrap();
            },
        );
        for i in 0..30u64 {
            assert!(pool.send((i % 3) as usize, i));
        }
        pool.join();
        let mut per_worker: Vec<Vec<(u64, u64)>> = vec![vec![]; 3];
        for (w, v, sum) in res_rx.iter() {
            per_worker[w].push((v, sum));
        }
        for (w, seen) in per_worker.iter().enumerate() {
            // Only this worker's residue class, in send order, with
            // state accumulated across messages.
            let expect: Vec<u64> = (0..30).filter(|v| (v % 3) as usize == w).collect();
            assert_eq!(seen.iter().map(|(v, _)| *v).collect::<Vec<_>>(), expect);
            let mut running = 0;
            for (v, sum) in seen {
                running += v;
                assert_eq!(*sum, running);
            }
        }
    }

    #[test]
    fn shard_pool_broadcast_reaches_every_worker() {
        let (res_tx, res_rx) = channel::unbounded::<usize>();
        let pool = ShardPool::spawn(
            4,
            1,
            |_| (),
            move |w, _, _msg: Arc<String>| {
                res_tx.send(w).unwrap();
            },
        );
        assert!(pool.broadcast(Arc::new("tick".to_string())));
        pool.join();
        let mut seen: Vec<usize> = res_rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shard_pool_join_drains_pending_messages() {
        let (res_tx, res_rx) = channel::unbounded::<u64>();
        let pool = ShardPool::spawn(
            1,
            64,
            |_| (),
            move |_, _, v: u64| {
                res_tx.send(v).unwrap();
            },
        );
        for i in 0..50 {
            pool.send(0, i);
        }
        pool.join(); // must block until the queue is fully drained
        assert_eq!(
            res_rx.iter().collect::<Vec<_>>(),
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shard_pool_reports_worker_panics_on_join() {
        let pool = ShardPool::spawn(
            2,
            1,
            |_| (),
            |w, _, _msg: u32| {
                if w == 0 {
                    panic!("boom")
                }
            },
        );
        pool.send(0, 1);
        pool.send(1, 2);
        assert_eq!(pool.join(), 1);
    }

    #[test]
    fn shard_pool_rebuilds_cleanly_after_a_panicked_join() {
        // The crash-recovery contract: a pool whose worker panicked can
        // be drained and a fresh pool spawned in its place, with no
        // panic cascading out of join or drop.
        let crashed = ShardPool::spawn(1, 1, |_| (), |_, _, _msg: u32| panic!("boom"));
        crashed.send(0, 1);
        assert_eq!(crashed.join(), 1);

        let (res_tx, res_rx) = channel::unbounded::<u32>();
        let rebuilt = ShardPool::spawn(
            1,
            1,
            |_| (),
            move |_, _, v: u32| {
                res_tx.send(v).unwrap();
            },
        );
        rebuilt.send(0, 7);
        assert_eq!(rebuilt.join(), 0);
        assert_eq!(res_rx.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn shard_pool_try_send_reports_full_queue() {
        use crate::channel::TrySendError;

        let (gate_tx, gate_rx) = channel::bounded::<()>(1);
        let pool = ShardPool::spawn(
            1,
            1,
            |_| (),
            move |_, _, _msg: u32| {
                let _ = gate_rx.recv(); // hold the worker until released
            },
        );
        // First message occupies the worker; second fills its queue.
        assert!(pool.send(0, 1));
        // The worker may or may not have picked up msg 1 yet; fill
        // until Full is observed, bounded by queue (1) + in-flight (1).
        let mut sent = 1;
        loop {
            match pool.try_send(0, 9) {
                Ok(()) => {
                    sent += 1;
                    assert!(sent <= 2, "queue cap 1 + one in-flight message");
                }
                Err(TrySendError::Full(9)) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        for _ in 0..sent {
            gate_tx.send(()).unwrap();
        }
        drop(gate_tx);
        assert_eq!(pool.join(), 0);
    }
}
