//! loom-lite model tests: bounded-channel backpressure vs cooperative
//! shutdown.
//!
//! Run with `cargo test -p bsync --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;

use bsync::channel;
use bsync::model::{explore, Builder};

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// A producer pushes three messages through a capacity-1 channel (so
/// at least one send blocks on backpressure), then disconnects; the
/// consumer drains until disconnect. No interleaving may lose,
/// duplicate, or reorder a message — and none may deadlock.
#[test]
fn backpressure_and_shutdown_deliver_everything_in_order() {
    let report = explore(&budget(), || {
        let (tx, rx) = channel::bounded::<u32>(1);
        let consumer =
            bsync::thread::spawn_named("consumer", move || rx.iter().collect::<Vec<_>>());
        for v in 1..=3 {
            assert!(tx.send(v).is_ok(), "receiver vanished early");
        }
        drop(tx); // cooperative shutdown: disconnect ends the iterator
        let got = consumer.join().expect("consumer ran");
        assert_eq!(got, vec![1, 2, 3], "messages lost, duplicated or reordered");
    })
    .expect("no interleaving may break bounded-channel delivery");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: a producer that holds an unrelated lock across a blocking
/// send while the consumer needs that lock before receiving — a
/// lock-order/backpressure deadlock. The checker must report the
/// deadlock and reproduce it from the seed.
#[test]
fn canary_blocking_send_under_lock_deadlocks() {
    let racy = || {
        let (tx, rx) = channel::bounded::<u32>(1);
        let gate = Arc::new(bsync::Mutex::new(()));
        let consumer = {
            let gate = gate.clone();
            bsync::thread::spawn_named("consumer", move || {
                let _g = gate.lock(); // consumer takes the gate first…
                let _ = rx.recv(); // …then drains
            })
        };
        // BUG: holding the gate across sends that can block on a full
        // queue; the consumer cannot drain without the gate.
        let g = gate.lock();
        let _ = tx.send(1);
        let _ = tx.send(2); // queue full, consumer gated: deadlock
        drop(g);
        consumer.join().expect("consumer ran");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the deadlock");
    assert!(
        failure.kind.contains("deadlock"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the deadlock");
    assert!(again.kind.contains("deadlock"));
}
