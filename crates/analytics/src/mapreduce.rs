//! A thread-pool map over partitions — the Spark-skeleton substitute.

use crossbeam::channel;

/// Map `f` over `items` on `workers` threads, preserving input order
/// in the output. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        task_tx.send(pair).expect("queue open");
    }
    drop(task_tx);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(n) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = task_rx.recv() {
                    let out = f(item);
                    if res_tx.send((idx, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    })
    .expect("worker panicked");
    let mut results: Vec<(usize, R)> = res_rx.iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), 8, |x: u64| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_works() {
        let out = par_map(vec![3, 1, 2], 1, |x: i32| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2], 16, |x: i32| x);
        assert_eq!(out, vec![1, 2]);
    }
}
