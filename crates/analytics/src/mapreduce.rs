//! A thread-pool map over partitions — the Spark-skeleton substitute —
//! plus [`ShardPool`], the persistent, addressed worker pool backing
//! the sharded consumer runtime (`corsaro::runtime`).
//!
//! [`par_map`] spawns scoped threads per call, which is fine for
//! coarse batch jobs but too expensive for a runtime delivering many
//! record batches per second. [`ShardPool`] keeps its workers alive
//! for the pool's lifetime: each worker owns private mutable state
//! (built once by an `init` closure) and drains its own **bounded**
//! queue, so a slow worker exerts backpressure on the producer instead
//! of letting queues grow without limit.

use std::sync::Arc;

use bsync::channel;

/// Map `f` over `items` on `workers` threads, preserving input order
/// in the output. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        // xcheck:allow(unwrap) — task_rx is still alive in this scope
        task_tx.send(pair).expect("queue open");
    }
    drop(task_tx);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(n) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = task_rx.recv() {
                    let out = f(item);
                    if res_tx.send((idx, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    })
    // xcheck:allow(unwrap) — propagate a worker panic to the caller
    .expect("worker panicked");
    let mut results: Vec<(usize, R)> = res_rx.iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// A persistent pool of addressed workers.
///
/// Unlike [`par_map`]'s shared task queue, every worker here has its
/// *own* bounded input queue: message `m` sent with
/// [`ShardPool::send`]`(w, m)` is processed by worker `w` and no
/// other, and messages to one worker are processed strictly in send
/// order. That addressed-FIFO property is what lets the sharded
/// consumer runtime keep per-shard plugin state on a fixed worker and
/// still guarantee deterministic results.
///
/// Workers run until the pool is dropped (or [`ShardPool::join`]ed):
/// they drain their queues, then exit when the senders disconnect.
pub struct ShardPool<M: Send + 'static> {
    txs: Vec<channel::Sender<M>>,
    handles: Vec<bsync::thread::JoinHandle<()>>,
}

impl<M: Send + 'static> ShardPool<M> {
    /// Spawn `workers` threads (at least 1), each with a queue bounded
    /// at `queue_cap` messages. `init(w)` builds worker `w`'s private
    /// state on the calling thread; `handler(w, &mut state, msg)` runs
    /// on the worker for every message.
    pub fn spawn<S, I, F>(workers: usize, queue_cap: usize, mut init: I, handler: F) -> Self
    where
        S: Send + 'static,
        I: FnMut(usize) -> S,
        F: Fn(usize, &mut S, M) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let handler = Arc::new(handler);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::bounded::<M>(queue_cap.max(1));
            let mut state = init(w);
            let handler = Arc::clone(&handler);
            txs.push(tx);
            handles.push(bsync::thread::spawn_named("shard-worker", move || {
                while let Ok(msg) = rx.recv() {
                    handler(w, &mut state, msg);
                }
            }));
        }
        ShardPool { txs, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Deliver `msg` to worker `w`, blocking while its queue is full
    /// (backpressure). Returns false if the worker is gone.
    pub fn send(&self, w: usize, msg: M) -> bool {
        self.txs[w].send(msg).is_ok()
    }

    /// Deliver a copy of `msg` to every worker (used for barriers and
    /// shared-batch fan-out; `M` is typically an `Arc`, so a "copy" is
    /// a reference-count bump).
    pub fn broadcast(&self, msg: M) -> bool
    where
        M: Clone,
    {
        let mut ok = true;
        for tx in &self.txs {
            ok &= tx.send(msg.clone()).is_ok();
        }
        ok
    }

    /// Disconnect the queues and wait for every worker to drain and
    /// exit (same as dropping the pool, but explicit at call sites
    /// that rely on the barrier). Panics if a worker panicked.
    pub fn join(self) {
        drop(self);
    }
}

impl<M: Send + 'static> Drop for ShardPool<M> {
    fn drop(&mut self) {
        self.txs.clear();
        let mut worker_panicked = false;
        for h in self.handles.drain(..) {
            worker_panicked |= h.join().is_err();
        }
        if worker_panicked && !std::thread::panicking() {
            panic!("ShardPool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), 8, |x: u64| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_works() {
        let out = par_map(vec![3, 1, 2], 1, |x: i32| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2], 16, |x: i32| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn shard_pool_routes_to_addressed_worker_in_order() {
        let (res_tx, res_rx) = channel::unbounded::<(usize, u64, u64)>();
        let pool = ShardPool::spawn(
            3,
            2,
            |_| 0u64, // per-worker running sum
            move |w, sum, v: u64| {
                *sum += v;
                res_tx.send((w, v, *sum)).unwrap();
            },
        );
        for i in 0..30u64 {
            assert!(pool.send((i % 3) as usize, i));
        }
        pool.join();
        let mut per_worker: Vec<Vec<(u64, u64)>> = vec![vec![]; 3];
        for (w, v, sum) in res_rx.iter() {
            per_worker[w].push((v, sum));
        }
        for (w, seen) in per_worker.iter().enumerate() {
            // Only this worker's residue class, in send order, with
            // state accumulated across messages.
            let expect: Vec<u64> = (0..30).filter(|v| (v % 3) as usize == w).collect();
            assert_eq!(seen.iter().map(|(v, _)| *v).collect::<Vec<_>>(), expect);
            let mut running = 0;
            for (v, sum) in seen {
                running += v;
                assert_eq!(*sum, running);
            }
        }
    }

    #[test]
    fn shard_pool_broadcast_reaches_every_worker() {
        let (res_tx, res_rx) = channel::unbounded::<usize>();
        let pool = ShardPool::spawn(
            4,
            1,
            |_| (),
            move |w, _, _msg: Arc<String>| {
                res_tx.send(w).unwrap();
            },
        );
        assert!(pool.broadcast(Arc::new("tick".to_string())));
        pool.join();
        let mut seen: Vec<usize> = res_rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shard_pool_join_drains_pending_messages() {
        let (res_tx, res_rx) = channel::unbounded::<u64>();
        let pool = ShardPool::spawn(
            1,
            64,
            |_| (),
            move |_, _, v: u64| {
                res_tx.send(v).unwrap();
            },
        );
        for i in 0..50 {
            pool.send(0, i);
        }
        pool.join(); // must block until the queue is fully drained
        assert_eq!(
            res_rx.iter().collect::<Vec<_>>(),
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "ShardPool worker panicked")]
    fn shard_pool_surfaces_worker_panics_on_join() {
        let pool = ShardPool::spawn(1, 1, |_| (), |_, _, _msg: u32| panic!("boom"));
        pool.send(0, 1);
        pool.join();
    }
}
