//! A thread-pool map over partitions — the Spark-skeleton substitute —
//! plus [`ShardPool`], the persistent, addressed worker pool backing
//! the sharded consumer runtime (`corsaro::runtime`).
//!
//! [`par_map`] spawns scoped threads per call, which is fine for
//! coarse batch jobs but too expensive for a runtime delivering many
//! record batches per second. [`ShardPool`] keeps its workers alive
//! for the pool's lifetime: each worker owns private mutable state
//! (built once by an `init` closure) and drains its own **bounded**
//! queue, so a slow worker exerts backpressure on the producer instead
//! of letting queues grow without limit.
//!
//! `ShardPool` itself now lives in [`bsync::pool`] (it is built
//! entirely from facade primitives, and `mrt::par` needs it below this
//! crate in the dependency graph); it is re-exported here unchanged.

use bsync::channel;
/// Re-export: the pool moved to `bsync` so `mrt::par` can reuse it.
pub use bsync::pool::ShardPool;

/// Map `f` over `items` on `workers` threads, preserving input order
/// in the output. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        // xcheck:allow(unwrap) — task_rx is still alive in this scope
        task_tx.send(pair).expect("queue open");
    }
    drop(task_tx);
    crossbeam::scope(|scope| {
        for _ in 0..workers.min(n) {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = task_rx.recv() {
                    let out = f(item);
                    if res_tx.send((idx, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    })
    // xcheck:allow(unwrap) — propagate a worker panic to the caller
    .expect("worker panicked");
    let mut results: Vec<(usize, R)> = res_rx.iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), 8, |x: u64| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_works() {
        let out = par_map(vec![3, 1, 2], 1, |x: i32| x + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(vec![1, 2], 16, |x: i32| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn shard_pool_reexport_still_resolves() {
        // The pool's own unit + model tests live in bsync now; this
        // pins the back-compat path `analytics::ShardPool`.
        let pool: ShardPool<u32> = ShardPool::spawn(1, 1, |_| (), |_, _, _| {});
        assert_eq!(pool.workers(), 1);
        pool.join();
    }
}
