//! The Section 5 / Section 4.2 analyses, expressed over broker-indexed
//! archives with the partition-map-reduce skeleton.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::IpAddr;
use std::sync::Arc;

use bgp_types::Asn;
use bgpstream::{BgpStream, ElemType};
use broker::index::{BrokerCursor, Query};
use broker::{DumpType, Index, LocalBroker};

use crate::asgraph::AsGraph;
use crate::mapreduce::par_map;

/// One analysis partition: a single RIB snapshot of one collector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibPartition {
    /// Collection project.
    pub project: String,
    /// Collector name.
    pub collector: String,
    /// Snapshot time.
    pub time: u64,
}

/// Enumerate all RIB snapshots registered in `[start, end]`.
pub fn rib_partitions(index: &Arc<Index>, start: u64, end: u64) -> Vec<RibPartition> {
    let q = Query {
        dump_types: vec![DumpType::Rib],
        start,
        end: Some(end),
        ..Default::default()
    };
    let mut cursor = BrokerCursor {
        window_start: start,
    };
    let mut out = Vec::new();
    loop {
        let resp = index.query(&q, &mut cursor, u64::MAX);
        for f in &resp.files {
            out.push(RibPartition {
                project: f.project.clone(),
                collector: f.collector.clone(),
                time: f.interval_start,
            });
        }
        if resp.exhausted {
            break;
        }
    }
    out.sort_by(|a, b| (a.time, &a.collector).cmp(&(b.time, &b.collector)));
    out.dedup();
    out
}

/// Open a stream over exactly one RIB snapshot.
fn open_rib(index: &Arc<Index>, p: &RibPartition) -> BgpStream {
    BgpStream::builder()
        .broker_client(LocalBroker::shared(index.clone()))
        .project(&p.project)
        .collector(&p.collector)
        .record_type(DumpType::Rib)
        .interval(p.time, Some(p.time))
        .start()
}

/// One VP's routing-table size at one snapshot (Figure 5a points).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibSizePoint {
    /// Snapshot time.
    pub time: u64,
    /// Collection project.
    pub project: String,
    /// Collector.
    pub collector: String,
    /// VP address.
    pub peer: IpAddr,
    /// VP AS number.
    pub peer_asn: Asn,
    /// Unique IPv4 prefixes in the VP's Adj-RIB-out.
    pub prefixes_v4: usize,
    /// Unique IPv6 prefixes.
    pub prefixes_v6: usize,
}

/// Figure 5a: per-VP routing-table size for every partition.
pub fn rib_size_per_vp(
    index: &Arc<Index>,
    partitions: &[RibPartition],
    workers: usize,
) -> Vec<RibSizePoint> {
    let index = index.clone();
    let results = par_map(partitions.to_vec(), workers, move |p| {
        let mut stream = open_rib(&index, &p);
        let mut per_vp: BTreeMap<IpAddr, (Asn, usize, usize)> = BTreeMap::new();
        while let Some(rec) = stream.next_record() {
            for e in rec.elems() {
                if e.elem_type != ElemType::RibEntry {
                    continue;
                }
                let entry = per_vp.entry(e.peer_address).or_insert((e.peer_asn, 0, 0));
                match e.prefix {
                    Some(pfx) if pfx.is_ipv4() => entry.1 += 1,
                    Some(_) => entry.2 += 1,
                    None => {}
                }
            }
        }
        per_vp
            .into_iter()
            .map(|(peer, (peer_asn, v4, v6))| RibSizePoint {
                time: p.time,
                project: p.project.clone(),
                collector: p.collector.clone(),
                peer,
                peer_asn,
                prefixes_v4: v4,
                prefixes_v6: v6,
            })
            .collect::<Vec<_>>()
    });
    results.into_iter().flatten().collect()
}

/// Classify VPs into full-feed using the paper's operational
/// definition: within 20 percentage points of the maximum table size
/// at the same time bin.
pub fn full_feed_vps(points: &[RibSizePoint]) -> Vec<(u64, IpAddr, bool)> {
    let mut max_at: HashMap<u64, usize> = HashMap::new();
    for p in points {
        let m = max_at.entry(p.time).or_default();
        *m = (*m).max(p.prefixes_v4);
    }
    points
        .iter()
        .map(|p| {
            let max = max_at[&p.time].max(1);
            (p.time, p.peer, p.prefixes_v4 as f64 >= 0.8 * max as f64)
        })
        .collect()
}

/// One snapshot's MOAS counts (Figure 5b).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MoasPoint {
    /// Snapshot time.
    pub time: u64,
    /// Unique MOAS sets across all collectors.
    pub overall: usize,
    /// Unique MOAS sets seen by each collector alone.
    pub per_collector: BTreeMap<String, usize>,
}

/// Figure 5b: MOAS sets per snapshot, overall vs per collector.
pub fn moas_sets(
    index: &Arc<Index>,
    partitions: &[RibPartition],
    workers: usize,
) -> Vec<MoasPoint> {
    let index = index.clone();
    // Map: per partition → (time, collector, prefix → origin set).
    let mapped = par_map(partitions.to_vec(), workers, move |p| {
        let mut stream = open_rib(&index, &p);
        let mut origins: HashMap<bgp_types::Prefix, BTreeSet<Asn>> = HashMap::new();
        while let Some(rec) = stream.next_record() {
            for e in rec.elems() {
                if e.elem_type != ElemType::RibEntry {
                    continue;
                }
                if let (Some(pfx), Some(origin)) = (e.prefix, e.origin_asn()) {
                    origins.entry(pfx).or_default().insert(origin);
                }
            }
        }
        (p.time, p.collector.clone(), origins)
    });
    // Reduce per snapshot time.
    type PerCollectorOrigins = Vec<(String, HashMap<bgp_types::Prefix, BTreeSet<Asn>>)>;
    let mut by_time: BTreeMap<u64, PerCollectorOrigins> = BTreeMap::new();
    for (time, collector, origins) in mapped {
        by_time.entry(time).or_default().push((collector, origins));
    }
    by_time
        .into_iter()
        .map(|(time, collectors)| {
            let mut overall: HashMap<bgp_types::Prefix, BTreeSet<Asn>> = HashMap::new();
            let mut per_collector = BTreeMap::new();
            for (name, origins) in &collectors {
                let sets: BTreeSet<Vec<Asn>> = origins
                    .values()
                    .filter(|s| s.len() >= 2)
                    .map(|s| s.iter().copied().collect())
                    .collect();
                per_collector.insert(name.clone(), sets.len());
                for (pfx, set) in origins {
                    overall.entry(*pfx).or_default().extend(set.iter().copied());
                }
            }
            let overall_sets: BTreeSet<Vec<Asn>> = overall
                .values()
                .filter(|s| s.len() >= 2)
                .map(|s| s.iter().copied().collect())
                .collect();
            MoasPoint {
                time,
                overall: overall_sets.len(),
                per_collector,
            }
        })
        .collect()
}

/// One snapshot's transit statistics (Figure 5c).
#[derive(Clone, PartialEq, Debug)]
pub struct TransitPoint {
    /// Snapshot time.
    pub time: u64,
    /// Distinct ASNs in IPv4 paths.
    pub v4_asns: usize,
    /// Fraction of those that appear mid-path (transit), 0..=1.
    pub v4_transit_frac: f64,
    /// Distinct ASNs in IPv6 paths.
    pub v6_asns: usize,
    /// IPv6 transit fraction.
    pub v6_transit_frac: f64,
}

/// Figure 5c: transit-AS fraction per snapshot for both families.
pub fn transit_fraction(
    index: &Arc<Index>,
    partitions: &[RibPartition],
    workers: usize,
) -> Vec<TransitPoint> {
    let index = index.clone();
    type Sets = (HashSet<Asn>, HashSet<Asn>, HashSet<Asn>, HashSet<Asn>);
    let mapped = par_map(partitions.to_vec(), workers, move |p| {
        let mut stream = open_rib(&index, &p);
        // (v4 all, v4 transit, v6 all, v6 transit)
        let mut sets: Sets = (
            HashSet::new(),
            HashSet::new(),
            HashSet::new(),
            HashSet::new(),
        );
        while let Some(rec) = stream.next_record() {
            for e in rec.elems() {
                if e.elem_type != ElemType::RibEntry {
                    continue;
                }
                let (Some(pfx), Some(path)) = (e.prefix, e.as_path.as_ref()) else {
                    continue;
                };
                let hops = path.hops_dedup();
                // Sanitization as in Listing 1: skip local routes.
                if hops.len() < 2 || hops[0] != e.peer_asn {
                    continue;
                }
                let (all, transit) = if pfx.is_ipv4() {
                    (&mut sets.0, &mut sets.1)
                } else {
                    (&mut sets.2, &mut sets.3)
                };
                // The VP's own ASN is an artefact of the vantage
                // point, not of the route; count ASes from the first
                // hop onward (paper counts ASes "appearing in AS
                // paths" with the VP excluded implicitly by using
                // many VPs — keeping it makes no qualitative
                // difference; we exclude for cleanliness).
                for a in &hops[1..] {
                    all.insert(*a);
                }
                for a in &hops[1..hops.len() - 1] {
                    transit.insert(*a);
                }
            }
        }
        (p.time, sets)
    });
    let mut by_time: BTreeMap<u64, Sets> = BTreeMap::new();
    for (time, (a4, t4, a6, t6)) in mapped {
        let e = by_time.entry(time).or_insert_with(|| {
            (
                HashSet::new(),
                HashSet::new(),
                HashSet::new(),
                HashSet::new(),
            )
        });
        e.0.extend(a4);
        e.1.extend(t4);
        e.2.extend(a6);
        e.3.extend(t6);
    }
    by_time
        .into_iter()
        .map(|(time, (a4, t4, a6, t6))| TransitPoint {
            time,
            v4_asns: a4.len(),
            v4_transit_frac: if a4.is_empty() {
                0.0
            } else {
                t4.len() as f64 / a4.len() as f64
            },
            v6_asns: a6.len(),
            v6_transit_frac: if a6.is_empty() {
                0.0
            } else {
                t6.len() as f64 / a6.len() as f64
            },
        })
        .collect()
}

/// Community-diversity summary at one snapshot (Figure 5d).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CommunityDiversity {
    /// Per VP: distinct AS identifiers (high 16 bits) observed in
    /// community attributes.
    pub per_vp: BTreeMap<(String, IpAddr), usize>,
    /// Aggregated per collector.
    pub per_collector: BTreeMap<String, usize>,
    /// Aggregated per project.
    pub per_project: BTreeMap<String, usize>,
    /// Fraction of VPs observing at least one community.
    pub vps_seeing_communities: f64,
    /// Distinct communities observed overall.
    pub unique_communities: usize,
}

/// Figure 5d: community diversity as observed by VPs at one snapshot.
pub fn community_diversity(
    index: &Arc<Index>,
    partitions: &[RibPartition],
    workers: usize,
) -> CommunityDiversity {
    let index = index.clone();
    type VpComm = HashMap<(String, String, IpAddr), HashSet<u16>>;
    let mapped: Vec<(VpComm, HashSet<u32>)> = par_map(partitions.to_vec(), workers, move |p| {
        let mut stream = open_rib(&index, &p);
        let mut per_vp: VpComm = HashMap::new();
        let mut uniq: HashSet<u32> = HashSet::new();
        while let Some(rec) = stream.next_record() {
            for e in rec.elems() {
                if e.elem_type != ElemType::RibEntry {
                    continue;
                }
                let key = (p.project.clone(), p.collector.clone(), e.peer_address);
                let entry = per_vp.entry(key).or_default();
                if let Some(cs) = &e.communities {
                    for c in cs.iter() {
                        entry.insert(c.asn);
                        uniq.insert(c.as_u32());
                    }
                }
            }
        }
        (per_vp, uniq)
    });
    let mut out = CommunityDiversity::default();
    let mut per_collector: HashMap<String, HashSet<u16>> = HashMap::new();
    let mut per_project: HashMap<String, HashSet<u16>> = HashMap::new();
    let mut all_comms: HashSet<u32> = HashSet::new();
    let mut vp_total = 0usize;
    let mut vp_seeing = 0usize;
    for (per_vp, uniq) in mapped {
        all_comms.extend(uniq);
        for ((project, collector, peer), asns) in per_vp {
            vp_total += 1;
            if !asns.is_empty() {
                vp_seeing += 1;
            }
            per_collector
                .entry(collector.clone())
                .or_default()
                .extend(asns.iter());
            per_project.entry(project).or_default().extend(asns.iter());
            out.per_vp.insert((collector, peer), asns.len());
        }
    }
    out.per_collector = per_collector
        .into_iter()
        .map(|(k, v)| (k, v.len()))
        .collect();
    out.per_project = per_project.into_iter().map(|(k, v)| (k, v.len())).collect();
    out.vps_seeing_communities = if vp_total == 0 {
        0.0
    } else {
        vp_seeing as f64 / vp_total as f64
    };
    out.unique_communities = all_comms.len();
    out
}

/// The §4.2 path-inflation result.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct InflationReport {
    /// `<monitor, origin>` pairs compared.
    pub pairs: u64,
    /// Fraction of pairs whose BGP path exceeds the graph shortest
    /// path.
    pub inflated_frac: f64,
    /// Largest observed inflation in extra hops.
    pub max_extra_hops: u32,
    /// extra-hops → pair count (0 = not inflated).
    pub histogram: BTreeMap<u32, u64>,
}

/// Listing 1: compare BGP path lengths against shortest paths on the
/// undirected AS graph built from the same RIB data.
pub fn path_inflation(
    index: &Arc<Index>,
    partitions: &[RibPartition],
    workers: usize,
) -> InflationReport {
    let index = index.clone();
    type Lens = HashMap<(Asn, Asn), usize>;
    let mapped: Vec<(Lens, Vec<(Asn, Asn)>)> = par_map(partitions.to_vec(), workers, move |p| {
        let mut stream = open_rib(&index, &p);
        let mut bgp_lens: Lens = HashMap::new();
        let mut edges: Vec<(Asn, Asn)> = Vec::new();
        while let Some(rec) = stream.next_record() {
            for e in rec.elems() {
                if e.elem_type != ElemType::RibEntry {
                    continue;
                }
                let Some(path) = e.as_path.as_ref() else {
                    continue;
                };
                let hops = path.hops_dedup();
                // Sanitization: ignore local routes (Listing 1).
                if hops.len() <= 1 || hops[0] != e.peer_asn {
                    continue;
                }
                let monitor = hops[0];
                // xcheck:allow(unwrap) — len > 1 checked just above
                let origin = *hops.last().expect("non-empty");
                for w in hops.windows(2) {
                    edges.push((w[0], w[1]));
                }
                let len = hops.len();
                bgp_lens
                    .entry((monitor, origin))
                    .and_modify(|l| *l = (*l).min(len))
                    .or_insert(len);
            }
        }
        (bgp_lens, edges)
    });
    // Reduce: merge graphs and minimum path lengths.
    let mut graph = AsGraph::new();
    let mut bgp_lens: Lens = HashMap::new();
    for (lens, edges) in mapped {
        for (a, b) in edges {
            graph.add_edge(a, b);
        }
        for (k, v) in lens {
            bgp_lens
                .entry(k)
                .and_modify(|l| *l = (*l).min(v))
                .or_insert(v);
        }
    }
    // Group by monitor so one BFS serves all its origins.
    let mut by_monitor: HashMap<Asn, Vec<(Asn, usize)>> = HashMap::new();
    for ((monitor, origin), len) in bgp_lens {
        by_monitor.entry(monitor).or_default().push((origin, len));
    }
    let monitors: Vec<(Asn, Vec<(Asn, usize)>)> = by_monitor.into_iter().collect();
    let graph = Arc::new(graph);
    let g2 = graph.clone();
    let partial = par_map(monitors, workers, move |(monitor, origins)| {
        let dist = g2.distances_from(monitor);
        let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
        for (origin, bgp_len) in origins {
            if let Some(nx_len) = dist.get(&origin) {
                let extra = bgp_len.saturating_sub(*nx_len) as u32;
                *hist.entry(extra).or_default() += 1;
            }
        }
        hist
    });
    let mut report = InflationReport::default();
    for hist in partial {
        for (extra, n) in hist {
            *report.histogram.entry(extra).or_default() += n;
            report.pairs += n;
        }
    }
    let inflated: u64 = report
        .histogram
        .iter()
        .filter(|(e, _)| **e > 0)
        .map(|(_, n)| n)
        .sum();
    report.inflated_frac = if report.pairs == 0 {
        0.0
    } else {
        inflated as f64 / report.pairs as f64
    };
    report.max_extra_hops = report.histogram.keys().max().copied().unwrap_or(0);
    report
}
