//! A simple undirected AS graph with BFS shortest paths — the
//! NetworkX substitute used by the Listing 1 path-inflation study
//! ("a simple undirected graph, i.e. a graph with no loops, where
//! links are not directed").

use std::collections::{HashMap, VecDeque};

use bgp_types::Asn;

/// Undirected graph over ASNs.
#[derive(Default)]
pub struct AsGraph {
    adj: HashMap<Asn, Vec<Asn>>,
    edges: usize,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an undirected edge (self-loops and duplicates ignored).
    pub fn add_edge(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        let e = self.adj.entry(a).or_default();
        if !e.contains(&b) {
            e.push(b);
            self.adj.entry(b).or_default().push(a);
            self.edges += 1;
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether the node exists.
    pub fn contains(&self, a: Asn) -> bool {
        self.adj.contains_key(&a)
    }

    /// BFS shortest-path length in *nodes* (NetworkX
    /// `len(shortest_path)` convention: a direct neighbour pair has
    /// length 2, a node to itself 1). `None` when unreachable.
    pub fn shortest_path_nodes(&self, from: Asn, to: Asn) -> Option<usize> {
        if !self.contains(from) || !self.contains(to) {
            return None;
        }
        if from == to {
            return Some(1);
        }
        let mut dist: HashMap<Asn, usize> = HashMap::new();
        dist.insert(from, 1);
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &v in &self.adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    if v == to {
                        return Some(du + 1);
                    }
                    e.insert(du + 1);
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Multi-source BFS: node-count distances from `from` to every
    /// reachable node (used to batch Listing 1's per-pair queries).
    pub fn distances_from(&self, from: Asn) -> HashMap<Asn, usize> {
        let mut dist: HashMap<Asn, usize> = HashMap::new();
        if !self.contains(from) {
            return dist;
        }
        dist.insert(from, 1);
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &v in &self.adj[&u] {
                dist.entry(v).or_insert_with(|| {
                    q.push_back(v);
                    du + 1
                });
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(u32, u32)]) -> AsGraph {
        let mut g = AsGraph::new();
        for &(a, b) in edges {
            g.add_edge(Asn(a), Asn(b));
        }
        g
    }

    #[test]
    fn counts_and_dedup() {
        let mut gr = g(&[(1, 2), (2, 3)]);
        gr.add_edge(Asn(1), Asn(2)); // duplicate
        gr.add_edge(Asn(1), Asn(1)); // self loop
        assert_eq!(gr.node_count(), 3);
        assert_eq!(gr.edge_count(), 2);
    }

    #[test]
    fn shortest_path_node_convention() {
        let gr = g(&[(1, 2), (2, 3), (3, 4), (1, 4)]);
        assert_eq!(gr.shortest_path_nodes(Asn(1), Asn(1)), Some(1));
        assert_eq!(gr.shortest_path_nodes(Asn(1), Asn(2)), Some(2));
        assert_eq!(gr.shortest_path_nodes(Asn(1), Asn(3)), Some(3));
        assert_eq!(gr.shortest_path_nodes(Asn(2), Asn(4)), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let gr = g(&[(1, 2), (10, 11)]);
        assert_eq!(gr.shortest_path_nodes(Asn(1), Asn(10)), None);
        assert_eq!(gr.shortest_path_nodes(Asn(1), Asn(99)), None);
    }

    #[test]
    fn distances_match_pairwise_queries() {
        let gr = g(&[(1, 2), (2, 3), (3, 4), (4, 5), (1, 5)]);
        let d = gr.distances_from(Asn(1));
        for target in [1u32, 2, 3, 4, 5] {
            assert_eq!(
                d.get(&Asn(target)).copied(),
                gr.shortest_path_nodes(Asn(1), Asn(target)),
                "target {target}"
            );
        }
    }
}
