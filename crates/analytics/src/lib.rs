//! Massive-dataset analyses (paper §4.2 and §5).
//!
//! The paper deploys PyBGPStream scripts on an Apache Spark cluster;
//! every script shares one structure: (i) build a list of data
//! partitions split by time range and collector, (ii) map a
//! stream-consuming function over every partition, (iii) reduce per
//! VP, per collector, and overall. [`mapreduce`] reproduces that
//! skeleton on a thread pool; [`analyses`] implements the actual
//! studies:
//!
//! * routing-table growth per VP and full/partial-feed classification
//!   (Figure 5a);
//! * MOAS sets over time, overall vs per collector (Figure 5b);
//! * transit-AS fraction for IPv4/IPv6 (Figure 5c);
//! * community diversity per VP/collector (Figure 5d);
//! * AS-path inflation (§4.2, Listing 1), using the [`asgraph`]
//!   undirected AS graph in place of NetworkX.
//!
//! [`mapreduce`] also hosts [`mapreduce::ShardPool`], the persistent
//! addressed worker pool that `corsaro::runtime` fans the sorted
//! stream out over (§6's scale-out deployment).

#![forbid(unsafe_code)]

pub mod analyses;
pub mod asgraph;
pub mod mapreduce;

pub use analyses::{
    community_diversity, full_feed_vps, moas_sets, path_inflation, rib_partitions, rib_size_per_vp,
    transit_fraction, CommunityDiversity, InflationReport, MoasPoint, RibPartition, RibSizePoint,
    TransitPoint,
};
pub use asgraph::AsGraph;
pub use mapreduce::{par_map, ShardPool};
