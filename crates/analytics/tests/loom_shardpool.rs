//! loom-lite model tests: ShardPool shutdown vs in-flight sends.
//!
//! Run with `cargo test -p analytics --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;

use analytics::ShardPool;
use bsync::model::{explore, Builder};
use bsync::Mutex;

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// Messages sent right before `join` are in flight when shutdown
/// begins: the worker may not have picked them up yet. `join` must
/// block until the queue is fully drained — no interleaving may lose
/// a message or process one out of order.
#[test]
fn shutdown_drains_in_flight_sends() {
    let report = explore(&budget(), || {
        let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let pool = ShardPool::spawn(
            1,
            1, // capacity 1: the second send exercises backpressure
            |_| (),
            move |_, _, v: u32| sink.lock().push(v),
        );
        assert!(pool.send(0, 1));
        assert!(pool.send(0, 2));
        pool.join(); // shutdown must drain both
        assert_eq!(*seen.lock(), vec![1, 2], "in-flight send lost on shutdown");
    })
    .expect("no interleaving may lose an in-flight message");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: a worker that drains with `try_recv` and exits on `Empty`
/// instead of blocking until disconnect. On schedules where the
/// worker runs before the producer's send, the message is lost — the
/// checker must find that schedule and reproduce it from the seed.
#[test]
fn canary_try_recv_worker_drops_in_flight_message() {
    let racy = || {
        let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let (tx, rx) = bsync::channel::bounded::<u32>(1);
        let worker = bsync::thread::spawn_named("worker", move || {
            // BUG: Empty also covers "producer not scheduled yet".
            while let Ok(v) = rx.try_recv() {
                sink.lock().push(v);
            }
        });
        let _ = tx.send(1);
        drop(tx);
        worker.join().expect("worker ran");
        assert_eq!(*seen.lock(), vec![1], "shutdown lost an in-flight message");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the lossy worker");
    assert!(
        failure.kind.contains("lost an in-flight message"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the loss");
    assert!(again.kind.contains("lost an in-flight message"));
}
