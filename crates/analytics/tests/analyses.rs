//! Analytics integration tests over a simulated longitudinal archive.

use std::path::PathBuf;
use std::sync::Arc;

use analytics::{
    community_diversity, moas_sets, path_inflation, rib_partitions, rib_size_per_vp,
    transit_fraction,
};
use broker::Index;
use collector_sim::{standard_collectors, SimConfig, Simulator};
use topology::control::ControlPlane;
use topology::gen::{generate, TopologyConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-ana-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A 24-month growing world, RIB-only snapshots every 6 months from
/// two collectors.
fn longitudinal(tag: &str, seed: u64) -> (Arc<Index>, Vec<u64>, PathBuf) {
    let spm = 10_000u64; // seconds per month
    let topo = Arc::new(generate(&TopologyConfig {
        months: 24,
        moas_frac: 0.05,
        ..TopologyConfig::tiny(seed)
    }));
    let cp = ControlPlane::new(topo, spm);
    let specs = standard_collectors(&cp, 1, 1, 5, 0.7, seed);
    let dir = tmpdir(tag);
    let mut cfg = SimConfig::new(&dir);
    cfg.emit_updates = false;
    cfg.emit_ribs = false;
    let mut sim = Simulator::new(cp, specs, cfg);
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    let times: Vec<u64> = (0..=24).step_by(6).map(|m| m as u64 * spm).collect();
    for &t in &times {
        sim.force_rib_dump(t);
    }
    (idx, times, dir)
}

#[test]
fn longitudinal_analyses_reproduce_figure5_shapes() {
    let (idx, times, dir) = longitudinal("fig5", 51);
    let parts = rib_partitions(&idx, 0, *times.last().unwrap());
    assert_eq!(parts.len(), 2 * times.len(), "partitions: {parts:?}");

    // Figure 5a: tables grow; partial feeds are smaller.
    let sizes = rib_size_per_vp(&idx, &parts, 4);
    assert!(!sizes.is_empty());
    let avg_at = |t: u64| {
        let pts: Vec<usize> = sizes
            .iter()
            .filter(|p| p.time == t)
            .map(|p| p.prefixes_v4)
            .collect();
        pts.iter().sum::<usize>() as f64 / pts.len().max(1) as f64
    };
    let first = avg_at(times[0]);
    let last = avg_at(*times.last().unwrap());
    assert!(
        last > first * 1.5,
        "no visible routing-table growth: {first} -> {last}"
    );
    let max_last = sizes
        .iter()
        .filter(|p| p.time == *times.last().unwrap())
        .map(|p| p.prefixes_v4)
        .max()
        .unwrap();
    let min_last = sizes
        .iter()
        .filter(|p| p.time == *times.last().unwrap())
        .map(|p| p.prefixes_v4)
        .min()
        .unwrap();
    assert!(
        min_last * 2 < max_last,
        "partial feeds should significantly skew the distribution"
    );

    // Figure 5b: overall MOAS ≥ any single collector.
    let moas = moas_sets(&idx, &parts, 4);
    assert_eq!(moas.len(), times.len());
    let last_moas = moas.last().unwrap();
    assert!(last_moas.overall > 0, "no MOAS sets at all");
    let best_single = last_moas.per_collector.values().max().copied().unwrap_or(0);
    assert!(
        last_moas.overall >= best_single,
        "overall {} < best single {}",
        last_moas.overall,
        best_single
    );

    // Figure 5c: IPv4 transit fraction roughly flat; v6 arrives later
    // and is more transit-heavy when young.
    let transit = transit_fraction(&idx, &parts, 4);
    assert_eq!(transit.len(), times.len());
    let t0 = &transit[0];
    let tn = transit.last().unwrap();
    assert!(tn.v4_asns > t0.v4_asns, "no v4 AS growth");
    assert!(t0.v4_transit_frac > 0.05 && t0.v4_transit_frac < 0.9);
    let drift = (tn.v4_transit_frac - t0.v4_transit_frac).abs();
    assert!(drift < 0.25, "v4 transit fraction drifted by {drift}");
    // v6 transit fraction at first v6 appearance exceeds the final one.
    let v6_points: Vec<_> = transit.iter().filter(|t| t.v6_asns > 0).collect();
    if v6_points.len() >= 2 {
        assert!(
            v6_points[0].v6_transit_frac >= v6_points.last().unwrap().v6_transit_frac,
            "v6 transit fraction should decay: {:?}",
            v6_points
                .iter()
                .map(|t| t.v6_transit_frac)
                .collect::<Vec<_>>()
        );
    }

    // Figure 5d: some but not all VPs observe communities.
    let last_parts: Vec<_> = parts
        .iter()
        .filter(|p| p.time == *times.last().unwrap())
        .cloned()
        .collect();
    let comm = community_diversity(&idx, &last_parts, 4);
    assert!(comm.unique_communities > 0, "no communities observed");
    assert!(comm.vps_seeing_communities > 0.3);
    assert!(!comm.per_collector.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn path_inflation_reports_inflated_pairs() {
    // Inflation needs a rich graph: many VPs contribute edges that
    // policy forbids other VPs from using. Use the full default
    // topology with several collectors.
    let topo = Arc::new(generate(&TopologyConfig {
        seed: 52,
        ..TopologyConfig::default()
    }));
    let cp = ControlPlane::new(topo, u64::MAX);
    let specs = standard_collectors(&cp, 2, 2, 8, 0.9, 52);
    let dir = tmpdir("inflation");
    let mut cfg = SimConfig::new(&dir);
    cfg.emit_updates = false;
    cfg.emit_ribs = false;
    let mut sim = Simulator::new(cp, specs, cfg);
    let idx = Index::shared();
    sim.attach_index(idx.clone());
    sim.force_rib_dump(0);
    let parts: Vec<_> = rib_partitions(&idx, 0, 0);
    assert_eq!(parts.len(), 4);
    let report = path_inflation(&idx, &parts, 4);
    assert!(report.pairs > 100, "too few pairs: {}", report.pairs);
    // Policy routing (valley-free) inflates some paths relative to the
    // undirected graph.
    assert!(
        report.inflated_frac > 0.0,
        "no inflation found over {} pairs",
        report.pairs
    );
    assert!(report.max_extra_hops >= 1);
    // Histogram accounts for every pair.
    let total: u64 = report.histogram.values().sum();
    assert_eq!(total, report.pairs);
    std::fs::remove_dir_all(&dir).ok();
}
