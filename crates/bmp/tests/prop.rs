//! Property tests: BMP wire round-trips and reader robustness against
//! arbitrary corruption.

use bmp::msg::BmpMessage;
use bmp::peer::PerPeerHeader;
use bmp::reader::BmpReader;
use bmp::tlv::{InfoTlv, StatTlv};
use bmp::PeerDownReason;

use bgp_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 8u8..=32).prop_map(|(bits, len)| {
        let masked = if len == 32 {
            bits
        } else {
            (bits >> (32 - len)) << (32 - len)
        };
        Prefix::v4(std::net::Ipv4Addr::from(masked), len)
    })
}

fn arb_peer() -> impl Strategy<Value = PerPeerHeader> {
    (any::<[u8; 4]>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
        |(ip, asn, bgp_id, ts)| {
            PerPeerHeader::global(
                std::net::IpAddr::V4(std::net::Ipv4Addr::from(ip)),
                Asn(asn),
                bgp_id,
                ts,
            )
        },
    )
}

fn arb_update() -> impl Strategy<Value = BgpUpdate> {
    (
        proptest::collection::vec(arb_prefix(), 0..4),
        proptest::collection::vec(arb_prefix(), 0..4),
        proptest::collection::vec(1u32..100_000, 1..6),
    )
        .prop_map(|(withdrawals, announcements, path)| {
            let attrs = (!announcements.is_empty()).then(|| {
                PathAttributes::route(AsPath::from_sequence(path), "192.0.2.1".parse().unwrap())
            });
            BgpUpdate {
                withdrawals,
                attrs,
                announcements,
            }
        })
        .prop_filter("collectors never emit empty updates", |u| !u.is_empty())
}

fn arb_stats() -> impl Strategy<Value = Vec<StatTlv>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(StatTlv::RejectedPrefixes),
            any::<u32>().prop_map(StatTlv::DuplicateAdvertisements),
            any::<u32>().prop_map(StatTlv::DuplicateWithdraws),
            any::<u32>().prop_map(StatTlv::AsPathLoop),
            any::<u64>().prop_map(StatTlv::AdjRibInRoutes),
            any::<u64>().prop_map(StatTlv::LocRibRoutes),
        ],
        0..8,
    )
}

fn arb_message() -> impl Strategy<Value = BmpMessage> {
    prop_oneof![
        (arb_peer(), arb_update()).prop_map(|(peer, u)| BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(u),
        }),
        (arb_peer(), arb_stats())
            .prop_map(|(peer, stats)| BmpMessage::StatisticsReport { peer, stats }),
        (arb_peer(), any::<u16>()).prop_map(|(peer, ev)| BmpMessage::PeerDown {
            peer,
            reason: PeerDownReason::LocalFsmEvent(ev),
        }),
        arb_peer().prop_map(|peer| BmpMessage::PeerDown {
            peer,
            reason: PeerDownReason::RemoteNoData,
        }),
        // OPEN carries a 2-byte My-AS field (4-byte ASNs become
        // AS_TRANS on the wire), so generate 16-bit ASNs here.
        (arb_peer(), any::<u16>(), any::<u16>()).prop_map(|(peer, a, b)| BmpMessage::PeerUp {
            peer,
            local_address: "192.0.2.254".parse().unwrap(),
            local_port: 179,
            remote_port: 33001,
            sent_open: BgpMessage::Open {
                asn: Asn(a as u32),
                hold_time: 180,
                bgp_id: a as u32
            },
            received_open: BgpMessage::Open {
                asn: Asn(b as u32),
                hold_time: 90,
                bgp_id: b as u32
            },
        }),
        proptest::collection::vec("[a-z]{1,12}", 0..3).prop_map(|names| BmpMessage::Initiation(
            names.into_iter().map(InfoTlv::SysName).collect()
        )),
    ]
}

proptest! {
    /// encode → decode is the identity for every message shape.
    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let wire = msg.encode();
        let mut reader = BmpReader::new(&wire[..]);
        let back = reader.next().unwrap().unwrap();
        prop_assert_eq!(back, msg);
        prop_assert!(reader.next().is_none());
    }

    /// A stream of messages survives concatenation.
    #[test]
    fn stream_roundtrip(msgs in proptest::collection::vec(arb_message(), 1..8)) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode());
        }
        let (back, err) = BmpReader::new(&wire[..]).read_all();
        prop_assert!(err.is_none());
        prop_assert_eq!(back, msgs);
    }

    /// The reader never panics on arbitrary bytes — it either decodes
    /// or returns an error.
    #[test]
    fn reader_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = BmpReader::new(&bytes[..]);
        while let Some(r) = reader.next() {
            if r.is_err() {
                break;
            }
        }
    }

    /// Single-byte corruption anywhere in a valid stream never panics
    /// and never yields more messages than were encoded.
    #[test]
    fn corruption_is_contained(
        msgs in proptest::collection::vec(arb_message(), 1..4),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode());
        }
        let pos = pos_seed % wire.len();
        wire[pos] ^= xor;
        let (back, _err) = BmpReader::new(&wire[..]).read_all();
        prop_assert!(back.len() <= msgs.len());
    }
}
