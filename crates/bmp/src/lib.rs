//! BMP — the BGP Monitoring Protocol (RFC 7854).
//!
//! The paper's §7 names native OpenBMP support as the headline future
//! extension: "adding native support for OpenBMP will enable processing
//! of streams sourced directly from BGP routers", i.e. without a route
//! collector emulating a BGP peer. This crate implements that data
//! path from scratch:
//!
//! * [`peer::PerPeerHeader`] — the 42-byte per-peer header carried by
//!   all peer-scoped messages;
//! * [`msg::BmpMessage`] — the seven RFC 7854 message types (route
//!   monitoring, statistics report, peer down/up, initiation,
//!   termination, route mirroring) with full wire encode/decode;
//! * [`tlv`] — initiation/termination information TLVs and the typed
//!   statistics TLVs of the statistics report;
//! * [`reader::BmpReader`] — a pull parser over any [`std::io::Read`]
//!   that, like the MRT reader, distinguishes clean end-of-stream from
//!   *corrupted reads* so downstream consumers can mark data not-valid;
//! * [`router::RouterExporter`] — the router side: wraps a monitored
//!   router's BGP activity (session establishment, updates, stats) and
//!   emits the corresponding BMP byte stream, mimicking a JunOS/IOS
//!   BMP implementation;
//! * [`station::MonitoringStation`] — the OpenBMP-equivalent station:
//!   consumes a BMP stream, tracks router/peer state, and bridges each
//!   peer-scoped message to an [`mrt::MrtRecord`] so that the entire
//!   existing BGPStream machinery (sorted streams, BGPCorsaro plugins,
//!   consumers) can process router-direct data unchanged.
//!
//! The BMP session transport in the real world is a TCP connection
//! initiated by the router; here the byte stream is any
//! `Read`/`Write` pair, which the tests and examples connect through
//! in-memory buffers exactly as the MRT path connects through files.

#![forbid(unsafe_code)]

pub mod feed;
pub mod msg;
pub mod peer;
pub mod reader;
pub mod router;
pub mod station;
pub mod tlv;

pub use feed::BmpLiveFeed;
pub use msg::{BmpMessage, PeerDownReason, BMP_VERSION};
pub use peer::{PeerFlags, PerPeerHeader};
pub use reader::{BmpError, BmpReader};
pub use router::RouterExporter;
pub use station::{MonitoringStation, StationEvent};
pub use tlv::{InfoTlv, StatTlv, Termination, TerminationReason};
