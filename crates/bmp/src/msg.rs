//! BMP message framing (RFC 7854 §4): the common header and the seven
//! message types.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bgp_types::message::HEADER_LEN as BGP_HEADER_LEN;
use bgp_types::BgpMessage;

use crate::peer::PerPeerHeader;
use crate::reader::BmpError;
use crate::tlv::{InfoTlv, StatTlv, Termination};

/// The only deployed BMP version.
pub const BMP_VERSION: u8 = 3;

/// Common-header size: version(1) + length(4) + type(1).
pub const COMMON_HEADER_LEN: usize = 6;

const TYPE_ROUTE_MONITORING: u8 = 0;
const TYPE_STATISTICS_REPORT: u8 = 1;
const TYPE_PEER_DOWN: u8 = 2;
const TYPE_PEER_UP: u8 = 3;
const TYPE_INITIATION: u8 = 4;
const TYPE_TERMINATION: u8 = 5;
const TYPE_ROUTE_MIRRORING: u8 = 6;

/// Why a monitored peering session went down (RFC 7854 §4.9).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PeerDownReason {
    /// The router closed the session and sent this NOTIFICATION.
    LocalNotification(BgpMessage),
    /// The router closed the session without a NOTIFICATION; the FSM
    /// event code that triggered the close follows.
    LocalFsmEvent(u16),
    /// The peer closed the session with this NOTIFICATION.
    RemoteNotification(BgpMessage),
    /// The peer closed the session without a NOTIFICATION.
    RemoteNoData,
}

impl PeerDownReason {
    fn code(&self) -> u8 {
        match self {
            PeerDownReason::LocalNotification(_) => 1,
            PeerDownReason::LocalFsmEvent(_) => 2,
            PeerDownReason::RemoteNotification(_) => 3,
            PeerDownReason::RemoteNoData => 4,
        }
    }
}

/// A decoded BMP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BmpMessage {
    /// Route monitoring: one BGP UPDATE as received from the peer.
    RouteMonitoring {
        /// The monitored peer.
        peer: PerPeerHeader,
        /// The UPDATE PDU.
        update: BgpMessage,
    },
    /// Periodic per-peer statistics.
    StatisticsReport {
        /// The monitored peer.
        peer: PerPeerHeader,
        /// The counters/gauges.
        stats: Vec<StatTlv>,
    },
    /// A monitored session went down.
    PeerDown {
        /// The monitored peer.
        peer: PerPeerHeader,
        /// Close reason.
        reason: PeerDownReason,
    },
    /// A monitored session reached Established.
    PeerUp {
        /// The monitored peer.
        peer: PerPeerHeader,
        /// Router-side address of the session.
        local_address: IpAddr,
        /// Router-side TCP port.
        local_port: u16,
        /// Peer-side TCP port.
        remote_port: u16,
        /// The OPEN the router sent.
        sent_open: BgpMessage,
        /// The OPEN the router received.
        received_open: BgpMessage,
    },
    /// First message on a BMP session: who the router is.
    Initiation(Vec<InfoTlv>),
    /// Last message on a BMP session.
    Termination(Termination),
    /// Verbatim duplication of messages (we carry the raw bytes; the
    /// mirroring TLV structure is not interpreted).
    RouteMirroring {
        /// The monitored peer.
        peer: PerPeerHeader,
        /// Raw mirroring TLVs.
        raw: Bytes,
    },
}

impl BmpMessage {
    /// Wire message-type code.
    pub fn type_code(&self) -> u8 {
        match self {
            BmpMessage::RouteMonitoring { .. } => TYPE_ROUTE_MONITORING,
            BmpMessage::StatisticsReport { .. } => TYPE_STATISTICS_REPORT,
            BmpMessage::PeerDown { .. } => TYPE_PEER_DOWN,
            BmpMessage::PeerUp { .. } => TYPE_PEER_UP,
            BmpMessage::Initiation(_) => TYPE_INITIATION,
            BmpMessage::Termination(_) => TYPE_TERMINATION,
            BmpMessage::RouteMirroring { .. } => TYPE_ROUTE_MIRRORING,
        }
    }

    /// The per-peer header, for peer-scoped messages.
    pub fn peer(&self) -> Option<&PerPeerHeader> {
        match self {
            BmpMessage::RouteMonitoring { peer, .. }
            | BmpMessage::StatisticsReport { peer, .. }
            | BmpMessage::PeerDown { peer, .. }
            | BmpMessage::PeerUp { peer, .. }
            | BmpMessage::RouteMirroring { peer, .. } => Some(peer),
            BmpMessage::Initiation(_) | BmpMessage::Termination(_) => None,
        }
    }

    /// Encode the complete message (common header + body).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        match self {
            BmpMessage::RouteMonitoring { peer, update } => {
                peer.encode(&mut body);
                body.put_slice(&update.encode());
            }
            BmpMessage::StatisticsReport { peer, stats } => {
                peer.encode(&mut body);
                body.put_u32(stats.len() as u32);
                for s in stats {
                    s.encode(&mut body);
                }
            }
            BmpMessage::PeerDown { peer, reason } => {
                peer.encode(&mut body);
                body.put_u8(reason.code());
                match reason {
                    PeerDownReason::LocalNotification(n)
                    | PeerDownReason::RemoteNotification(n) => body.put_slice(&n.encode()),
                    PeerDownReason::LocalFsmEvent(ev) => body.put_u16(*ev),
                    PeerDownReason::RemoteNoData => {}
                }
            }
            BmpMessage::PeerUp {
                peer,
                local_address,
                local_port,
                remote_port,
                sent_open,
                received_open,
            } => {
                peer.encode(&mut body);
                match local_address {
                    IpAddr::V4(v4) => {
                        body.put_slice(&[0u8; 12]);
                        body.put_slice(&v4.octets());
                    }
                    IpAddr::V6(v6) => body.put_slice(&v6.octets()),
                }
                body.put_u16(*local_port);
                body.put_u16(*remote_port);
                body.put_slice(&sent_open.encode());
                body.put_slice(&received_open.encode());
            }
            BmpMessage::Initiation(tlvs) => {
                for t in tlvs {
                    t.encode(&mut body);
                }
            }
            BmpMessage::Termination(t) => t.encode(&mut body),
            BmpMessage::RouteMirroring { peer, raw } => {
                peer.encode(&mut body);
                body.put_slice(raw);
            }
        }
        let mut out = BytesMut::with_capacity(COMMON_HEADER_LEN + body.len());
        out.put_u8(BMP_VERSION);
        out.put_u32((COMMON_HEADER_LEN + body.len()) as u32);
        out.put_u8(self.type_code());
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode a message body given its common-header type code.
    pub fn decode(type_code: u8, mut body: &[u8]) -> Result<BmpMessage, BmpError> {
        match type_code {
            TYPE_ROUTE_MONITORING => {
                let peer = PerPeerHeader::decode(&mut body)?;
                let update = BgpMessage::decode(body).map_err(BmpError::Bgp)?;
                Ok(BmpMessage::RouteMonitoring { peer, update })
            }
            TYPE_STATISTICS_REPORT => {
                let peer = PerPeerHeader::decode(&mut body)?;
                if body.len() < 4 {
                    return Err(BmpError::Truncated("stats count"));
                }
                let count = body.get_u32() as usize;
                let mut stats = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    stats.push(StatTlv::decode(&mut body)?);
                }
                if !body.is_empty() {
                    return Err(BmpError::Invalid("trailing bytes after stats"));
                }
                Ok(BmpMessage::StatisticsReport { peer, stats })
            }
            TYPE_PEER_DOWN => {
                let peer = PerPeerHeader::decode(&mut body)?;
                if body.is_empty() {
                    return Err(BmpError::Truncated("peer-down reason"));
                }
                let code = body.get_u8();
                let reason = match code {
                    1 | 3 => {
                        let n = BgpMessage::decode(body).map_err(BmpError::Bgp)?;
                        if code == 1 {
                            PeerDownReason::LocalNotification(n)
                        } else {
                            PeerDownReason::RemoteNotification(n)
                        }
                    }
                    2 => {
                        if body.len() < 2 {
                            return Err(BmpError::Truncated("FSM event code"));
                        }
                        PeerDownReason::LocalFsmEvent(body.get_u16())
                    }
                    4 => PeerDownReason::RemoteNoData,
                    _ => return Err(BmpError::Invalid("peer-down reason code")),
                };
                Ok(BmpMessage::PeerDown { peer, reason })
            }
            TYPE_PEER_UP => {
                let peer = PerPeerHeader::decode(&mut body)?;
                if body.len() < 20 {
                    return Err(BmpError::Truncated("peer-up session info"));
                }
                let mut addr = [0u8; 16];
                addr.copy_from_slice(&body[..16]);
                body.advance(16);
                let local_address = if peer.flags.ipv6 {
                    IpAddr::V6(Ipv6Addr::from(addr))
                } else {
                    let mut v4 = [0u8; 4];
                    v4.copy_from_slice(&addr[12..]);
                    IpAddr::V4(Ipv4Addr::from(v4))
                };
                let local_port = body.get_u16();
                let remote_port = body.get_u16();
                let (sent_open, rest) = split_bgp_pdu(body)?;
                let (received_open, rest) = split_bgp_pdu(rest)?;
                if !rest.is_empty() {
                    // Peer-up may carry trailing information TLVs;
                    // validate but do not retain them.
                    InfoTlv::decode_all(rest)?;
                }
                Ok(BmpMessage::PeerUp {
                    peer,
                    local_address,
                    local_port,
                    remote_port,
                    sent_open,
                    received_open,
                })
            }
            TYPE_INITIATION => Ok(BmpMessage::Initiation(InfoTlv::decode_all(body)?)),
            TYPE_TERMINATION => Ok(BmpMessage::Termination(Termination::decode(body)?)),
            TYPE_ROUTE_MIRRORING => {
                let peer = PerPeerHeader::decode(&mut body)?;
                Ok(BmpMessage::RouteMirroring {
                    peer,
                    raw: Bytes::copy_from_slice(body),
                })
            }
            other => Err(BmpError::UnknownType(other)),
        }
    }
}

/// Split one BGP PDU off the front of `buf` using the length field of
/// its header, decode it, and return the remainder.
fn split_bgp_pdu(buf: &[u8]) -> Result<(BgpMessage, &[u8]), BmpError> {
    if buf.len() < BGP_HEADER_LEN {
        return Err(BmpError::Truncated("embedded BGP PDU header"));
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if len < BGP_HEADER_LEN || buf.len() < len {
        return Err(BmpError::Truncated("embedded BGP PDU body"));
    }
    let msg = BgpMessage::decode(&buf[..len]).map_err(BmpError::Bgp)?;
    Ok((msg, &buf[len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlv::TerminationReason;
    use bgp_types::{AsPath, Asn, BgpUpdate, PathAttributes, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn peer() -> PerPeerHeader {
        PerPeerHeader::global("192.0.2.1".parse().unwrap(), Asn(65001), 0x0a000001, 1000)
    }

    fn open(asn: u32) -> BgpMessage {
        BgpMessage::Open {
            asn: Asn(asn),
            hold_time: 180,
            bgp_id: asn,
        }
    }

    fn roundtrip(m: &BmpMessage) -> BmpMessage {
        let wire = m.encode();
        assert_eq!(wire[0], BMP_VERSION);
        let len = u32::from_be_bytes([wire[1], wire[2], wire[3], wire[4]]) as usize;
        assert_eq!(len, wire.len());
        BmpMessage::decode(wire[5], &wire[COMMON_HEADER_LEN..]).unwrap()
    }

    #[test]
    fn route_monitoring_roundtrip() {
        let m = BmpMessage::RouteMonitoring {
            peer: peer(),
            update: BgpMessage::Update(BgpUpdate::announce(
                vec![p("203.0.113.0/24")],
                PathAttributes::route(
                    AsPath::from_sequence([65001, 137]),
                    "192.0.2.1".parse().unwrap(),
                ),
            )),
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn statistics_report_roundtrip() {
        let m = BmpMessage::StatisticsReport {
            peer: peer(),
            stats: vec![
                StatTlv::RejectedPrefixes(3),
                StatTlv::AdjRibInRoutes(812_000),
                StatTlv::LocRibRoutes(790_000),
            ],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn peer_up_roundtrip() {
        let m = BmpMessage::PeerUp {
            peer: peer(),
            local_address: "192.0.2.254".parse().unwrap(),
            local_port: 179,
            remote_port: 34123,
            sent_open: open(64512),
            received_open: open(65001),
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn peer_down_all_reasons_roundtrip() {
        let reasons = [
            PeerDownReason::LocalNotification(BgpMessage::Notification {
                code: 6,
                subcode: 2,
            }),
            PeerDownReason::LocalFsmEvent(17),
            PeerDownReason::RemoteNotification(BgpMessage::Notification {
                code: 4,
                subcode: 0,
            }),
            PeerDownReason::RemoteNoData,
        ];
        for reason in reasons {
            let m = BmpMessage::PeerDown {
                peer: peer(),
                reason,
            };
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn initiation_termination_roundtrip() {
        let init = BmpMessage::Initiation(vec![
            InfoTlv::SysName("edge1".into()),
            InfoTlv::SysDescr("simulated router".into()),
        ]);
        assert_eq!(roundtrip(&init), init);
        let term = BmpMessage::Termination(Termination {
            reason: TerminationReason::AdminClose,
            info: None,
        });
        assert_eq!(roundtrip(&term), term);
    }

    #[test]
    fn route_mirroring_preserves_raw() {
        let m = BmpMessage::RouteMirroring {
            peer: peer(),
            raw: Bytes::from_static(&[0, 1, 0, 2, 9, 9]),
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(matches!(
            BmpMessage::decode(77, &[]),
            Err(BmpError::UnknownType(77))
        ));
    }

    #[test]
    fn bad_peer_down_reason_rejected() {
        let mut body = BytesMut::new();
        peer().encode(&mut body);
        body.put_u8(9);
        assert!(matches!(
            BmpMessage::decode(TYPE_PEER_DOWN, &body),
            Err(BmpError::Invalid(_))
        ));
    }

    #[test]
    fn stats_with_trailing_garbage_rejected() {
        let m = BmpMessage::StatisticsReport {
            peer: peer(),
            stats: vec![],
        };
        let mut wire = BytesMut::from(&m.encode()[..]);
        wire.put_u8(0xAA);
        let len = wire.len() as u32;
        wire[1..5].copy_from_slice(&len.to_be_bytes());
        assert!(matches!(
            BmpMessage::decode(wire[5], &wire[COMMON_HEADER_LEN..]),
            Err(BmpError::Invalid(_))
        ));
    }
}
