//! The monitoring-station side: an OpenBMP-equivalent that bridges
//! BMP into the MRT-based BGPStream pipeline.
//!
//! The station consumes a router's BMP message stream, maintains the
//! session state the protocol implies (initiation seen, which peers
//! are up), and converts every peer-scoped message into the
//! [`mrt::MrtRecord`] a route collector would have produced for the
//! same observation:
//!
//! * route monitoring → `BGP4MP_MESSAGE_AS4`;
//! * peer up → `BGP4MP_STATE_CHANGE_AS4` (OpenConfirm → Established);
//! * peer down → `BGP4MP_STATE_CHANGE_AS4` (Established → Idle).
//!
//! Downstream, those records flow through the exact same sorted-stream
//! / BGPCorsaro / consumer machinery as archive data — which is the
//! point of the paper's §7 plan: OpenBMP support slots in as another
//! data source *underneath* the framework, not as a parallel stack.
//!
//! A station is deliberately tolerant of protocol anomalies (a router
//! restarting mid-stream, duplicate peer-ups): real monitoring
//! infrastructure must keep running, so anomalies are surfaced as
//! events and counted rather than aborting the session.

use std::collections::HashMap;
use std::net::IpAddr;

use bgp_types::{Asn, SessionState};
use mrt::{Bgp4mp, MrtRecord};

use crate::msg::BmpMessage;
use crate::peer::PerPeerHeader;
use crate::tlv::{StatTlv, Termination};

/// What the station derived from one BMP message.
#[derive(Clone, PartialEq, Debug)]
pub enum StationEvent {
    /// The router introduced itself (initiation message).
    RouterUp {
        /// sysName TLV, if present.
        sys_name: Option<String>,
        /// sysDescr TLV, if present.
        sys_descr: Option<String>,
    },
    /// The router closed the BMP session.
    RouterDown(Termination),
    /// A peer-scoped message bridged to an MRT record.
    Record(MrtRecord),
    /// A statistics report (not representable in MRT; exposed raw).
    Stats {
        /// The monitored peer.
        peer_address: IpAddr,
        /// The peer's ASN.
        peer_asn: Asn,
        /// The report contents.
        stats: Vec<StatTlv>,
    },
    /// A protocol-discipline anomaly the station tolerated.
    Anomaly(&'static str),
}

/// Per-router BMP session state at the station.
pub struct MonitoringStation {
    /// The "collector" identity stamped into bridged MRT records.
    local_asn: Asn,
    local_ip: IpAddr,
    initiated: bool,
    peers_up: HashMap<(IpAddr, u32), Asn>,
    anomalies: u64,
    records_bridged: u64,
}

impl MonitoringStation {
    /// A station bridging records as collector `local_asn`/`local_ip`.
    pub fn new(local_asn: Asn, local_ip: IpAddr) -> Self {
        MonitoringStation {
            local_asn,
            local_ip,
            initiated: false,
            peers_up: HashMap::new(),
            anomalies: 0,
            records_bridged: 0,
        }
    }

    /// Protocol anomalies tolerated so far.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// MRT records produced so far.
    pub fn records_bridged(&self) -> u64 {
        self.records_bridged
    }

    /// Peers currently up.
    pub fn peers_up(&self) -> usize {
        self.peers_up.len()
    }

    /// Ingest one message, producing derived events.
    pub fn ingest(&mut self, msg: BmpMessage) -> Vec<StationEvent> {
        match msg {
            BmpMessage::Initiation(tlvs) => {
                let mut sys_name = None;
                let mut sys_descr = None;
                for t in tlvs {
                    match t {
                        crate::tlv::InfoTlv::SysName(s) => sys_name = Some(s),
                        crate::tlv::InfoTlv::SysDescr(s) => sys_descr = Some(s),
                        _ => {}
                    }
                }
                let mut events = Vec::new();
                if self.initiated {
                    // Router restarted without termination: drop stale
                    // peer state, as their sessions died with it.
                    self.anomalies += 1;
                    self.peers_up.clear();
                    events.push(StationEvent::Anomaly("re-initiation without termination"));
                }
                self.initiated = true;
                events.push(StationEvent::RouterUp {
                    sys_name,
                    sys_descr,
                });
                events
            }
            BmpMessage::Termination(t) => {
                self.initiated = false;
                self.peers_up.clear();
                vec![StationEvent::RouterDown(t)]
            }
            BmpMessage::PeerUp { peer, .. } => {
                let mut events = Vec::new();
                if !self.initiated {
                    self.anomalies += 1;
                    events.push(StationEvent::Anomaly("peer-up before initiation"));
                }
                let key = (peer.peer_address, peer.peer_bgp_id);
                if self.peers_up.insert(key, peer.peer_asn).is_some() {
                    self.anomalies += 1;
                    events.push(StationEvent::Anomaly("duplicate peer-up"));
                }
                events.push(StationEvent::Record(self.state_change(
                    &peer,
                    SessionState::OpenConfirm,
                    SessionState::Established,
                )));
                self.records_bridged += 1;
                events
            }
            BmpMessage::PeerDown { peer, .. } => {
                let mut events = Vec::new();
                if self
                    .peers_up
                    .remove(&(peer.peer_address, peer.peer_bgp_id))
                    .is_none()
                {
                    self.anomalies += 1;
                    events.push(StationEvent::Anomaly("peer-down for a peer not up"));
                }
                events.push(StationEvent::Record(self.state_change(
                    &peer,
                    SessionState::Established,
                    SessionState::Idle,
                )));
                self.records_bridged += 1;
                events
            }
            BmpMessage::RouteMonitoring { peer, update } => {
                let mut events = Vec::new();
                if !self
                    .peers_up
                    .contains_key(&(peer.peer_address, peer.peer_bgp_id))
                {
                    self.anomalies += 1;
                    events.push(StationEvent::Anomaly("route monitoring for a peer not up"));
                }
                let rec = MrtRecord::bgp4mp(
                    peer.ts_sec,
                    Bgp4mp::Message {
                        peer_asn: peer.peer_asn,
                        local_asn: self.local_asn,
                        peer_ip: peer.peer_address,
                        local_ip: self.local_ip,
                        message: update,
                    },
                );
                self.records_bridged += 1;
                events.push(StationEvent::Record(rec));
                events
            }
            BmpMessage::StatisticsReport { peer, stats } => {
                vec![StationEvent::Stats {
                    peer_address: peer.peer_address,
                    peer_asn: peer.peer_asn,
                    stats,
                }]
            }
            BmpMessage::RouteMirroring { .. } => {
                // Mirroring duplicates route-monitoring content; we do
                // not interpret it (matches our exporter, which never
                // emits it).
                vec![]
            }
        }
    }

    fn state_change(
        &self,
        peer: &PerPeerHeader,
        old_state: SessionState,
        new_state: SessionState,
    ) -> MrtRecord {
        MrtRecord::bgp4mp(
            peer.ts_sec,
            Bgp4mp::StateChange {
                peer_asn: peer.peer_asn,
                local_asn: self.local_asn,
                peer_ip: peer.peer_address,
                local_ip: self.local_ip,
                old_state,
                new_state,
            },
        )
    }
}

/// Convenience: run a whole BMP byte stream through a station,
/// returning the bridged MRT records in stream order (other events are
/// dropped) and the first decode error, if any.
pub fn bridge_stream<R: std::io::Read>(
    reader: R,
    local_asn: Asn,
    local_ip: IpAddr,
) -> (Vec<MrtRecord>, Option<crate::reader::BmpError>) {
    let mut station = MonitoringStation::new(local_asn, local_ip);
    let mut bmp = crate::reader::BmpReader::new(reader);
    let mut records = Vec::new();
    let mut first_err = None;
    while let Some(r) = bmp.next() {
        match r {
            Ok(msg) => {
                for ev in station.ingest(msg) {
                    if let StationEvent::Record(rec) = ev {
                        records.push(rec);
                    }
                }
            }
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    (records, first_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterExporter;
    use crate::tlv::TerminationReason;
    use bgp_types::{AsPath, BgpMessage, BgpUpdate, PathAttributes, Prefix};
    use mrt::MrtBody;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn station() -> MonitoringStation {
        MonitoringStation::new(Asn(64512), "192.0.2.254".parse().unwrap())
    }

    fn full_session_wire() -> Vec<u8> {
        let peer_ip: IpAddr = "192.0.2.1".parse().unwrap();
        let mut ex = RouterExporter::new(
            Vec::new(),
            "edge1",
            "192.0.2.254".parse().unwrap(),
            Asn(64512),
        );
        ex.initiate("sim").unwrap();
        ex.peer_up(peer_ip, Asn(65001), 1, 100).unwrap();
        ex.route_monitoring(
            peer_ip,
            Asn(65001),
            1,
            101,
            BgpUpdate::announce(
                vec![p("203.0.113.0/24")],
                PathAttributes::route(
                    AsPath::from_sequence([65001, 137]),
                    "192.0.2.1".parse().unwrap(),
                ),
            ),
        )
        .unwrap();
        ex.peer_down(
            peer_ip,
            Asn(65001),
            1,
            200,
            crate::msg::PeerDownReason::RemoteNoData,
        )
        .unwrap();
        ex.terminate(TerminationReason::AdminClose).unwrap();
        ex.into_inner()
    }

    #[test]
    fn bridges_full_session_to_mrt() {
        let wire = full_session_wire();
        let (records, err) = bridge_stream(&wire[..], Asn(64512), "192.0.2.254".parse().unwrap());
        assert!(err.is_none());
        // peer-up state change + update + peer-down state change.
        assert_eq!(records.len(), 3);
        assert!(matches!(
            &records[0].body,
            MrtBody::Bgp4mp(Bgp4mp::StateChange {
                new_state: SessionState::Established,
                ..
            })
        ));
        assert!(matches!(
            &records[1].body,
            MrtBody::Bgp4mp(Bgp4mp::Message { .. })
        ));
        assert!(matches!(
            &records[2].body,
            MrtBody::Bgp4mp(Bgp4mp::StateChange {
                new_state: SessionState::Idle,
                ..
            })
        ));
        // Timestamps carried from the per-peer headers.
        assert_eq!(records[0].timestamp, 100);
        assert_eq!(records[1].timestamp, 101);
        assert_eq!(records[2].timestamp, 200);
    }

    #[test]
    fn anomalies_are_tolerated_and_counted() {
        let peer = PerPeerHeader::global("10.0.0.1".parse().unwrap(), Asn(1), 1, 0);
        let mut st = station();
        // Route monitoring before any initiation/peer-up: anomaly, but
        // the record is still bridged (data is too valuable to drop).
        let events = st.ingest(BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(BgpUpdate::withdraw(vec![p("10.0.0.0/8")])),
        });
        assert!(matches!(events[0], StationEvent::Anomaly(_)));
        assert!(matches!(events[1], StationEvent::Record(_)));
        assert_eq!(st.anomalies(), 1);
        assert_eq!(st.records_bridged(), 1);
    }

    #[test]
    fn reinitiation_clears_peer_state() {
        let peer = PerPeerHeader::global("10.0.0.1".parse().unwrap(), Asn(1), 1, 0);
        let mut st = station();
        st.ingest(BmpMessage::Initiation(vec![]));
        st.ingest(BmpMessage::PeerUp {
            peer,
            local_address: "10.0.0.254".parse().unwrap(),
            local_port: 179,
            remote_port: 33001,
            sent_open: BgpMessage::Open {
                asn: Asn(2),
                hold_time: 180,
                bgp_id: 2,
            },
            received_open: BgpMessage::Open {
                asn: Asn(1),
                hold_time: 180,
                bgp_id: 1,
            },
        });
        assert_eq!(st.peers_up(), 1);
        let events = st.ingest(BmpMessage::Initiation(vec![]));
        assert!(matches!(events[0], StationEvent::Anomaly(_)));
        assert_eq!(st.peers_up(), 0);
    }

    #[test]
    fn stats_surface_raw() {
        let peer = PerPeerHeader::global("10.0.0.1".parse().unwrap(), Asn(1), 1, 0);
        let mut st = station();
        let events = st.ingest(BmpMessage::StatisticsReport {
            peer,
            stats: vec![StatTlv::LocRibRoutes(42)],
        });
        assert_eq!(
            events,
            vec![StationEvent::Stats {
                peer_address: "10.0.0.1".parse().unwrap(),
                peer_asn: Asn(1),
                stats: vec![StatTlv::LocRibRoutes(42)],
            }]
        );
    }
}
