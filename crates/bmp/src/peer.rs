//! The BMP per-peer header (RFC 7854 §4.2).
//!
//! Every peer-scoped BMP message (route monitoring, statistics report,
//! peer up/down) starts with this fixed 42-byte header identifying the
//! monitored peer and the time the encapsulated data was received.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};

use bgp_types::Asn;

use crate::reader::BmpError;

/// Peer type: we always emit *Global Instance* (0); the RD/local
/// instance types exist for VRF/loc-rib monitoring.
pub const PEER_TYPE_GLOBAL: u8 = 0;

/// Per-peer header flags (RFC 7854 §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PeerFlags {
    /// V flag: the peer address is IPv6.
    pub ipv6: bool,
    /// L flag: the encapsulated data is post-policy Adj-RIB-In
    /// (cf. §2 of the paper: OpenBMP "allows a user to periodically
    /// access the Adj-RIBs-In of a router").
    pub post_policy: bool,
    /// A flag: the encapsulated message uses legacy 2-byte AS_PATH
    /// encoding. We never set it (modern 4-byte speakers) but we
    /// preserve it on decode.
    pub legacy_as_path: bool,
}

impl PeerFlags {
    fn encode(self) -> u8 {
        let mut b = 0u8;
        if self.ipv6 {
            b |= 0x80;
        }
        if self.post_policy {
            b |= 0x40;
        }
        if self.legacy_as_path {
            b |= 0x20;
        }
        b
    }

    fn decode(b: u8) -> Self {
        PeerFlags {
            ipv6: b & 0x80 != 0,
            post_policy: b & 0x40 != 0,
            legacy_as_path: b & 0x20 != 0,
        }
    }
}

/// The 42-byte per-peer header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PerPeerHeader {
    /// Peer type code (0 = global instance).
    pub peer_type: u8,
    /// Header flags.
    pub flags: PeerFlags,
    /// Peer distinguisher (zero for global-instance peers).
    pub distinguisher: u64,
    /// Remote address of the monitored peering session.
    pub peer_address: IpAddr,
    /// Peer AS number.
    pub peer_asn: Asn,
    /// Peer BGP identifier.
    pub peer_bgp_id: u32,
    /// Seconds part of the time the route was received.
    pub ts_sec: u32,
    /// Microseconds part.
    pub ts_usec: u32,
}

impl PerPeerHeader {
    /// Encoded size.
    pub const LEN: usize = 42;

    /// A global-instance header for `peer` at time `ts_sec`.
    pub fn global(peer_address: IpAddr, peer_asn: Asn, peer_bgp_id: u32, ts_sec: u32) -> Self {
        PerPeerHeader {
            peer_type: PEER_TYPE_GLOBAL,
            flags: PeerFlags {
                ipv6: peer_address.is_ipv6(),
                ..PeerFlags::default()
            },
            distinguisher: 0,
            peer_address,
            peer_asn,
            peer_bgp_id,
            ts_sec,
            ts_usec: 0,
        }
    }

    /// Encode into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u8(self.peer_type);
        out.put_u8(self.flags.encode());
        out.put_u64(self.distinguisher);
        match self.peer_address {
            IpAddr::V4(v4) => {
                out.put_slice(&[0u8; 12]);
                out.put_slice(&v4.octets());
            }
            IpAddr::V6(v6) => out.put_slice(&v6.octets()),
        }
        out.put_u32(self.peer_asn.0);
        out.put_u32(self.peer_bgp_id);
        out.put_u32(self.ts_sec);
        out.put_u32(self.ts_usec);
    }

    /// Decode from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Result<PerPeerHeader, BmpError> {
        if buf.len() < Self::LEN {
            return Err(BmpError::Truncated("per-peer header"));
        }
        let peer_type = buf.get_u8();
        let flags = PeerFlags::decode(buf.get_u8());
        let distinguisher = buf.get_u64();
        let mut addr = [0u8; 16];
        addr.copy_from_slice(&buf[..16]);
        buf.advance(16);
        let peer_address = if flags.ipv6 {
            IpAddr::V6(Ipv6Addr::from(addr))
        } else {
            let mut v4 = [0u8; 4];
            v4.copy_from_slice(&addr[12..]);
            IpAddr::V4(Ipv4Addr::from(v4))
        };
        Ok(PerPeerHeader {
            peer_type,
            flags,
            distinguisher,
            peer_address,
            peer_asn: Asn(buf.get_u32()),
            peer_bgp_id: buf.get_u32(),
            ts_sec: buf.get_u32(),
            ts_usec: buf.get_u32(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(h: &PerPeerHeader) -> PerPeerHeader {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), PerPeerHeader::LEN);
        let mut slice = &buf[..];
        let back = PerPeerHeader::decode(&mut slice).unwrap();
        assert!(slice.is_empty());
        back
    }

    #[test]
    fn v4_header_roundtrip() {
        let h = PerPeerHeader::global("192.0.2.1".parse().unwrap(), Asn(65001), 0x0a000001, 77);
        assert!(!h.flags.ipv6);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn v6_header_roundtrip() {
        let h = PerPeerHeader::global("2001:db8::1".parse().unwrap(), Asn(400_812), 9, 1234);
        assert!(h.flags.ipv6);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for bits in 0u8..8 {
            let f = PeerFlags {
                ipv6: bits & 1 != 0,
                post_policy: bits & 2 != 0,
                legacy_as_path: bits & 4 != 0,
            };
            assert_eq!(PeerFlags::decode(f.encode()), f);
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let mut short: &[u8] = &[0u8; 41];
        assert!(matches!(
            PerPeerHeader::decode(&mut short),
            Err(BmpError::Truncated(_))
        ));
    }
}
