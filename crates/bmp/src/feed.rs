//! BMP as a *live data source* behind the broker's cursor
//! abstraction.
//!
//! [`bridge_stream`](crate::station::bridge_stream) converts a BMP
//! byte stream into MRT records; this module takes the next step and
//! makes a router feed look — to every live consumer — exactly like a
//! collector publishing to an archive: a [`BmpLiveFeed`] buffers the
//! bridged records, rotates them into MRT dump files on a fixed
//! window cadence, registers each file with a shared
//! [`broker::Index`], and advances the index's publication watermark
//! to the rotation boundary.
//!
//! Downstream, nothing knows or cares that the data came from BMP:
//! the same [`broker::LiveCursor`] releases the windows, the same
//! sorted-stream merge orders the records, and the same
//! watermark-driven bin closing applies — which is the paper's §7
//! point that "OpenBMP support slots in as another data source
//! *underneath* the framework, not as a parallel stack", now true for
//! live operation too. A BMP feed and simulated collector archives
//! can even share one index: the stream merges both sources by
//! timestamp, and the watermark (being the min-style invariant each
//! publisher maintains for its own dumps) composes through
//! [`broker::Index::advance_watermark`]'s monotonicity.

use std::net::IpAddr;
use std::path::PathBuf;
use std::sync::Arc;

use bgp_types::Asn;
use broker::index::DumpMeta;
use broker::{DumpType, Index};
use mrt::{MrtRecord, MrtWriter};

use crate::msg::BmpMessage;
use crate::station::{MonitoringStation, StationEvent};

/// Bridges one router's BMP session into rotating MRT dump files
/// published to a broker index. See the [module docs](self).
pub struct BmpLiveFeed {
    station: MonitoringStation,
    index: Arc<Index>,
    dir: PathBuf,
    /// Collector name stamped into published dumps (the router's
    /// identity at the station).
    collector: String,
    /// Rotation window in seconds.
    window: u64,
    window_start: u64,
    buffer: Vec<MrtRecord>,
    files_published: u64,
}

impl BmpLiveFeed {
    /// A feed rotating `window`-second dumps for router `collector`
    /// into `dir`, publishing them to `index`. The station bridges
    /// records as collector `local_asn`/`local_ip`. `start` aligns the
    /// first window.
    pub fn new(
        index: Arc<Index>,
        dir: impl Into<PathBuf>,
        collector: &str,
        local_asn: Asn,
        local_ip: IpAddr,
        start: u64,
        window: u64,
    ) -> Self {
        BmpLiveFeed {
            station: MonitoringStation::new(local_asn, local_ip),
            index,
            dir: dir.into(),
            collector: collector.to_string(),
            window: window.max(1),
            window_start: start,
            buffer: Vec::new(),
            files_published: 0,
        }
    }

    /// The underlying station (anomaly counters, peer state).
    pub fn station(&self) -> &MonitoringStation {
        &self.station
    }

    /// Dump files published so far.
    pub fn files_published(&self) -> u64 {
        self.files_published
    }

    /// Ingest one BMP message. Bridged records are buffered; a record
    /// timestamped at or past the current window's end rotates the
    /// window first (so dumps hold exactly their window's records,
    /// like a collector's updates files). Non-record events are
    /// returned for the caller's monitoring.
    pub fn ingest(&mut self, msg: BmpMessage) -> Vec<StationEvent> {
        // A record far in the future must not materialise every
        // intermediate quiet window as a file: a single hostile
        // timestamp (u32::MAX is ~71M 60-second windows away) would
        // otherwise flood the disk and the index. Past this many
        // consecutive empty windows, the gap is skipped in one jump.
        const MAX_EMPTY_ROTATIONS: u64 = 64;
        let mut other = Vec::new();
        for ev in self.station.ingest(msg) {
            match ev {
                StationEvent::Record(rec) => {
                    let ts = rec.timestamp as u64;
                    let mut rotations = 0u64;
                    while ts >= self.window_start + self.window {
                        if rotations >= MAX_EMPTY_ROTATIONS {
                            // Jump the (aligned) cursor to the
                            // record's window; the skipped quiet span
                            // publishes no files but the watermark
                            // still advances on the next rotation.
                            let gap = (ts - self.window_start) / self.window;
                            self.window_start += gap * self.window;
                            break;
                        }
                        self.rotate();
                        rotations += 1;
                    }
                    self.buffer.push(rec);
                }
                ev => other.push(ev),
            }
        }
        other
    }

    /// Close the current window: write its records (possibly none —
    /// quiet windows publish empty dumps, exactly like a real
    /// collector's updates cadence) as one MRT file, register it, and
    /// advance the watermark to the new window start so live cursors
    /// can release the closed window.
    pub fn rotate(&mut self) {
        let bound = self.window_start + self.window;
        let mut bytes = Vec::new();
        {
            let mut w = MrtWriter::new(&mut bytes);
            for rec in &self.buffer {
                w.write(rec).expect("in-memory write");
            }
        }
        self.buffer.clear();
        std::fs::create_dir_all(&self.dir).expect("create feed dir");
        let path = self
            .dir
            .join(format!("bmp-{}-{}.mrt", self.collector, self.window_start));
        std::fs::write(&path, &bytes).expect("write bmp dump");
        self.index.register(DumpMeta {
            project: "bmp".into(),
            collector: self.collector.clone(),
            dump_type: DumpType::Updates,
            interval_start: self.window_start,
            duration: self.window,
            path,
            available_at: bound,
            size: bytes.len() as u64,
        });
        self.files_published += 1;
        self.window_start = bound;
        self.index.advance_watermark(self.window_start);
    }

    /// Close the current (final) window — the session-teardown path.
    /// `ingest` already rotated past every earlier window, so the
    /// buffer only ever holds the current window's records.
    pub fn finish(mut self) -> u64 {
        self.rotate();
        self.files_published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::BmpReader;
    use crate::router::RouterExporter;
    use bgp_types::{AsPath, BgpUpdate, PathAttributes, Prefix};

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "bmp-feed-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A session whose updates span several 300-second windows.
    fn session_wire() -> Vec<u8> {
        let peer_ip: IpAddr = "192.0.2.1".parse().unwrap();
        let mut ex = RouterExporter::new(
            Vec::new(),
            "edge1",
            "192.0.2.254".parse().unwrap(),
            Asn(64512),
        );
        ex.initiate("sim").unwrap();
        ex.peer_up(peer_ip, Asn(65001), 1, 10).unwrap();
        for (k, ts) in [20u32, 250, 400, 650, 900, 1150].into_iter().enumerate() {
            ex.route_monitoring(
                peer_ip,
                Asn(65001),
                1,
                ts,
                BgpUpdate::announce(
                    vec![p(&format!("203.0.{k}.0/24"))],
                    PathAttributes::route(
                        AsPath::from_sequence([65001, 137]),
                        "192.0.2.1".parse().unwrap(),
                    ),
                ),
            )
            .unwrap();
        }
        ex.into_inner()
    }

    #[test]
    fn feed_publishes_windows_and_live_stream_tails_them() {
        use bgpstream::{BgpStream, Clock};
        use broker::LocalBroker;

        let wire = session_wire();
        // Reference: what a plain bridge of the whole session yields.
        let (reference, err) =
            crate::station::bridge_stream(&wire[..], Asn(64512), "192.0.2.254".parse().unwrap());
        assert!(err.is_none());

        let dir = scratch("tail");
        let index = Arc::new(Index::with_window(300));
        let mut feed = BmpLiveFeed::new(
            index.clone(),
            &dir,
            "edge1",
            Asn(64512),
            "192.0.2.254".parse().unwrap(),
            0,
            300,
        );
        let mut reader = BmpReader::new(&wire[..]);
        while let Some(msg) = reader.next() {
            feed.ingest(msg.expect("well-formed wire"));
        }
        let files = feed.finish();
        assert!(files >= 4, "the session spans several windows: {files}");
        assert_eq!(index.len(), files as usize);
        assert!(index.watermark() >= 1151);

        // The same cursor abstraction every live consumer uses: a
        // watermark-released live stream over the feed's index.
        let mut stream = BgpStream::builder()
            .broker_client(LocalBroker::shared(index))
            .live(0)
            .watermark_release()
            .clock(Clock::all_published())
            .start();
        let mut got = Vec::new();
        while got.len() < reference.len() {
            match stream.next_batch_step(64) {
                bgpstream::BatchStep::Records(recs) => {
                    for r in recs {
                        assert_eq!(r.project(), "bmp");
                        assert_eq!(r.collector(), "edge1");
                        got.push(r.timestamp);
                    }
                }
                bgpstream::BatchStep::Idle { .. } => {}
                bgpstream::BatchStep::End => break,
            }
        }
        let want: Vec<u64> = reference.iter().map(|r| r.timestamp as u64).collect();
        assert_eq!(got, want, "live tail must replay the bridged session");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn far_future_timestamp_does_not_flood_the_archive() {
        // A hostile/buggy router stamping a record at u32::MAX must
        // not materialise ~71M intermediate empty windows as files:
        // past a bounded run of empty rotations the cursor jumps.
        let dir = scratch("flood");
        let index = Index::shared();
        let mut feed = BmpLiveFeed::new(
            index.clone(),
            &dir,
            "edge1",
            Asn(64512),
            "192.0.2.254".parse().unwrap(),
            0,
            60,
        );
        let peer = crate::peer::PerPeerHeader::global("10.0.0.1".parse().unwrap(), Asn(1), 1, 0);
        feed.ingest(BmpMessage::RouteMonitoring {
            peer: crate::peer::PerPeerHeader {
                ts_sec: u32::MAX,
                ..peer
            },
            update: bgp_types::BgpMessage::Keepalive,
        });
        let files = feed.finish();
        assert!(files <= 66, "flooded {files} files");
        assert!(index.watermark() > u64::from(u32::MAX));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quiet_windows_publish_empty_dumps() {
        let dir = scratch("quiet");
        let index = Index::shared();
        let mut feed = BmpLiveFeed::new(
            index.clone(),
            &dir,
            "edge1",
            Asn(64512),
            "192.0.2.254".parse().unwrap(),
            0,
            60,
        );
        feed.rotate();
        feed.rotate();
        assert_eq!(feed.files_published(), 2);
        assert_eq!(index.len(), 2);
        assert_eq!(index.watermark(), 120);
        std::fs::remove_dir_all(&dir).ok();
    }
}
