//! BMP TLVs: initiation/termination information (RFC 7854 §4.4, §4.5)
//! and the typed statistics of the statistics report (§4.8).

use bytes::{Buf, BufMut, BytesMut};

use crate::reader::BmpError;

/// Information TLV types (initiation and termination messages).
const INFO_STRING: u16 = 0;
const INFO_SYS_DESCR: u16 = 1;
const INFO_SYS_NAME: u16 = 2;
/// Termination-only: 2-byte reason code.
const TERM_REASON: u16 = 1;

/// An information TLV carried by initiation messages (and the string
/// TLV of termination messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InfoTlv {
    /// Free-form administrative string.
    String(String),
    /// sysDescr (router software/hardware description).
    SysDescr(String),
    /// sysName (router hostname).
    SysName(String),
    /// Unknown type preserved as raw bytes.
    Unknown(u16, Vec<u8>),
}

impl InfoTlv {
    /// Encode into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        let (ty, value): (u16, &[u8]) = match self {
            InfoTlv::String(s) => (INFO_STRING, s.as_bytes()),
            InfoTlv::SysDescr(s) => (INFO_SYS_DESCR, s.as_bytes()),
            InfoTlv::SysName(s) => (INFO_SYS_NAME, s.as_bytes()),
            InfoTlv::Unknown(ty, raw) => (*ty, raw),
        };
        out.put_u16(ty);
        out.put_u16(value.len() as u16);
        out.put_slice(value);
    }

    /// Decode one TLV from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Result<InfoTlv, BmpError> {
        let (ty, value) = decode_tlv_header(buf, "information TLV")?;
        let text = || {
            String::from_utf8(value.to_vec())
                .map_err(|_| BmpError::Invalid("non-UTF-8 information TLV"))
        };
        let tlv = match ty {
            INFO_STRING => InfoTlv::String(text()?),
            INFO_SYS_DESCR => InfoTlv::SysDescr(text()?),
            INFO_SYS_NAME => InfoTlv::SysName(text()?),
            other => InfoTlv::Unknown(other, value.to_vec()),
        };
        Ok(tlv)
    }

    /// Decode all TLVs up to the end of `buf`.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<InfoTlv>, BmpError> {
        let mut tlvs = Vec::new();
        while !buf.is_empty() {
            tlvs.push(InfoTlv::decode(&mut buf)?);
        }
        Ok(tlvs)
    }
}

/// Why a termination message was sent (RFC 7854 §4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TerminationReason {
    /// Session administratively closed.
    AdminClose,
    /// Unspecified reason.
    Unspecified,
    /// Resources exceeded on the router.
    OutOfResources,
    /// Redundant connection.
    RedundantConnection,
    /// Session permanently administratively closed.
    PermanentAdminClose,
    /// Unknown code, preserved.
    Other(u16),
}

impl TerminationReason {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            TerminationReason::AdminClose => 0,
            TerminationReason::Unspecified => 1,
            TerminationReason::OutOfResources => 2,
            TerminationReason::RedundantConnection => 3,
            TerminationReason::PermanentAdminClose => 4,
            TerminationReason::Other(c) => c,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u16) -> Self {
        match c {
            0 => TerminationReason::AdminClose,
            1 => TerminationReason::Unspecified,
            2 => TerminationReason::OutOfResources,
            3 => TerminationReason::RedundantConnection,
            4 => TerminationReason::PermanentAdminClose,
            other => TerminationReason::Other(other),
        }
    }
}

/// The body of a termination message: an optional string plus the
/// mandatory reason TLV.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Termination {
    /// Reason for terminating.
    pub reason: TerminationReason,
    /// Optional free-form explanation.
    pub info: Option<String>,
}

impl Termination {
    /// Encode into `out` (reason TLV first, per common practice).
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u16(TERM_REASON);
        out.put_u16(2);
        out.put_u16(self.reason.code());
        if let Some(s) = &self.info {
            InfoTlv::String(s.clone()).encode(out);
        }
    }

    /// Decode a termination body.
    pub fn decode(mut buf: &[u8]) -> Result<Termination, BmpError> {
        let mut reason = None;
        let mut info = None;
        while !buf.is_empty() {
            let (ty, value) = decode_tlv_header(&mut buf, "termination TLV")?;
            match ty {
                TERM_REASON => {
                    if value.len() != 2 {
                        return Err(BmpError::Invalid("termination reason length"));
                    }
                    reason = Some(TerminationReason::from_code(u16::from_be_bytes([
                        value[0], value[1],
                    ])));
                }
                INFO_STRING => {
                    info = Some(
                        String::from_utf8(value.to_vec())
                            .map_err(|_| BmpError::Invalid("non-UTF-8 termination string"))?,
                    );
                }
                _ => {} // tolerate unknown termination TLVs
            }
        }
        Ok(Termination {
            reason: reason.ok_or(BmpError::Invalid("termination without reason TLV"))?,
            info,
        })
    }
}

/// One statistic of a statistics report (RFC 7854 §4.8). The commonly
/// implemented counters are typed; anything else is preserved raw.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StatTlv {
    /// Stat type 0: prefixes rejected by inbound policy.
    RejectedPrefixes(u32),
    /// Stat type 1: duplicate prefix advertisements.
    DuplicateAdvertisements(u32),
    /// Stat type 2: duplicate withdraws.
    DuplicateWithdraws(u32),
    /// Stat type 4: updates invalidated due to AS_PATH loop.
    AsPathLoop(u32),
    /// Stat type 7: routes in Adj-RIB-In (gauge).
    AdjRibInRoutes(u64),
    /// Stat type 8: routes in Loc-RIB (gauge).
    LocRibRoutes(u64),
    /// Unknown stat type, raw value preserved.
    Unknown(u16, Vec<u8>),
}

impl StatTlv {
    /// Wire stat-type code.
    pub fn code(&self) -> u16 {
        match self {
            StatTlv::RejectedPrefixes(_) => 0,
            StatTlv::DuplicateAdvertisements(_) => 1,
            StatTlv::DuplicateWithdraws(_) => 2,
            StatTlv::AsPathLoop(_) => 4,
            StatTlv::AdjRibInRoutes(_) => 7,
            StatTlv::LocRibRoutes(_) => 8,
            StatTlv::Unknown(ty, _) => *ty,
        }
    }

    /// Encode into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u16(self.code());
        match self {
            StatTlv::RejectedPrefixes(v)
            | StatTlv::DuplicateAdvertisements(v)
            | StatTlv::DuplicateWithdraws(v)
            | StatTlv::AsPathLoop(v) => {
                out.put_u16(4);
                out.put_u32(*v);
            }
            StatTlv::AdjRibInRoutes(v) | StatTlv::LocRibRoutes(v) => {
                out.put_u16(8);
                out.put_u64(*v);
            }
            StatTlv::Unknown(_, raw) => {
                out.put_u16(raw.len() as u16);
                out.put_slice(raw);
            }
        }
    }

    /// Decode one stat from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> Result<StatTlv, BmpError> {
        let (ty, value) = decode_tlv_header(buf, "stat TLV")?;
        let u32v = |w: &'static str| -> Result<u32, BmpError> {
            let arr: [u8; 4] = value.try_into().map_err(|_| BmpError::Invalid(w))?;
            Ok(u32::from_be_bytes(arr))
        };
        let u64v = |w: &'static str| -> Result<u64, BmpError> {
            let arr: [u8; 8] = value.try_into().map_err(|_| BmpError::Invalid(w))?;
            Ok(u64::from_be_bytes(arr))
        };
        let stat = match ty {
            0 => StatTlv::RejectedPrefixes(u32v("stat 0 length")?),
            1 => StatTlv::DuplicateAdvertisements(u32v("stat 1 length")?),
            2 => StatTlv::DuplicateWithdraws(u32v("stat 2 length")?),
            4 => StatTlv::AsPathLoop(u32v("stat 4 length")?),
            7 => StatTlv::AdjRibInRoutes(u64v("stat 7 length")?),
            8 => StatTlv::LocRibRoutes(u64v("stat 8 length")?),
            other => StatTlv::Unknown(other, value.to_vec()),
        };
        Ok(stat)
    }
}

/// Split one `type(2) length(2) value(length)` TLV off the front of
/// `buf`.
fn decode_tlv_header<'a>(
    buf: &mut &'a [u8],
    what: &'static str,
) -> Result<(u16, &'a [u8]), BmpError> {
    if buf.len() < 4 {
        return Err(BmpError::Truncated(what));
    }
    let ty = buf.get_u16();
    let len = buf.get_u16() as usize;
    if buf.len() < len {
        return Err(BmpError::Truncated(what));
    }
    let value = &buf[..len];
    buf.advance(len);
    Ok((ty, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_tlv_roundtrip() {
        for tlv in [
            InfoTlv::String("hello".into()),
            InfoTlv::SysDescr("JunOS 23.1".into()),
            InfoTlv::SysName("edge1.example".into()),
            InfoTlv::Unknown(99, vec![1, 2, 3]),
        ] {
            let mut buf = BytesMut::new();
            tlv.encode(&mut buf);
            let mut slice = &buf[..];
            assert_eq!(InfoTlv::decode(&mut slice).unwrap(), tlv);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn info_tlv_sequence() {
        let mut buf = BytesMut::new();
        InfoTlv::SysName("r1".into()).encode(&mut buf);
        InfoTlv::SysDescr("sim".into()).encode(&mut buf);
        let tlvs = InfoTlv::decode_all(&buf).unwrap();
        assert_eq!(tlvs.len(), 2);
    }

    #[test]
    fn info_tlv_rejects_bad_utf8() {
        let mut buf = BytesMut::new();
        buf.put_u16(INFO_SYS_NAME);
        buf.put_u16(2);
        buf.put_slice(&[0xFF, 0xFE]);
        let mut slice = &buf[..];
        assert!(matches!(
            InfoTlv::decode(&mut slice),
            Err(BmpError::Invalid(_))
        ));
    }

    #[test]
    fn stat_tlv_roundtrip() {
        for stat in [
            StatTlv::RejectedPrefixes(7),
            StatTlv::DuplicateAdvertisements(1000),
            StatTlv::DuplicateWithdraws(0),
            StatTlv::AsPathLoop(3),
            StatTlv::AdjRibInRoutes(812_000),
            StatTlv::LocRibRoutes(790_123),
            StatTlv::Unknown(42, vec![9, 9]),
        ] {
            let mut buf = BytesMut::new();
            stat.encode(&mut buf);
            let mut slice = &buf[..];
            assert_eq!(StatTlv::decode(&mut slice).unwrap(), stat);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn stat_tlv_wrong_width_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(7); // AdjRibInRoutes wants 8 bytes
        buf.put_u16(4);
        buf.put_u32(1);
        let mut slice = &buf[..];
        assert!(matches!(
            StatTlv::decode(&mut slice),
            Err(BmpError::Invalid(_))
        ));
    }

    #[test]
    fn termination_roundtrip() {
        let t = Termination {
            reason: TerminationReason::OutOfResources,
            info: Some("load shed".into()),
        };
        let mut buf = BytesMut::new();
        t.encode(&mut buf);
        assert_eq!(Termination::decode(&buf).unwrap(), t);
    }

    #[test]
    fn termination_requires_reason() {
        let mut buf = BytesMut::new();
        InfoTlv::String("bye".into()).encode(&mut buf);
        assert!(matches!(
            Termination::decode(&buf),
            Err(BmpError::Invalid(_))
        ));
    }

    #[test]
    fn termination_reason_codes_roundtrip() {
        for c in 0..6u16 {
            assert_eq!(TerminationReason::from_code(c).code(), c);
        }
    }

    #[test]
    fn truncated_tlv_value() {
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u16(10); // claims 10 bytes, provides 2
        buf.put_u16(0);
        let mut slice = &buf[..];
        assert!(matches!(
            InfoTlv::decode(&mut slice),
            Err(BmpError::Truncated(_))
        ));
    }
}
