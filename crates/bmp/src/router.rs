//! The router side of a BMP session: a JunOS/IOS-style exporter.
//!
//! A real router with BMP configured opens a TCP connection to the
//! monitoring station, sends an initiation message, then a peer-up for
//! every established BGP session, and from then on mirrors every
//! received UPDATE as a route-monitoring message, interleaved with
//! periodic statistics reports and peer up/down notifications. The
//! exporter reproduces exactly that message discipline over any
//! [`std::io::Write`], so the simulation exercises the same code path a
//! production OpenBMP deployment would.

use std::collections::HashMap;
use std::io::Write;
use std::net::IpAddr;

use bgp_types::{Asn, BgpMessage, BgpUpdate};

use crate::msg::{BmpMessage, PeerDownReason};
use crate::peer::PerPeerHeader;
use crate::tlv::{InfoTlv, StatTlv, Termination, TerminationReason};

/// Per-peer counters backing the statistics report.
#[derive(Clone, Copy, Default, Debug)]
struct PeerCounters {
    updates: u64,
    announced: u64,
    withdrawn: u64,
    adj_rib_in: u64,
}

/// Emits a well-formed BMP message stream for one monitored router.
///
/// The exporter enforces the RFC 7854 session discipline: initiation
/// first, peer-scoped messages only for peers previously declared up,
/// termination last (after which the exporter refuses further writes).
pub struct RouterExporter<W> {
    out: W,
    sys_name: String,
    local_address: IpAddr,
    local_asn: Asn,
    peers: HashMap<(IpAddr, u32), PeerCounters>,
    initiated: bool,
    terminated: bool,
    messages_sent: u64,
}

/// Errors from the exporter: protocol-discipline violations or I/O.
#[derive(Debug)]
pub enum ExportError {
    /// A peer-scoped message for a peer not currently up, a message
    /// before initiation, or anything after termination.
    Discipline(&'static str),
    /// Underlying write failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Discipline(w) => write!(f, "BMP session discipline: {w}"),
            ExportError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl<W: Write> RouterExporter<W> {
    /// Create an exporter for router `sys_name` writing to `out`.
    pub fn new(out: W, sys_name: &str, local_address: IpAddr, local_asn: Asn) -> Self {
        RouterExporter {
            out,
            sys_name: sys_name.to_string(),
            local_address,
            local_asn,
            peers: HashMap::new(),
            initiated: false,
            terminated: false,
            messages_sent: 0,
        }
    }

    /// Messages written so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Consume the exporter, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn send(&mut self, msg: &BmpMessage) -> Result<(), ExportError> {
        self.out.write_all(&msg.encode())?;
        self.messages_sent += 1;
        Ok(())
    }

    fn check_open(&self) -> Result<(), ExportError> {
        if !self.initiated {
            return Err(ExportError::Discipline("message before initiation"));
        }
        if self.terminated {
            return Err(ExportError::Discipline("message after termination"));
        }
        Ok(())
    }

    /// Send the initiation message. Must be called exactly once,
    /// before anything else.
    pub fn initiate(&mut self, sys_descr: &str) -> Result<(), ExportError> {
        if self.initiated {
            return Err(ExportError::Discipline("double initiation"));
        }
        self.initiated = true;
        let msg = BmpMessage::Initiation(vec![
            InfoTlv::SysName(self.sys_name.clone()),
            InfoTlv::SysDescr(sys_descr.to_string()),
        ]);
        self.send(&msg)
    }

    /// Declare a BGP session with `peer` established at time `now`.
    pub fn peer_up(
        &mut self,
        peer_address: IpAddr,
        peer_asn: Asn,
        peer_bgp_id: u32,
        now: u32,
    ) -> Result<(), ExportError> {
        self.check_open()?;
        let key = (peer_address, peer_bgp_id);
        if self.peers.contains_key(&key) {
            return Err(ExportError::Discipline("peer-up for a peer already up"));
        }
        self.peers.insert(key, PeerCounters::default());
        let peer = PerPeerHeader::global(peer_address, peer_asn, peer_bgp_id, now);
        let msg = BmpMessage::PeerUp {
            peer,
            local_address: self.local_address,
            local_port: 179,
            remote_port: 33000 + (self.peers.len() as u16),
            sent_open: BgpMessage::Open {
                asn: self.local_asn,
                hold_time: 180,
                bgp_id: bgp_id_of(self.local_address),
            },
            received_open: BgpMessage::Open {
                asn: peer_asn,
                hold_time: 180,
                bgp_id: peer_bgp_id,
            },
        };
        self.send(&msg)
    }

    /// Mirror an UPDATE received from an up peer.
    pub fn route_monitoring(
        &mut self,
        peer_address: IpAddr,
        peer_asn: Asn,
        peer_bgp_id: u32,
        now: u32,
        update: BgpUpdate,
    ) -> Result<(), ExportError> {
        self.check_open()?;
        let counters =
            self.peers
                .get_mut(&(peer_address, peer_bgp_id))
                .ok_or(ExportError::Discipline(
                    "route monitoring for a peer not up",
                ))?;
        counters.updates += 1;
        counters.announced += update.announcements.len() as u64;
        counters.withdrawn += update.withdrawals.len() as u64;
        counters.adj_rib_in = counters
            .adj_rib_in
            .saturating_add(update.announcements.len() as u64)
            .saturating_sub(update.withdrawals.len() as u64);
        let peer = PerPeerHeader::global(peer_address, peer_asn, peer_bgp_id, now);
        let msg = BmpMessage::RouteMonitoring {
            peer,
            update: BgpMessage::Update(update),
        };
        self.send(&msg)
    }

    /// Emit a statistics report for an up peer from its running
    /// counters.
    pub fn stats_report(
        &mut self,
        peer_address: IpAddr,
        peer_asn: Asn,
        peer_bgp_id: u32,
        now: u32,
    ) -> Result<(), ExportError> {
        self.check_open()?;
        let counters = *self
            .peers
            .get(&(peer_address, peer_bgp_id))
            .ok_or(ExportError::Discipline("stats report for a peer not up"))?;
        let peer = PerPeerHeader::global(peer_address, peer_asn, peer_bgp_id, now);
        let msg = BmpMessage::StatisticsReport {
            peer,
            stats: vec![
                StatTlv::DuplicateAdvertisements(0),
                StatTlv::DuplicateWithdraws(0),
                StatTlv::AdjRibInRoutes(counters.adj_rib_in),
                StatTlv::LocRibRoutes(counters.adj_rib_in),
            ],
        };
        self.send(&msg)
    }

    /// Declare a session down.
    pub fn peer_down(
        &mut self,
        peer_address: IpAddr,
        peer_asn: Asn,
        peer_bgp_id: u32,
        now: u32,
        reason: PeerDownReason,
    ) -> Result<(), ExportError> {
        self.check_open()?;
        if self.peers.remove(&(peer_address, peer_bgp_id)).is_none() {
            return Err(ExportError::Discipline("peer-down for a peer not up"));
        }
        let peer = PerPeerHeader::global(peer_address, peer_asn, peer_bgp_id, now);
        self.send(&BmpMessage::PeerDown { peer, reason })
    }

    /// Close the BMP session. No further messages are accepted.
    pub fn terminate(&mut self, reason: TerminationReason) -> Result<(), ExportError> {
        self.check_open()?;
        self.terminated = true;
        self.send(&BmpMessage::Termination(Termination { reason, info: None }))
    }
}

/// Derive a 32-bit BGP identifier from an address (v4: the address
/// itself; v6: a hash-fold, as routers with v6-only management do).
fn bgp_id_of(addr: IpAddr) -> u32 {
    match addr {
        IpAddr::V4(v4) => u32::from_be_bytes(v4.octets()),
        IpAddr::V6(v6) => {
            let o = v6.octets();
            let mut id = 0u32;
            for chunk in o.chunks(4) {
                id ^= u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::BmpReader;
    use bgp_types::{AsPath, PathAttributes, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn update() -> BgpUpdate {
        BgpUpdate::announce(
            vec![p("203.0.113.0/24")],
            PathAttributes::route(
                AsPath::from_sequence([65001, 137]),
                "192.0.2.1".parse().unwrap(),
            ),
        )
    }

    fn exporter() -> RouterExporter<Vec<u8>> {
        RouterExporter::new(
            Vec::new(),
            "edge1",
            "192.0.2.254".parse().unwrap(),
            Asn(64512),
        )
    }

    #[test]
    fn full_session_decodes() {
        let peer_ip: IpAddr = "192.0.2.1".parse().unwrap();
        let mut ex = exporter();
        ex.initiate("sim router").unwrap();
        ex.peer_up(peer_ip, Asn(65001), 1, 100).unwrap();
        ex.route_monitoring(peer_ip, Asn(65001), 1, 101, update())
            .unwrap();
        ex.stats_report(peer_ip, Asn(65001), 1, 160).unwrap();
        ex.peer_down(peer_ip, Asn(65001), 1, 200, PeerDownReason::RemoteNoData)
            .unwrap();
        ex.terminate(TerminationReason::AdminClose).unwrap();
        assert_eq!(ex.messages_sent(), 6);
        let wire = ex.into_inner();
        let (msgs, err) = BmpReader::new(&wire[..]).read_all();
        assert!(err.is_none());
        assert_eq!(msgs.len(), 6);
        assert!(matches!(msgs[0], BmpMessage::Initiation(_)));
        assert!(matches!(msgs[1], BmpMessage::PeerUp { .. }));
        assert!(matches!(msgs[2], BmpMessage::RouteMonitoring { .. }));
        assert!(matches!(msgs[3], BmpMessage::StatisticsReport { .. }));
        assert!(matches!(msgs[4], BmpMessage::PeerDown { .. }));
        assert!(matches!(msgs[5], BmpMessage::Termination(_)));
    }

    #[test]
    fn discipline_requires_initiation_first() {
        let mut ex = exporter();
        assert!(matches!(
            ex.peer_up("10.0.0.1".parse().unwrap(), Asn(1), 1, 0),
            Err(ExportError::Discipline(_))
        ));
    }

    #[test]
    fn discipline_rejects_unknown_peer_traffic() {
        let mut ex = exporter();
        ex.initiate("x").unwrap();
        assert!(matches!(
            ex.route_monitoring("10.0.0.1".parse().unwrap(), Asn(1), 1, 0, update()),
            Err(ExportError::Discipline(_))
        ));
        assert!(matches!(
            ex.peer_down(
                "10.0.0.1".parse().unwrap(),
                Asn(1),
                1,
                0,
                PeerDownReason::RemoteNoData
            ),
            Err(ExportError::Discipline(_))
        ));
    }

    #[test]
    fn discipline_rejects_double_peer_up_and_post_termination() {
        let peer_ip: IpAddr = "10.0.0.1".parse().unwrap();
        let mut ex = exporter();
        ex.initiate("x").unwrap();
        ex.peer_up(peer_ip, Asn(1), 1, 0).unwrap();
        assert!(matches!(
            ex.peer_up(peer_ip, Asn(1), 1, 0),
            Err(ExportError::Discipline(_))
        ));
        ex.terminate(TerminationReason::Unspecified).unwrap();
        assert!(matches!(
            ex.stats_report(peer_ip, Asn(1), 1, 0),
            Err(ExportError::Discipline(_))
        ));
    }

    #[test]
    fn adj_rib_in_gauge_tracks_announce_and_withdraw() {
        let peer_ip: IpAddr = "10.0.0.1".parse().unwrap();
        let mut ex = exporter();
        ex.initiate("x").unwrap();
        ex.peer_up(peer_ip, Asn(1), 1, 0).unwrap();
        ex.route_monitoring(peer_ip, Asn(1), 1, 1, update())
            .unwrap();
        ex.route_monitoring(
            peer_ip,
            Asn(1),
            1,
            2,
            BgpUpdate::withdraw(vec![p("203.0.113.0/24")]),
        )
        .unwrap();
        ex.stats_report(peer_ip, Asn(1), 1, 3).unwrap();
        let wire = ex.into_inner();
        let (msgs, _) = BmpReader::new(&wire[..]).read_all();
        let BmpMessage::StatisticsReport { stats, .. } = &msgs[4] else {
            panic!("expected stats report");
        };
        assert!(stats.contains(&StatTlv::AdjRibInRoutes(0)));
    }
}
