//! A pull parser for BMP byte streams.
//!
//! Mirrors [`mrt::MrtReader`]: wraps any [`std::io::Read`], yields one
//! message at a time, and — critically for the BGPStream error-checking
//! contract (§3.3.3) — distinguishes a clean end-of-stream from a
//! corrupted read so downstream code can mark records not-valid rather
//! than silently truncate.

use std::io::Read;

use bgp_types::message::CodecError;

use crate::msg::{BmpMessage, BMP_VERSION, COMMON_HEADER_LEN};

/// Maximum BMP message we will buffer. RFC 7854 sets no limit; this
/// guards against a corrupted length field allocating gigabytes.
pub const MAX_MESSAGE_LEN: usize = 1 << 20;

/// Errors raised while decoding BMP wire data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BmpError {
    /// Fewer bytes than a structure requires.
    Truncated(&'static str),
    /// Unsupported BMP version byte.
    BadVersion(u8),
    /// Unknown message-type code.
    UnknownType(u8),
    /// A semantically invalid field.
    Invalid(&'static str),
    /// A length field outside sane bounds.
    BadLength(u32),
    /// An embedded BGP PDU failed to decode.
    Bgp(CodecError),
    /// Underlying I/O failure (message preserved; `io::Error` is not
    /// `Clone`).
    Io(String),
}

impl std::fmt::Display for BmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BmpError::Truncated(w) => write!(f, "truncated {w}"),
            BmpError::BadVersion(v) => write!(f, "unsupported BMP version {v}"),
            BmpError::UnknownType(t) => write!(f, "unknown BMP message type {t}"),
            BmpError::Invalid(w) => write!(f, "invalid {w}"),
            BmpError::BadLength(l) => write!(f, "implausible BMP message length {l}"),
            BmpError::Bgp(e) => write!(f, "embedded BGP PDU: {e}"),
            BmpError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for BmpError {}

/// Pull parser yielding [`BmpMessage`]s from a byte stream.
///
/// ```
/// use bmp::{BmpMessage, BmpReader};
/// use bmp::tlv::InfoTlv;
///
/// let wire = BmpMessage::Initiation(vec![InfoTlv::SysName("r1".into())]).encode();
/// let mut reader = BmpReader::new(&wire[..]);
/// let msg = reader.next().unwrap().unwrap();
/// assert!(matches!(msg, BmpMessage::Initiation(_)));
/// assert!(reader.next().is_none());
/// ```
pub struct BmpReader<R> {
    inner: R,
    messages_read: u64,
    poisoned: bool,
}

impl<R: Read> BmpReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        BmpReader {
            inner,
            messages_read: 0,
            poisoned: false,
        }
    }

    /// Messages successfully decoded so far.
    pub fn messages_read(&self) -> u64 {
        self.messages_read
    }

    /// Pull the next message. `None` means clean end-of-stream;
    /// `Some(Err(_))` is a corrupted read, after which the reader
    /// yields nothing further (framing is lost).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<BmpMessage, BmpError>> {
        if self.poisoned {
            return None;
        }
        let mut header = [0u8; COMMON_HEADER_LEN];
        match read_exact_or_eof(&mut self.inner, &mut header) {
            Ok(0) => return None,
            Ok(n) if n < COMMON_HEADER_LEN => {
                self.poisoned = true;
                return Some(Err(BmpError::Truncated("common header")));
            }
            Ok(_) => {}
            Err(e) => {
                self.poisoned = true;
                return Some(Err(BmpError::Io(e.to_string())));
            }
        }
        if header[0] != BMP_VERSION {
            self.poisoned = true;
            return Some(Err(BmpError::BadVersion(header[0])));
        }
        let length = u32::from_be_bytes([header[1], header[2], header[3], header[4]]) as usize;
        if !(COMMON_HEADER_LEN..=MAX_MESSAGE_LEN).contains(&length) {
            self.poisoned = true;
            return Some(Err(BmpError::BadLength(length as u32)));
        }
        let mut body = vec![0u8; length - COMMON_HEADER_LEN];
        match read_exact_or_eof(&mut self.inner, &mut body) {
            Ok(n) if n < body.len() => {
                self.poisoned = true;
                return Some(Err(BmpError::Truncated("message body")));
            }
            Ok(_) => {}
            Err(e) => {
                self.poisoned = true;
                return Some(Err(BmpError::Io(e.to_string())));
            }
        }
        match BmpMessage::decode(header[5], &body) {
            Ok(msg) => {
                self.messages_read += 1;
                Some(Ok(msg))
            }
            Err(e) => {
                // Framing survives a bad body (we consumed exactly one
                // message), so subsequent messages remain readable.
                Some(Err(e))
            }
        }
    }

    /// Drain the stream; returns decoded messages and the first error,
    /// if any.
    pub fn read_all(mut self) -> (Vec<BmpMessage>, Option<BmpError>) {
        let mut msgs = Vec::new();
        while let Some(r) = self.next() {
            match r {
                Ok(m) => msgs.push(m),
                Err(e) => return (msgs, Some(e)),
            }
        }
        (msgs, None)
    }
}

/// Read exactly `buf.len()` bytes unless EOF intervenes; returns the
/// number of bytes actually read.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PerPeerHeader;
    use crate::tlv::InfoTlv;
    use bgp_types::Asn;
    use bytes::BufMut;

    fn init_msg(name: &str) -> BmpMessage {
        BmpMessage::Initiation(vec![InfoTlv::SysName(name.into())])
    }

    #[test]
    fn reads_message_sequence() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&init_msg("a").encode());
        wire.extend_from_slice(&init_msg("b").encode());
        let (msgs, err) = BmpReader::new(&wire[..]).read_all();
        assert!(err.is_none());
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = BmpReader::new(&[][..]);
        assert!(r.next().is_none());
        assert_eq!(r.messages_read(), 0);
    }

    #[test]
    fn truncated_header_signals_corruption() {
        let wire = init_msg("a").encode();
        let mut r = BmpReader::new(&wire[..3]);
        assert!(matches!(r.next(), Some(Err(BmpError::Truncated(_)))));
        assert!(r.next().is_none()); // poisoned
    }

    #[test]
    fn truncated_body_signals_corruption() {
        let wire = init_msg("abcdef").encode();
        let mut r = BmpReader::new(&wire[..wire.len() - 2]);
        assert!(matches!(r.next(), Some(Err(BmpError::Truncated(_)))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = init_msg("a").encode().to_vec();
        wire[0] = 2;
        let mut r = BmpReader::new(&wire[..]);
        assert!(matches!(r.next(), Some(Err(BmpError::BadVersion(2)))));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut wire = bytes::BytesMut::new();
        wire.put_u8(BMP_VERSION);
        wire.put_u32(u32::MAX);
        wire.put_u8(4);
        let mut r = BmpReader::new(&wire[..]);
        assert!(matches!(r.next(), Some(Err(BmpError::BadLength(_)))));
    }

    #[test]
    fn bad_body_does_not_lose_framing() {
        // First message: a peer-down with an invalid reason code;
        // second message: a valid initiation. The reader reports the
        // error, then continues.
        let good = BmpMessage::PeerDown {
            peer: PerPeerHeader::global("10.0.0.1".parse().unwrap(), Asn(1), 1, 0),
            reason: crate::msg::PeerDownReason::RemoteNoData,
        };
        let mut bad = good.encode().to_vec();
        *bad.last_mut().unwrap() = 9; // invalid reason code
        let mut wire = bad;
        wire.extend_from_slice(&init_msg("ok").encode());
        let mut r = BmpReader::new(&wire[..]);
        assert!(matches!(r.next(), Some(Err(BmpError::Invalid(_)))));
        assert!(matches!(r.next(), Some(Ok(BmpMessage::Initiation(_)))));
        assert!(r.next().is_none());
    }
}
