//! The runtime half of the tentpole equivalence proof: the RIB fold
//! must be *transport-invariant*. One simulated archive (RIB-dump
//! bootstrap at t=0 plus updates), four ways of folding it —
//! sequential historical run, sharded runs at 1/2/4 workers, and a
//! watermark-released live tail over a replayed publication schedule —
//! and every resulting store must carry the identical journal,
//! snapshot sequence and time-travel query answers.

use std::path::PathBuf;
use std::sync::Arc;

use bgpstream::{BgpStream, Clock};
use broker::{DumpMeta, Index, LocalBroker};
use collector_sim::{standard_collectors, FaultPlan, LiveFeeder, SimConfig, Simulator};
use corsaro::runtime::{ShardedPlugin, ShardedRuntime};
use corsaro::{run_pipeline_until, Plugin, RibFeeder};
use rib::{MemoryRibStore, RibQuery, RibStore};
use topology::control::ControlPlane;
use topology::events::Scenario;
use topology::gen::{generate, TopologyConfig};

const BIN: u64 = 300;
const SNAPSHOT_EVERY: u64 = 900;
const HORIZON: u64 = 3600;
const SEED: u64 = 11;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rib-runtime-equiv-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Simulate a small archive (one RIS + one RouteViews collector; the
/// simulator dumps each collector's first RIB immediately, so the
/// bootstrap path is exercised) and return its manifest + index.
fn build_archive(dir: &PathBuf) -> (Vec<DumpMeta>, Arc<Index>) {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(SEED))), u64::MAX);
    let specs = standard_collectors(&cp, 1, 1, 3, 0.8, SEED);
    let mut cfg = SimConfig::new(dir);
    cfg.seed = SEED;
    let mut sim = Simulator::new(cp, specs, cfg);
    let index = Index::shared();
    sim.attach_index(index.clone());
    // Light route flapping so the archive carries updates beyond the
    // bootstrap RIB dumps (mirrors the quickstart world).
    let topo = sim.control_plane().topology().clone();
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(8)
        .enumerate()
    {
        sc.flap(120 + 211 * k as u64, 4, 900, n.asn, n.prefixes_v4[0].prefix);
    }
    sim.schedule(&sc);
    sim.run_until(HORIZON);
    (sim.manifest().to_vec(), index)
}

fn historical_stream(index: &Arc<Index>) -> BgpStream {
    BgpStream::builder()
        .broker_client(LocalBroker::shared(index.clone()))
        .interval(0, Some(HORIZON))
        .start()
}

/// Journal + snapshots + query answers must agree exactly.
fn assert_store_eq(got: &MemoryRibStore, want: &MemoryRibStore, stop: u64, what: &str) {
    assert_eq!(got.event_count(), want.event_count(), "{what}: event count");
    assert_eq!(
        got.events_in(0, u64::MAX),
        want.events_in(0, u64::MAX),
        "{what}: journal"
    );
    assert_eq!(
        got.snapshot_count(),
        want.snapshot_count(),
        "{what}: snapshot count"
    );
    for t in [0, BIN - 1, SNAPSHOT_EVERY + 1, stop - 1] {
        let a = RibQuery::new().at(t).table(got).expect("query candidate");
        let b = RibQuery::new().at(t).table(want).expect("query reference");
        assert_eq!(a.encode(), b.encode(), "{what}: query at {t}");
    }
}

#[test]
fn sharded_and_live_folds_match_the_historical_fold() {
    let dir = scratch("archive");
    let (manifest, index) = build_archive(&dir);

    // Bin boundary just past the last record; all runs stop here so
    // their final watermarks line up.
    let mut probe = historical_stream(&index);
    let mut max_ts = 0u64;
    while let Some(r) = probe.next_record() {
        max_ts = max_ts.max(r.timestamp);
    }
    let stop = (max_ts / BIN) * BIN + BIN;

    // Reference: the sequential historical fold.
    let seq_store = MemoryRibStore::shared();
    let mut feeder = RibFeeder::new(SNAPSHOT_EVERY, seq_store.clone());
    let mut stream = historical_stream(&index);
    let records = run_pipeline_until(
        &mut stream,
        BIN,
        stop,
        &mut [&mut feeder as &mut dyn Plugin],
    );
    assert!(records > 0, "archive must hold records");
    assert!(
        seq_store.event_count() > 0 && seq_store.snapshot_count() > 0,
        "reference fold must publish events and snapshots"
    );

    // Sharded runs: every worker count folds identically (RibFeeder is
    // pinned, so this proves the worker/coordinator plumbing — fork,
    // end_bin ordering, publication — not sharding arithmetic).
    for workers in [1usize, 2, 4] {
        let store = MemoryRibStore::shared();
        let mut feeder = RibFeeder::new(SNAPSHOT_EVERY, store.clone());
        let runtime = ShardedRuntime::builder()
            .workers(workers)
            .bin_size(BIN)
            .build();
        let mut stream = historical_stream(&index);
        let n = runtime.run_until(
            &mut stream,
            stop,
            &mut [&mut feeder as &mut dyn ShardedPlugin],
        );
        assert_eq!(n, records, "workers={workers}: record count");
        assert_store_eq(&store, &seq_store, stop, &format!("workers={workers}"));
    }

    // Live: replay the finished archive through a LiveFeeder into a
    // fresh index and tail it with a watermark-released live stream;
    // the live-fed RIB must match the historical fold byte for byte.
    let live_index = Arc::new(Index::with_window(900));
    let plan = FaultPlan::none();
    let mut live_feeder = LiveFeeder::new(&manifest, live_index.clone(), &plan, SEED);
    let clock = Clock::manual(0);
    let feeder_horizon = live_feeder.horizon();
    let driver = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut t = 0u64;
            while !live_feeder.done() {
                t += 500;
                live_feeder.publish_until(t);
                clock.advance_to(t);
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            clock.advance_to(feeder_horizon.saturating_add(1));
        })
    };
    let live_store = MemoryRibStore::shared();
    let mut feeder = RibFeeder::new(SNAPSHOT_EVERY, live_store.clone());
    let runtime = ShardedRuntime::builder().workers(2).bin_size(BIN).build();
    let mut stream = BgpStream::builder()
        .broker_client(LocalBroker::shared(live_index))
        .live(0)
        .watermark_release()
        .clock(clock)
        .poll_interval(std::time::Duration::from_millis(1))
        .start();
    runtime
        .run_live(
            &mut stream,
            stop,
            None,
            &mut [&mut feeder as &mut dyn ShardedPlugin],
        )
        .expect("live run");
    driver.join().expect("feeder driver");
    assert_store_eq(&live_store, &seq_store, stop, "live");

    std::fs::remove_dir_all(&dir).ok();
}
