//! loom-lite model tests: `MemoryRibStore` publication under
//! concurrent crash-replay and concurrent readers.
//!
//! Run with `cargo test -p rib --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;

use bgp_types::Asn;
use bsync::model::{explore, Builder};
use rib::{MemoryRibStore, RibAction, RibEvent, RibStore};

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

fn ev(time: u64) -> RibEvent {
    RibEvent {
        time,
        collector: "rrc00".into(),
        peer: "10.0.0.9".parse().unwrap(),
        peer_asn: Asn(65001),
        action: RibAction::PeerUp,
    }
}

/// A supervisor-restored feeder re-publishes the bin the original
/// feeder already published, concurrently. No interleaving may
/// journal the bin twice, lose it, or move the watermark backwards.
#[test]
fn replayed_publication_is_dropped_whole_under_races() {
    let report = explore(&budget(), || {
        let store = MemoryRibStore::shared();
        let publisher =
            |store: Arc<MemoryRibStore>| move || store.publish(100, vec![ev(10), ev(50)], None);
        let p1 = bsync::thread::spawn_named("feeder", publisher(store.clone()));
        let p2 = bsync::thread::spawn_named("revived", publisher(store.clone()));
        let accepted_first = p1.join().expect("feeder ran");
        let accepted_second = p2.join().expect("revived feeder ran");
        assert!(
            accepted_first ^ accepted_second,
            "exactly one publication must win"
        );
        assert_eq!(store.watermark(), 100);
        assert_eq!(store.event_count(), 2, "journal must hold the bin once");
    });
    assert!(
        report.unwrap().iterations > 1,
        "model must explore interleavings"
    );
}

/// A reader races a publisher working through two bins. Whatever the
/// watermark the reader observes, the journal below it must already
/// be complete — a query admitted at T never sees a half-published
/// bin.
#[test]
fn observed_watermark_implies_complete_journal_below_it() {
    let report = explore(&budget(), || {
        let store = MemoryRibStore::shared();
        let producer = {
            let store = store.clone();
            move || {
                store.publish(100, vec![ev(10), ev(50)], None);
                store.publish(200, vec![ev(150)], None);
            }
        };
        let p = bsync::thread::spawn_named("producer", producer);
        let w = store.watermark();
        let seen = store.events_in(0, w.saturating_sub(1)).len();
        match w {
            0 => assert_eq!(seen, 0),
            100 => assert_eq!(seen, 2, "bin published with its watermark"),
            200 => assert_eq!(seen, 3, "both bins below the watermark"),
            other => panic!("impossible watermark {other}"),
        }
        p.join().expect("producer ran");
        assert_eq!(store.event_count(), 3);
    });
    assert!(
        report.unwrap().iterations > 1,
        "model must explore interleavings"
    );
}
