//! The tentpole equivalence proof: for **any** generated update
//! stream, snapshot cadence, bin size and crash plan, a time-travel
//! query answered from the nearest sealed snapshot plus the event
//! delta is byte-identical to a full replay of the journal from
//! genesis — and the store contents themselves are unperturbed by
//! checkpoint/restore crashes mid-bin (the supervisor's recovery
//! model: restore the last bin-boundary checkpoint, replay the open
//! bin, and rely on the store's idempotent publication to drop
//! duplicates).

use std::sync::Arc;

use bgp_types::{AsPath, Asn, Community, CommunitySet, SessionState};
use bgpstream::elem::{BgpStreamElem, ElemType};
use bgpstream::record::{DumpPosition, RecordStatus};
use bgpstream::BgpStreamRecord;
use broker::DumpType;
use proptest::collection::vec;
use proptest::prelude::*;
use rib::{MemoryRibStore, RibFold, RibQuery, RibStore, RibTable};

const PEERS: &[&str] = &["192.0.2.1", "192.0.2.2", "2001:db8::1"];
const PREFIXES: &[&str] = &[
    "203.0.113.0/24",
    "198.51.100.0/24",
    "203.0.113.128/25",
    "2001:db8:1::/48",
];
const COLLECTORS: &[(&str, &str)] = &[("ris", "rrc00"), ("routeviews", "route-views2")];

/// One generated elem: what kind, from which pooled peer, about which
/// pooled prefix, with which origin AS.
#[derive(Clone, Debug)]
struct GenElem {
    kind: u8,
    peer: usize,
    prefix: usize,
    origin: u32,
}

/// One generated record: a time increment, a collector, whether it is
/// a RIB-dump record (bootstrap path) or an updates record, and its
/// elems.
#[derive(Clone, Debug)]
struct GenRecord {
    dt: u64,
    collector: usize,
    rib: bool,
    elems: Vec<GenElem>,
}

fn arb_record() -> impl Strategy<Value = GenRecord> {
    (
        0u64..400,
        0usize..COLLECTORS.len(),
        any::<bool>(),
        vec(
            (
                0u8..4,
                0usize..PEERS.len(),
                0usize..PREFIXES.len(),
                1u32..9000,
            ),
            1..4,
        ),
    )
        .prop_map(|(dt, collector, rib, elems)| GenRecord {
            dt,
            collector,
            rib,
            elems: elems
                .into_iter()
                .map(|(kind, peer, prefix, origin)| GenElem {
                    kind,
                    peer,
                    prefix,
                    origin,
                })
                .collect(),
        })
}

/// Materialize the generated stream as time-sorted records.
fn materialize(gen: &[GenRecord]) -> Vec<BgpStreamRecord> {
    let mut t = 0u64;
    let mut out = Vec::with_capacity(gen.len());
    for g in gen {
        t += g.dt;
        let (project, collector) = COLLECTORS[g.collector];
        let elems = g
            .elems
            .iter()
            .map(|e| {
                let peer_address = PEERS[e.peer].parse().unwrap();
                let peer_asn = Asn(65000 + e.peer as u32);
                let announce_kind = if g.rib {
                    ElemType::RibEntry
                } else {
                    ElemType::Announcement
                };
                match e.kind {
                    // Announcements (or RIB rows when the record is a
                    // RIB-dump record — the bootstrap path).
                    0 | 1 => BgpStreamElem {
                        elem_type: announce_kind,
                        time: t,
                        peer_address,
                        peer_asn,
                        prefix: Some(PREFIXES[e.prefix].parse().unwrap()),
                        next_hop: Some(peer_address),
                        as_path: Some(AsPath::from_sequence([peer_asn.0, 3356, e.origin])),
                        communities: Some(CommunitySet::from_iter([Community::new(3356, 666)])),
                        old_state: None,
                        new_state: None,
                    },
                    2 => BgpStreamElem {
                        elem_type: ElemType::Withdrawal,
                        time: t,
                        peer_address,
                        peer_asn,
                        prefix: Some(PREFIXES[e.prefix].parse().unwrap()),
                        next_hop: None,
                        as_path: None,
                        communities: None,
                        old_state: None,
                        new_state: None,
                    },
                    _ => BgpStreamElem {
                        elem_type: ElemType::PeerState,
                        time: t,
                        peer_address,
                        peer_asn,
                        prefix: None,
                        next_hop: None,
                        as_path: None,
                        communities: None,
                        old_state: Some(SessionState::Established),
                        // Odd origins take the session down, even ones
                        // bring it (back) up.
                        new_state: Some(if e.origin % 2 == 1 {
                            SessionState::Idle
                        } else {
                            SessionState::Established
                        }),
                    },
                }
            })
            .collect();
        out.push(BgpStreamRecord::new(
            project,
            collector,
            if g.rib {
                DumpType::Rib
            } else {
                DumpType::Updates
            },
            t,
            t,
            DumpPosition::Middle,
            RecordStatus::Valid,
            elems,
        ));
    }
    out
}

/// Drive a fold over `records` with the sequential runner's binning,
/// crashing (checkpoint-restore-replay) just before the record
/// indexes in `faults`, mirroring the supervisor: the checkpoint is
/// whatever was sealed at the last bin boundary, and the open bin is
/// replayed from its start after the restore.
fn fold_with_faults(
    records: &[BgpStreamRecord],
    snapshot_every: u64,
    bin: u64,
    faults: &[usize],
) -> Arc<MemoryRibStore> {
    let store = MemoryRibStore::shared();
    let mut fold = RibFold::new(snapshot_every).with_store(store.clone());
    let mut ckpt = fold.checkpoint();
    let mut bin_replay: Vec<&BgpStreamRecord> = Vec::new();
    let mut bin_end: Option<u64> = None;
    for (i, rec) in records.iter().enumerate() {
        let t = rec.timestamp;
        match bin_end {
            None => bin_end = Some(t - t % bin + bin),
            Some(e) if t >= e => {
                let mut e = e;
                while t >= e {
                    fold.advance_watermark(e);
                    e += bin;
                }
                bin_end = Some(e);
                ckpt = fold.checkpoint();
                bin_replay.clear();
            }
            _ => {}
        }
        if faults.contains(&i) {
            let mut revived = RibFold::new(snapshot_every).with_store(store.clone());
            revived.restore(&ckpt).expect("restore checkpoint");
            for r in &bin_replay {
                revived.apply_record(r);
            }
            fold = revived;
        }
        fold.apply_record(rec);
        bin_replay.push(rec);
    }
    if let Some(e) = bin_end {
        fold.advance_watermark(e);
    }
    fold.finish();
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_plus_delta_equals_full_replay(
        gen in vec(arb_record(), 1..40),
        snapshot_every in prop_oneof![Just(0u64), 300u64..2000],
        bin in prop_oneof![Just(60u64), Just(300u64)],
        faults in vec(0usize..40, 0..4),
        queries in vec(0u64..20_000, 1..6),
    ) {
        let records = materialize(&gen);

        // Reference: no snapshots, no faults — the bare journal.
        let reference = fold_with_faults(&records, 0, bin, &[]);
        // Candidate: snapshot cadence + crash plan under test.
        let store = fold_with_faults(&records, snapshot_every, bin, &faults);

        // Crashes must be invisible in the published journal: the
        // store's idempotent publication drops every replayed bin.
        prop_assert_eq!(store.event_count(), reference.event_count());
        prop_assert_eq!(
            store.events_in(0, u64::MAX),
            reference.events_in(0, u64::MAX),
            "journals diverged"
        );

        // Time-travel: at any T, snapshot+delta resolution over the
        // candidate store is byte-identical to replaying the full
        // reference journal from genesis.
        for &t in &queries {
            let got = RibQuery::new().at(t).table(&*store).expect("within watermark");
            let mut replay = RibTable::new();
            for e in reference.events_in(0, t) {
                replay.apply(&e);
            }
            let want = replay.view(t);
            prop_assert_eq!(
                got.encode(),
                want.encode(),
                "query at {} diverged from full replay",
                t
            );
        }
    }
}
