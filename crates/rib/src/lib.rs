//! Stateful RIB reconstruction with time-travel queries.
//!
//! The paper's per-AS and per-prefix case studies (MOAS detection,
//! AS visibility during outages) all reduce to *"what did the routing
//! table look like at time T?"* — a question the pipeline could
//! previously answer only by replaying an entire sorted stream. This
//! crate folds the stream into per-`(collector, peer)` Loc-RIB state
//! once, publishes a journal plus periodic sealed snapshots, and
//! answers time-travel queries in O(snapshot + delta):
//!
//! ```text
//!   sorted/live stream ──▶ RibFold ──▶ RibStore ◀── RibQuery
//!    (RIB walks seed,       │ apply     │ journal      .at(T)
//!     updates delta)        ▼           │ snapshots    .prefix(..)
//!                        RibTable ──────┘ watermark    .history(..)
//! ```
//!
//! * [`table`] — the Loc-RIB state, the [`RibEvent`] journal
//!   vocabulary, and canonical (order-independent) serialization;
//! * [`fold`] — [`RibFold`]: stream in, state + publications out;
//!   drives historical runs directly ([`RibFold::ingest`]) and backs
//!   the live `corsaro` plugin; checkpoint/restore for supervision;
//! * [`store`] — [`RibStore`] (idempotent watermark-guarded
//!   publication; journal + snapshot retrieval) and the in-memory
//!   [`MemoryRibStore`] backend;
//! * [`query`] — the [`RibQuery`] builder.
//!
//! Time-travel in five lines (the README snippet):
//!
//! ```
//! use rib::{MemoryRibStore, RibQuery, RibStore, RibFold};
//!
//! let store = MemoryRibStore::shared();
//! // ... feed a RibFold::new(900).with_store(store.clone()) from a
//! // stream (historical ingest or the live RibFeeder plugin) ...
//! # let mut fold = RibFold::new(900).with_store(store.clone());
//! # fold.advance_watermark(1800);
//! let table = RibQuery::new().at(900).table(&*store)?;
//! println!("{} routes at t=900", table.len());
//! # Ok::<(), rib::RibError>(())
//! ```

#![forbid(unsafe_code)]

pub mod fold;
pub mod query;
pub mod store;
pub mod table;

pub use bgp_types::trie::PrefixMatch;
pub use fold::{FoldStats, RibFold};
pub use query::{RibError, RibQuery};
pub use store::{MemoryRibStore, RibStore, Snapshot};
pub use table::{LocRib, RibAction, RibEvent, RibRoute, RibTable, TableRow, TableView};
