//! The `RibStore` trait — where folded RIB state is published to and
//! queried from — and its in-memory backend.
//!
//! The store holds three things: a **watermark** (folds are complete
//! for every instant strictly below it), a **journal** of
//! [`RibEvent`]s in stream order, and a sparse sequence of sealed
//! **snapshots**. A snapshot stamped `at = S` contains exactly the
//! events with `time < S`, so a query at `T` restores the latest
//! snapshot `S ≤ T` and replays journal events with `S ≤ time ≤ T` on
//! top — O(snapshot + delta) instead of O(stream).
//!
//! Publication is *idempotent*: a [`publish`](RibStore::publish)
//! whose `upto` does not advance the watermark is dropped whole.
//! That is what makes crash-recovery safe — a supervisor that
//! restores a fold from its last checkpoint and replays records will
//! re-publish bins the store already has, and determinism guarantees
//! the dropped duplicates were byte-identical to what landed first.

use std::sync::Arc;

use crate::table::{RibEvent, RibTable};

/// A sealed point-in-time snapshot: the restartable artifact.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The instant the snapshot reflects (contains events with
    /// `time < at`).
    pub at: u64,
    frame: Arc<Vec<u8>>,
}

impl Snapshot {
    /// Seal a table's state as of `at`.
    pub fn seal(at: u64, table: &RibTable) -> Self {
        Snapshot {
            at,
            frame: Arc::new(table.seal()),
        }
    }

    /// Wrap an already-sealed frame (e.g. read back from disk).
    pub fn from_frame(at: u64, frame: Vec<u8>) -> Self {
        Snapshot {
            at,
            frame: Arc::new(frame),
        }
    }

    /// The sealed frame bytes (length-prefixed, checksummed).
    pub fn frame(&self) -> &[u8] {
        &self.frame
    }

    /// Open the frame back into a table, rejecting torn writes.
    pub fn table(&self) -> Result<RibTable, String> {
        RibTable::unseal(&self.frame)
    }
}

/// Where folded RIB state lives: the one surface both producers
/// (historical fold, live plugin) and consumers ([`RibQuery`]) share.
///
/// In-memory today ([`MemoryRibStore`]); the trait is deliberately
/// small and object-safe so a served backend (the broker re-exporting
/// a store over its wire protocol) can slot in later.
///
/// [`RibQuery`]: crate::RibQuery
pub trait RibStore: Send + Sync {
    /// Folds are complete for every instant strictly below this.
    /// `0` means nothing has been published yet.
    fn watermark(&self) -> u64;

    /// Publish one closed bin: the journal events since the previous
    /// publish, an optional snapshot sealed at `upto`, and the new
    /// watermark. Returns `false` (dropping the whole publication)
    /// unless `upto` advances the watermark — see the module docs on
    /// idempotent crash-replay.
    fn publish(&self, upto: u64, events: Vec<RibEvent>, snapshot: Option<Snapshot>) -> bool;

    /// The latest snapshot with `at ≤ t`, if any.
    fn snapshot_at(&self, t: u64) -> Option<Snapshot>;

    /// Journal events with `from ≤ time ≤ to`, in stream order.
    fn events_in(&self, from: u64, to: u64) -> Vec<RibEvent>;

    /// Total journal length (diagnostics).
    fn event_count(&self) -> usize;

    /// Number of sealed snapshots held (diagnostics).
    fn snapshot_count(&self) -> usize;
}

struct StoreInner {
    watermark: u64,
    /// Journal in stream order; event times are monotone because the
    /// producing stream is time-sorted.
    events: Vec<RibEvent>,
    /// Ascending by `at`.
    snapshots: Vec<Snapshot>,
}

/// The in-memory [`RibStore`] backend.
pub struct MemoryRibStore {
    inner: bsync::Mutex<StoreInner>,
}

impl MemoryRibStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryRibStore {
            inner: bsync::Mutex::new(StoreInner {
                watermark: 0,
                events: Vec::new(),
                snapshots: Vec::new(),
            }),
        }
    }

    /// An empty store behind the shared handle producers and
    /// consumers both hold.
    pub fn shared() -> Arc<Self> {
        Arc::new(MemoryRibStore::new())
    }
}

impl Default for MemoryRibStore {
    fn default() -> Self {
        MemoryRibStore::new()
    }
}

impl RibStore for MemoryRibStore {
    fn watermark(&self) -> u64 {
        self.inner.lock().watermark
    }

    fn publish(&self, upto: u64, events: Vec<RibEvent>, snapshot: Option<Snapshot>) -> bool {
        let mut inner = self.inner.lock();
        if upto <= inner.watermark {
            return false;
        }
        inner.events.extend(events);
        if let Some(snap) = snapshot {
            inner.snapshots.push(snap);
        }
        inner.watermark = upto;
        true
    }

    fn snapshot_at(&self, t: u64) -> Option<Snapshot> {
        let inner = self.inner.lock();
        let idx = inner.snapshots.partition_point(|s| s.at <= t);
        if idx == 0 {
            None
        } else {
            Some(inner.snapshots[idx - 1].clone())
        }
    }

    fn events_in(&self, from: u64, to: u64) -> Vec<RibEvent> {
        let inner = self.inner.lock();
        let lo = inner.events.partition_point(|e| e.time < from);
        let hi = inner.events.partition_point(|e| e.time <= to);
        inner.events[lo..hi].to_vec()
    }

    fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    fn snapshot_count(&self) -> usize {
        self.inner.lock().snapshots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RibAction;
    use bgp_types::Asn;

    fn ev(time: u64) -> RibEvent {
        RibEvent {
            time,
            collector: "rrc00".into(),
            peer: "10.0.0.9".parse().unwrap(),
            peer_asn: Asn(65001),
            action: RibAction::PeerUp,
        }
    }

    #[test]
    fn publish_advances_watermark_and_is_idempotent() {
        let store = MemoryRibStore::new();
        assert_eq!(store.watermark(), 0);
        assert!(store.publish(100, vec![ev(10), ev(50)], None));
        assert_eq!(store.watermark(), 100);
        assert_eq!(store.event_count(), 2);
        // Replay of an already-published bin is dropped whole.
        assert!(!store.publish(100, vec![ev(10), ev(50)], None));
        assert!(!store.publish(40, vec![ev(10)], None));
        assert_eq!(store.event_count(), 2);
        assert!(store.publish(200, vec![ev(150)], None));
        assert_eq!(store.event_count(), 3);
    }

    #[test]
    fn events_in_is_inclusive_both_ends() {
        let store = MemoryRibStore::new();
        store.publish(100, vec![ev(10), ev(20), ev(30)], None);
        let times = |from, to| {
            store
                .events_in(from, to)
                .iter()
                .map(|e| e.time)
                .collect::<Vec<_>>()
        };
        assert_eq!(times(10, 30), vec![10, 20, 30]);
        assert_eq!(times(11, 29), vec![20]);
        assert_eq!(times(0, 9), Vec::<u64>::new());
        assert_eq!(times(20, 20), vec![20]);
    }

    #[test]
    fn snapshot_at_picks_latest_not_after() {
        let store = MemoryRibStore::new();
        let table = RibTable::new();
        store.publish(100, vec![], Some(Snapshot::seal(100, &table)));
        store.publish(200, vec![], Some(Snapshot::seal(200, &table)));
        assert!(store.snapshot_at(99).is_none());
        assert_eq!(store.snapshot_at(100).map(|s| s.at), Some(100));
        assert_eq!(store.snapshot_at(199).map(|s| s.at), Some(100));
        assert_eq!(store.snapshot_at(500).map(|s| s.at), Some(200));
        assert_eq!(store.snapshot_count(), 2);
        assert!(store.snapshot_at(500).unwrap().table().is_ok());
    }
}
