//! `RibQuery` — the one consumer-facing query surface over a
//! [`RibStore`].
//!
//! A query is a builder: pick an instant ([`at`](RibQuery::at),
//! default = latest complete) or a range
//! ([`history`](RibQuery::history)), narrow by
//! [`prefix`](RibQuery::prefix) / [`origin_asn`](RibQuery::origin_asn)
//! / [`peer`](RibQuery::peer) / [`collector`](RibQuery::collector),
//! then resolve: [`table`](RibQuery::table) materializes the routing
//! table *as of* the instant (time-travel), [`events`](RibQuery::events)
//! returns the journal slice (what changed, when). Resolution is
//! O(snapshot + delta): restore the latest sealed snapshot at or
//! before the instant, replay the journal tail through the same
//! transition function the fold used.

use std::fmt;
use std::net::IpAddr;

use bgp_types::trie::PrefixMatch;
use bgp_types::{Asn, Prefix};

use crate::store::RibStore;
use crate::table::{RibAction, RibEvent, RibTable, TableView};

/// Why a query could not resolve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RibError {
    /// The requested instant is at or past the fold watermark — the
    /// RIB is not yet complete there. Retry later (live) or lower `T`.
    BeyondWatermark {
        /// The instant asked for.
        requested: u64,
        /// Folds are complete strictly below this.
        watermark: u64,
    },
    /// Nothing has been folded into the store yet.
    EmptyStore,
    /// [`events`](RibQuery::events) needs a
    /// [`history`](RibQuery::history) range.
    MissingHistoryRange,
    /// A stored snapshot failed to open (torn write, version skew).
    Corrupt(String),
}

impl fmt::Display for RibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibError::BeyondWatermark {
                requested,
                watermark,
            } => write!(
                f,
                "instant {requested} is beyond the RIB watermark (complete below {watermark})"
            ),
            RibError::EmptyStore => write!(f, "the RIB store holds no folded state yet"),
            RibError::MissingHistoryRange => {
                write!(f, "events() needs a history(from, to) range")
            }
            RibError::Corrupt(msg) => write!(f, "corrupt RIB artifact: {msg}"),
        }
    }
}

impl std::error::Error for RibError {}

/// A time-travel query over reconstructed RIB state. See the module
/// docs; construction is `RibQuery::new()` plus chained narrowing.
#[derive(Clone, Debug, Default)]
pub struct RibQuery {
    at: Option<u64>,
    history: Option<(u64, u64)>,
    prefix: Option<(Prefix, PrefixMatch)>,
    origin: Option<Asn>,
    peer: Option<IpAddr>,
    collector: Option<String>,
}

impl RibQuery {
    /// An unconstrained query (resolves the full latest table).
    pub fn new() -> Self {
        RibQuery::default()
    }

    /// Resolve the table as of instant `t` (must be below the store
    /// watermark). Without this, [`table`](RibQuery::table) resolves
    /// the latest complete instant.
    pub fn at(mut self, t: u64) -> Self {
        self.at = Some(t);
        self
    }

    /// Select the journal range `[from, to]` (inclusive) for
    /// [`events`](RibQuery::events).
    pub fn history(mut self, from: u64, to: u64) -> Self {
        self.history = Some((from, to));
        self
    }

    /// Keep only this exact prefix.
    pub fn prefix(self, prefix: Prefix) -> Self {
        self.prefix_matching(prefix, PrefixMatch::Exact)
    }

    /// Keep prefixes related to `prefix` under `mode` (the four
    /// filter-language match modes: exact, more-specific,
    /// less-specific, any overlap).
    pub fn prefix_matching(mut self, prefix: Prefix, mode: PrefixMatch) -> Self {
        self.prefix = Some((prefix, mode));
        self
    }

    /// Keep only routes originated by this AS.
    pub fn origin_asn(mut self, asn: Asn) -> Self {
        self.origin = Some(asn);
        self
    }

    /// Keep only this vantage point's Loc-RIB.
    pub fn peer(mut self, peer: IpAddr) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Keep only vantage points of this collector.
    pub fn collector(mut self, name: impl Into<String>) -> Self {
        self.collector = Some(name.into());
        self
    }

    /// Materialize the routing table as of the queried instant:
    /// latest snapshot `S ≤ T`, journal replay of `[S, T]`, canonical
    /// row order, then the query's narrowing filters.
    pub fn table(&self, store: &dyn RibStore) -> Result<TableView, RibError> {
        let watermark = store.watermark();
        if watermark == 0 {
            return Err(RibError::EmptyStore);
        }
        let at = self.at.unwrap_or(watermark - 1);
        if at >= watermark {
            return Err(RibError::BeyondWatermark {
                requested: at,
                watermark,
            });
        }
        let (mut table, from) = match store.snapshot_at(at) {
            Some(snap) => (snap.table().map_err(RibError::Corrupt)?, snap.at),
            None => (RibTable::new(), 0),
        };
        // The snapshot holds events with time < from; the journal
        // tail [from, at] is exactly what is missing.
        for ev in store.events_in(from, at) {
            table.apply(&ev);
        }
        let mut view = table.view(at);
        view.rows.retain(|row| {
            self.matches_meta(&row.collector, &row.peer)
                && self.matches_prefix(&row.prefix)
                && self
                    .origin
                    .is_none_or(|o| row.route.origin_asn() == Some(o))
        });
        Ok(view)
    }

    /// The journal slice for the [`history`](RibQuery::history)
    /// range, narrowed by the query's filters.
    pub fn events(&self, store: &dyn RibStore) -> Result<Vec<RibEvent>, RibError> {
        let (from, to) = self.history.ok_or(RibError::MissingHistoryRange)?;
        let watermark = store.watermark();
        if watermark == 0 {
            return Err(RibError::EmptyStore);
        }
        if to >= watermark {
            return Err(RibError::BeyondWatermark {
                requested: to,
                watermark,
            });
        }
        Ok(store
            .events_in(from, to)
            .into_iter()
            .filter(|ev| self.matches_event(ev))
            .collect())
    }

    fn matches_meta(&self, collector: &str, peer: &IpAddr) -> bool {
        self.collector.as_deref().is_none_or(|c| c == collector)
            && self.peer.is_none_or(|p| p == *peer)
    }

    fn matches_prefix(&self, prefix: &Prefix) -> bool {
        let Some((f, mode)) = &self.prefix else {
            return true;
        };
        match mode {
            PrefixMatch::Exact => f == prefix,
            PrefixMatch::MoreSpecific => f.contains(prefix),
            PrefixMatch::LessSpecific => prefix.contains(f),
            PrefixMatch::Any => f.overlaps(prefix),
        }
    }

    fn matches_event(&self, ev: &RibEvent) -> bool {
        if !self.matches_meta(&ev.collector, &ev.peer) {
            return false;
        }
        match ev.prefix() {
            Some(p) => {
                if !self.matches_prefix(p) {
                    return false;
                }
            }
            // Session events carry no prefix: they pass only when the
            // query does not narrow by prefix or origin.
            None => {
                if self.prefix.is_some() || self.origin.is_some() {
                    return false;
                }
            }
        }
        if let Some(origin) = self.origin {
            // Only announcements carry an origin; withdrawals are
            // excluded from origin-narrowed histories.
            let RibAction::Announce { route, .. } = &ev.action else {
                return false;
            };
            if route.origin_asn() != Some(origin) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemoryRibStore, Snapshot};
    use crate::table::{RibAction, RibRoute};
    use bgp_types::AsPath;
    use std::sync::Arc;

    fn announce(
        time: u64,
        collector: &str,
        peer: &str,
        asn: u32,
        prefix: &str,
        path: &[u32],
    ) -> RibEvent {
        RibEvent {
            time,
            collector: collector.into(),
            peer: peer.parse().unwrap(),
            peer_asn: Asn(asn),
            action: RibAction::Announce {
                prefix: prefix.parse().unwrap(),
                route: RibRoute {
                    path: Some(AsPath::from_sequence(path.iter().copied())),
                    next_hop: None,
                    communities: Default::default(),
                    updated_at: time,
                },
            },
        }
    }

    fn withdraw(time: u64, collector: &str, peer: &str, asn: u32, prefix: &str) -> RibEvent {
        RibEvent {
            time,
            collector: collector.into(),
            peer: peer.parse().unwrap(),
            peer_asn: Asn(asn),
            action: RibAction::Withdraw {
                prefix: prefix.parse().unwrap(),
            },
        }
    }

    fn seeded_store() -> Arc<MemoryRibStore> {
        let store = MemoryRibStore::shared();
        store.publish(
            100,
            vec![
                announce(10, "rrc00", "10.0.0.9", 65001, "1.0.0.0/8", &[65001, 20]),
                announce(20, "rrc00", "10.0.0.9", 65001, "2.0.0.0/8", &[65001, 30]),
                announce(
                    30,
                    "route-views2",
                    "10.0.1.9",
                    65002,
                    "1.0.0.0/8",
                    &[65002, 99],
                ),
            ],
            None,
        );
        store.publish(
            200,
            vec![withdraw(150, "rrc00", "10.0.0.9", 65001, "2.0.0.0/8")],
            None,
        );
        store
    }

    #[test]
    fn time_travel_sees_state_as_of_the_instant() {
        let store = seeded_store();
        let before = RibQuery::new().at(149).table(&*store).unwrap();
        assert_eq!(before.len(), 3);
        let after = RibQuery::new().at(199).table(&*store).unwrap();
        assert_eq!(after.len(), 2);
        // Default instant = latest complete.
        let latest = RibQuery::new().table(&*store).unwrap();
        assert_eq!(latest.at, 199);
        assert_eq!(latest.encode(), after.encode());
    }

    #[test]
    fn narrowing_filters_compose() {
        let store = seeded_store();
        let q = RibQuery::new().at(149).prefix("1.0.0.0/8".parse().unwrap());
        let view = q.table(&*store).unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view.origin_asns(), vec![Asn(20), Asn(99)]);
        let one = RibQuery::new()
            .at(149)
            .prefix("1.0.0.0/8".parse().unwrap())
            .collector("rrc00")
            .table(&*store)
            .unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.rows[0].peer_asn, Asn(65001));
        let origin = RibQuery::new()
            .at(149)
            .origin_asn(Asn(99))
            .table(&*store)
            .unwrap();
        assert_eq!(origin.len(), 1);
        let peered = RibQuery::new()
            .at(149)
            .peer("10.0.1.9".parse().unwrap())
            .table(&*store)
            .unwrap();
        assert_eq!(peered.len(), 1);
    }

    #[test]
    fn watermark_is_enforced() {
        let store = seeded_store();
        assert_eq!(
            RibQuery::new().at(200).table(&*store),
            Err(RibError::BeyondWatermark {
                requested: 200,
                watermark: 200
            })
        );
        assert!(RibQuery::new().at(199).table(&*store).is_ok());
        let empty = MemoryRibStore::new();
        assert_eq!(RibQuery::new().table(&empty), Err(RibError::EmptyStore));
    }

    #[test]
    fn history_mode_slices_and_filters_the_journal() {
        let store = seeded_store();
        assert_eq!(
            RibQuery::new().events(&*store),
            Err(RibError::MissingHistoryRange)
        );
        let all = RibQuery::new().history(0, 199).events(&*store).unwrap();
        assert_eq!(all.len(), 4);
        let pfx = RibQuery::new()
            .history(0, 199)
            .prefix("2.0.0.0/8".parse().unwrap())
            .events(&*store)
            .unwrap();
        assert_eq!(pfx.len(), 2);
        assert!(matches!(pfx[1].action, RibAction::Withdraw { .. }));
        let origin = RibQuery::new()
            .history(0, 199)
            .origin_asn(Asn(99))
            .events(&*store)
            .unwrap();
        assert_eq!(origin.len(), 1);
        assert_eq!(
            RibQuery::new().history(0, 200).events(&*store),
            Err(RibError::BeyondWatermark {
                requested: 200,
                watermark: 200
            })
        );
    }

    #[test]
    fn snapshot_plus_delta_equals_full_replay() {
        let store = seeded_store();
        // Manually seal a snapshot at 100 (events < 100) and verify
        // at(199) resolves identically with and without it.
        let full = RibQuery::new().at(199).table(&*store).unwrap();
        let mut table = RibTable::new();
        for ev in store.events_in(0, 99) {
            table.apply(&ev);
        }
        let snapped = MemoryRibStore::new();
        snapped.publish(
            100,
            store.events_in(0, 99),
            Some(Snapshot::seal(100, &table)),
        );
        snapped.publish(200, store.events_in(100, 199), None);
        let via_snapshot = RibQuery::new().at(199).table(&snapped).unwrap();
        assert_eq!(via_snapshot.encode(), full.encode());
    }
}
