//! The Loc-RIB table: per-(collector, peer) routing state, the event
//! vocabulary that mutates it, and its canonical serialization.
//!
//! One [`RibTable`] holds the reconstructed Loc-RIB of every vantage
//! point the stream has shown: for each `(collector, peer)` pair a
//! [`LocRib`] maps announced prefixes to their selected route.
//! Mutation happens exclusively through [`RibTable::apply`] on a
//! [`RibEvent`] — the same transition function runs under the
//! historical fold, the live plugin, and query-time delta replay,
//! which is what makes snapshot+delta resolution byte-identical to a
//! full replay.
//!
//! Serialization is canonical: peers sort by `(collector name, peer
//! address)`, routes by prefix, so two tables holding the same routes
//! encode to the same bytes no matter what order events arrived in or
//! how collector ids were interned.

use std::net::IpAddr;
use std::sync::Arc;

use bgp_types::{AsPath, Asn, Community, CommunitySet, Prefix};
use bgpstream::codec::{
    get_ip, get_prefix, get_route, ip_sort_key, open_frame, prefix_sort_key, put_ip, put_prefix,
    put_route, seal_frame,
};
use bytes::{Buf, BufMut, BytesMut};
use fxhash::FxHashMap;

/// Table serialization format version.
const TABLE_VERSION: u8 = 1;

/// One selected route as held in a peer's Loc-RIB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibRoute {
    /// AS path of the selected route (absent on malformed originals).
    pub path: Option<AsPath>,
    /// Next hop, when the elem carried one.
    pub next_hop: Option<IpAddr>,
    /// Communities attached to the route.
    pub communities: CommunitySet,
    /// Timestamp of the elem that last announced/refreshed the route.
    pub updated_at: u64,
}

impl RibRoute {
    /// Origin AS of the path, if determinable.
    pub fn origin_asn(&self) -> Option<Asn> {
        self.path.as_ref().and_then(|p| p.origin())
    }
}

/// What a [`RibEvent`] does to its peer's Loc-RIB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RibAction {
    /// Install (or implicitly replace) the route for a prefix. Both
    /// RIB-dump rows (bootstrap) and announcements fold to this.
    Announce {
        /// The announced prefix.
        prefix: Prefix,
        /// The selected route.
        route: RibRoute,
    },
    /// Remove the route for a prefix (no-op when absent).
    Withdraw {
        /// The withdrawn prefix.
        prefix: Prefix,
    },
    /// The peer session reached Established.
    PeerUp,
    /// The peer session left Established: the peer's table is cleared
    /// (routes learned from a down session are stale by definition).
    PeerDown,
}

/// One entry of the RIB journal: a timestamped state transition of a
/// single `(collector, peer)` Loc-RIB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibEvent {
    /// Elem timestamp (the sorted stream makes these monotone).
    pub time: u64,
    /// Collector the vantage point peers with.
    pub collector: Arc<str>,
    /// Vantage-point address.
    pub peer: IpAddr,
    /// Vantage-point AS number.
    pub peer_asn: Asn,
    /// The transition.
    pub action: RibAction,
}

impl RibEvent {
    /// The prefix the event touches, when it touches one.
    pub fn prefix(&self) -> Option<&Prefix> {
        match &self.action {
            RibAction::Announce { prefix, .. } | RibAction::Withdraw { prefix } => Some(prefix),
            RibAction::PeerUp | RibAction::PeerDown => None,
        }
    }

    /// Append the wire form to `out` (used by fold checkpoints).
    pub fn encode_into(&self, out: &mut BytesMut) {
        let kind: u8 = match &self.action {
            RibAction::Announce { .. } => 0,
            RibAction::Withdraw { .. } => 1,
            RibAction::PeerUp => 2,
            RibAction::PeerDown => 3,
        };
        out.put_u8(kind);
        out.put_u64(self.time);
        out.put_u16(self.collector.len() as u16);
        out.put_slice(self.collector.as_bytes());
        put_ip(out, &self.peer);
        out.put_u32(self.peer_asn.0);
        match &self.action {
            RibAction::Announce { prefix, route } => {
                put_prefix(out, prefix);
                put_rib_route(out, route);
            }
            RibAction::Withdraw { prefix } => put_prefix(out, prefix),
            RibAction::PeerUp | RibAction::PeerDown => {}
        }
    }

    /// Decode one event, advancing `buf` past it.
    pub fn decode(buf: &mut &[u8]) -> Result<RibEvent, String> {
        if buf.len() < 1 + 8 + 2 {
            return Err("truncated rib event header".into());
        }
        let kind = buf.get_u8();
        let time = buf.get_u64();
        let name_len = buf.get_u16() as usize;
        if buf.len() < name_len {
            return Err("truncated rib event collector".into());
        }
        let collector: Arc<str> = String::from_utf8_lossy(&buf[..name_len])
            .into_owned()
            .into();
        buf.advance(name_len);
        let peer = get_ip(buf)?;
        if buf.len() < 4 {
            return Err("truncated rib event peer asn".into());
        }
        let peer_asn = Asn(buf.get_u32());
        let action = match kind {
            0 => RibAction::Announce {
                prefix: get_prefix(buf)?,
                route: get_rib_route(buf)?,
            },
            1 => RibAction::Withdraw {
                prefix: get_prefix(buf)?,
            },
            2 => RibAction::PeerUp,
            3 => RibAction::PeerDown,
            k => return Err(format!("unknown rib event kind {k}")),
        };
        Ok(RibEvent {
            time,
            collector,
            peer,
            peer_asn,
            action,
        })
    }
}

/// Append a route's wire form to `out`.
fn put_rib_route(out: &mut BytesMut, route: &RibRoute) {
    put_route(out, &route.path);
    match &route.next_hop {
        Some(ip) => {
            out.put_u8(1);
            put_ip(out, ip);
        }
        None => out.put_u8(0),
    }
    out.put_u16(route.communities.len() as u16);
    for c in route.communities.iter() {
        out.put_u16(c.asn);
        out.put_u16(c.value);
    }
    out.put_u64(route.updated_at);
}

/// Decode a [`put_rib_route`] route, advancing `buf` past it.
fn get_rib_route(buf: &mut &[u8]) -> Result<RibRoute, String> {
    let path = get_route(buf)?;
    if buf.is_empty() {
        return Err("truncated route next-hop flag".into());
    }
    let next_hop = if buf.get_u8() == 1 {
        Some(get_ip(buf)?)
    } else {
        None
    };
    if buf.len() < 2 {
        return Err("truncated route community count".into());
    }
    let n = buf.get_u16() as usize;
    if buf.len() < n * 4 {
        return Err("truncated route communities".into());
    }
    let mut comms = Vec::with_capacity(n);
    for _ in 0..n {
        let asn = buf.get_u16();
        let value = buf.get_u16();
        comms.push(Community { asn, value });
    }
    if buf.len() < 8 {
        return Err("truncated route timestamp".into());
    }
    Ok(RibRoute {
        path,
        next_hop,
        communities: CommunitySet::from_iter(comms),
        updated_at: buf.get_u64(),
    })
}

/// One vantage point's reconstructed Loc-RIB.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocRib {
    /// The vantage point's AS number (latest seen).
    pub peer_asn: Asn,
    /// Whether the session is believed Established. Routes imply up;
    /// a `PeerDown` clears the table until the next up/announce.
    pub up: bool,
    routes: FxHashMap<Prefix, RibRoute>,
}

impl LocRib {
    fn new(peer_asn: Asn) -> Self {
        LocRib {
            peer_asn,
            up: true,
            routes: FxHashMap::default(),
        }
    }

    /// Number of installed routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// The installed route for a prefix, if any.
    pub fn route(&self, prefix: &Prefix) -> Option<&RibRoute> {
        self.routes.get(prefix)
    }

    /// Iterate installed `(prefix, route)` pairs (hash order).
    pub fn routes(&self) -> impl Iterator<Item = (&Prefix, &RibRoute)> {
        self.routes.iter()
    }
}

/// The full reconstructed state: every `(collector, peer)` Loc-RIB.
///
/// Collector names are interned to a `u16` id so per-event lookups
/// hash a `(u16, IpAddr)` key instead of a string. Ids never appear
/// in the canonical serialization (sections sort by *name*), so two
/// tables that interned in different orders still encode identically.
#[derive(Clone, Debug, Default)]
pub struct RibTable {
    collectors: Vec<Arc<str>>,
    ids: FxHashMap<Arc<str>, u16>,
    peers: FxHashMap<(u16, IpAddr), LocRib>,
}

impl RibTable {
    /// An empty table.
    pub fn new() -> Self {
        RibTable::default()
    }

    fn intern(&mut self, name: &Arc<str>) -> u16 {
        if let Some(&id) = self.ids.get(&**name) {
            return id;
        }
        let id = self.collectors.len() as u16;
        self.collectors.push(name.clone());
        self.ids.insert(name.clone(), id);
        id
    }

    /// Apply one journal event. The single state-transition function:
    /// fold, restore and query-time replay all route through here.
    pub fn apply(&mut self, ev: &RibEvent) {
        let cid = self.intern(&ev.collector);
        let rib = self
            .peers
            .entry((cid, ev.peer))
            .or_insert_with(|| LocRib::new(ev.peer_asn));
        rib.peer_asn = ev.peer_asn;
        match &ev.action {
            RibAction::Announce { prefix, route } => {
                rib.up = true;
                // Implicit replace: a newer selection for the same
                // prefix overwrites whatever was installed.
                rib.routes.insert(*prefix, route.clone());
            }
            RibAction::Withdraw { prefix } => {
                rib.routes.remove(prefix);
            }
            RibAction::PeerUp => rib.up = true,
            RibAction::PeerDown => {
                rib.up = false;
                rib.routes.clear();
            }
        }
    }

    /// Number of known vantage points.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Total installed routes across all vantage points.
    pub fn route_count(&self) -> usize {
        self.peers.values().map(|p| p.routes.len()).sum()
    }

    /// The Loc-RIB of one vantage point.
    pub fn loc_rib(&self, collector: &str, peer: &IpAddr) -> Option<&LocRib> {
        let id = *self.ids.get(collector)?;
        self.peers.get(&(id, *peer))
    }

    /// Materialize the canonically ordered view of the whole table.
    pub fn view(&self, at: u64) -> TableView {
        let mut rows = Vec::with_capacity(self.route_count());
        for ((cid, peer), rib) in &self.peers {
            let collector = self.collectors[*cid as usize].clone();
            for (prefix, route) in &rib.routes {
                rows.push(TableRow {
                    collector: collector.clone(),
                    peer: *peer,
                    peer_asn: rib.peer_asn,
                    prefix: *prefix,
                    route: route.clone(),
                });
            }
        }
        rows.sort_by(|a, b| {
            (
                &*a.collector,
                ip_sort_key(&a.peer),
                prefix_sort_key(&a.prefix),
            )
                .cmp(&(
                    &*b.collector,
                    ip_sort_key(&b.peer),
                    prefix_sort_key(&b.prefix),
                ))
        });
        TableView { at, rows }
    }

    /// Canonical serialization: sections sorted by `(collector name,
    /// peer address)`, routes by prefix. Intern order does not leak.
    pub fn encode(&self) -> Vec<u8> {
        let mut keys: Vec<&(u16, IpAddr)> = self.peers.keys().collect();
        keys.sort_by(|a, b| {
            (&*self.collectors[a.0 as usize], ip_sort_key(&a.1))
                .cmp(&(&*self.collectors[b.0 as usize], ip_sort_key(&b.1)))
        });
        let mut out = BytesMut::new();
        out.put_u8(TABLE_VERSION);
        out.put_u32(keys.len() as u32);
        for key in keys {
            let name = &self.collectors[key.0 as usize];
            // Present by construction: the key came out of the map.
            let Some(rib) = self.peers.get(key) else {
                continue;
            };
            out.put_u16(name.len() as u16);
            out.put_slice(name.as_bytes());
            put_ip(&mut out, &key.1);
            out.put_u32(rib.peer_asn.0);
            out.put_u8(rib.up as u8);
            let mut prefixes: Vec<&Prefix> = rib.routes.keys().collect();
            prefixes.sort_by_key(|p| prefix_sort_key(p));
            out.put_u32(prefixes.len() as u32);
            for p in prefixes {
                let Some(route) = rib.routes.get(p) else {
                    continue;
                };
                put_prefix(&mut out, p);
                put_rib_route(&mut out, route);
            }
        }
        out.to_vec()
    }

    /// Decode an [`encode`](RibTable::encode)d table.
    pub fn decode(mut buf: &[u8]) -> Result<RibTable, String> {
        if buf.len() < 5 {
            return Err("truncated rib table header".into());
        }
        let version = buf.get_u8();
        if version != TABLE_VERSION {
            return Err(format!("unsupported rib table version {version}"));
        }
        let peer_count = buf.get_u32() as usize;
        let mut table = RibTable::new();
        for _ in 0..peer_count {
            if buf.len() < 2 {
                return Err("truncated rib table collector".into());
            }
            let name_len = buf.get_u16() as usize;
            if buf.len() < name_len {
                return Err("truncated rib table collector name".into());
            }
            let name: Arc<str> = String::from_utf8_lossy(&buf[..name_len])
                .into_owned()
                .into();
            buf.advance(name_len);
            let peer = get_ip(&mut buf)?;
            if buf.len() < 4 + 1 + 4 {
                return Err("truncated rib table peer".into());
            }
            let peer_asn = Asn(buf.get_u32());
            let up = buf.get_u8() == 1;
            let route_count = buf.get_u32() as usize;
            let cid = table.intern(&name);
            let mut rib = LocRib::new(peer_asn);
            rib.up = up;
            rib.routes.reserve(route_count);
            for _ in 0..route_count {
                let prefix = get_prefix(&mut buf)?;
                let route = get_rib_route(&mut buf)?;
                rib.routes.insert(prefix, route);
            }
            table.peers.insert((cid, peer), rib);
        }
        if !buf.is_empty() {
            return Err("rib table: trailing bytes".into());
        }
        Ok(table)
    }

    /// Seal the canonical serialization into a durable checksum frame
    /// — the restartable snapshot artifact.
    pub fn seal(&self) -> Vec<u8> {
        seal_frame(&self.encode())
    }

    /// Open and decode a [`seal`](RibTable::seal)ed frame, rejecting
    /// torn writes.
    pub fn unseal(frame: &[u8]) -> Result<RibTable, String> {
        RibTable::decode(open_frame(frame)?)
    }
}

/// One row of a resolved [`TableView`]: a `(collector, peer, prefix)`
/// cell and its selected route.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableRow {
    /// Collector the vantage point peers with.
    pub collector: Arc<str>,
    /// Vantage-point address.
    pub peer: IpAddr,
    /// Vantage-point AS number.
    pub peer_asn: Asn,
    /// The prefix.
    pub prefix: Prefix,
    /// The selected route.
    pub route: RibRoute,
}

/// The routing table as of a queried instant, in canonical row order
/// `(collector, peer, prefix)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableView {
    /// The instant the view reflects.
    pub at: u64,
    /// The rows.
    pub rows: Vec<TableRow>,
}

impl TableView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no routes matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct origin ASNs across the rows, sorted — the MOAS
    /// primitive (a prefix-filtered view with ≥ 2 origins is a
    /// multi-origin prefix).
    pub fn origin_asns(&self) -> Vec<Asn> {
        let mut origins: Vec<Asn> = self
            .rows
            .iter()
            .filter_map(|r| r.route.origin_asn())
            .collect();
        origins.sort_unstable();
        origins.dedup();
        origins
    }

    /// Canonical byte encoding of the view — the artifact equivalence
    /// proofs compare (`snapshot+delta` vs full replay must match
    /// byte-for-byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        out.put_u64(self.at);
        out.put_u32(self.rows.len() as u32);
        for row in &self.rows {
            out.put_u16(row.collector.len() as u16);
            out.put_slice(row.collector.as_bytes());
            put_ip(&mut out, &row.peer);
            out.put_u32(row.peer_asn.0);
            put_prefix(&mut out, &row.prefix);
            put_rib_route(&mut out, &row.route);
        }
        out.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, collector: &str, peer: &str, asn: u32, action: RibAction) -> RibEvent {
        RibEvent {
            time,
            collector: collector.into(),
            peer: peer.parse().unwrap(),
            peer_asn: Asn(asn),
            action,
        }
    }

    fn announce(prefix: &str, path: &[u32], at: u64) -> RibAction {
        RibAction::Announce {
            prefix: prefix.parse().unwrap(),
            route: RibRoute {
                path: Some(AsPath::from_sequence(path.iter().copied())),
                next_hop: Some("10.0.0.1".parse().unwrap()),
                communities: CommunitySet::from_iter([Community {
                    asn: 64500,
                    value: 7,
                }]),
                updated_at: at,
            },
        }
    }

    #[test]
    fn announce_withdraw_replace_fold() {
        let mut t = RibTable::new();
        t.apply(&ev(
            10,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("1.0.0.0/8", &[65001, 20], 10),
        ));
        t.apply(&ev(
            11,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("2.0.0.0/8", &[65001, 30], 11),
        ));
        assert_eq!(t.route_count(), 2);
        // Implicit replace.
        t.apply(&ev(
            12,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("1.0.0.0/8", &[65001, 40], 12),
        ));
        assert_eq!(t.route_count(), 2);
        let rib = t.loc_rib("rrc00", &"10.0.0.9".parse().unwrap()).unwrap();
        let route = rib.route(&"1.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(route.origin_asn(), Some(Asn(40)));
        // Withdraw removes; unknown withdraw is a no-op.
        t.apply(&ev(
            13,
            "rrc00",
            "10.0.0.9",
            65001,
            RibAction::Withdraw {
                prefix: "2.0.0.0/8".parse().unwrap(),
            },
        ));
        t.apply(&ev(
            14,
            "rrc00",
            "10.0.0.9",
            65001,
            RibAction::Withdraw {
                prefix: "9.0.0.0/8".parse().unwrap(),
            },
        ));
        assert_eq!(t.route_count(), 1);
        // Session down clears the peer's table.
        t.apply(&ev(15, "rrc00", "10.0.0.9", 65001, RibAction::PeerDown));
        assert_eq!(t.route_count(), 0);
        assert!(!t.loc_rib("rrc00", &"10.0.0.9".parse().unwrap()).unwrap().up);
    }

    #[test]
    fn encode_is_canonical_across_intern_orders() {
        let e1 = ev(
            10,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("1.0.0.0/8", &[65001, 20], 10),
        );
        let e2 = ev(
            11,
            "route-views2",
            "2001:db8::9",
            65002,
            announce("2001:db8::/32", &[65002, 21], 11),
        );
        let mut a = RibTable::new();
        a.apply(&e1);
        a.apply(&e2);
        let mut b = RibTable::new();
        b.apply(&e2);
        b.apply(&e1);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.view(11).encode(), b.view(11).encode());
    }

    #[test]
    fn table_seal_roundtrip_rejects_torn() {
        let mut t = RibTable::new();
        t.apply(&ev(
            10,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("1.0.0.0/8", &[65001, 20], 10),
        ));
        t.apply(&ev(11, "rrc00", "10.0.0.9", 65001, RibAction::PeerUp));
        let frame = t.seal();
        let back = RibTable::unseal(&frame).unwrap();
        assert_eq!(back.encode(), t.encode());
        assert!(RibTable::unseal(&frame[..frame.len() - 2]).is_err());
        let mut flipped = frame.clone();
        flipped[9] ^= 0x10;
        assert!(RibTable::unseal(&flipped).is_err());
    }

    #[test]
    fn event_codec_roundtrip() {
        let events = vec![
            ev(
                10,
                "rrc00",
                "10.0.0.9",
                65001,
                announce("1.0.0.0/8", &[65001, 20], 10),
            ),
            ev(
                11,
                "rrc01",
                "2001:db8::9",
                65002,
                RibAction::Withdraw {
                    prefix: "2001:db8::/32".parse().unwrap(),
                },
            ),
            ev(12, "rrc02", "10.0.0.7", 65003, RibAction::PeerUp),
            ev(13, "rrc02", "10.0.0.7", 65003, RibAction::PeerDown),
        ];
        let mut out = BytesMut::new();
        for e in &events {
            e.encode_into(&mut out);
        }
        let bytes = out.to_vec();
        let mut buf = &bytes[..];
        for e in &events {
            assert_eq!(&RibEvent::decode(&mut buf).unwrap(), e);
        }
        assert!(buf.is_empty());
        assert!(RibEvent::decode(&mut buf).is_err());
    }

    #[test]
    fn moas_origins_surface_in_view() {
        let mut t = RibTable::new();
        t.apply(&ev(
            10,
            "rrc00",
            "10.0.0.9",
            65001,
            announce("1.0.0.0/8", &[65001, 20], 10),
        ));
        t.apply(&ev(
            11,
            "rrc00",
            "10.0.1.9",
            65002,
            announce("1.0.0.0/8", &[65002, 99], 11),
        ));
        let view = t.view(11);
        assert_eq!(view.len(), 2);
        assert_eq!(view.origin_asns(), vec![Asn(20), Asn(99)]);
    }
}
