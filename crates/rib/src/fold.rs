//! The RIB fold: sorted stream in, per-(collector, peer) Loc-RIB
//! state plus journal/snapshot publications out.
//!
//! [`RibFold`] is the single producer implementation behind every
//! ingestion mode: the historical driver ([`RibFold::ingest`]), the
//! live plugin (`corsaro::RibFeeder` delegates record processing and
//! bin closes here), and crash recovery (checkpoint/restore reuse the
//! sealed-frame codec, so a restored fold publishes byte-identically
//! to one that never died).
//!
//! Elems fold as the paper's case studies need them to: RIB-dump rows
//! (`DumpType::Rib` walks) bootstrap the table exactly like
//! announcements — insert with implicit replace — updates apply
//! deltas, withdrawals remove, and a session leaving Established
//! clears the peer's table. Watermark advancement is driven by bin
//! closes (historical `end_bin` or `run_live`'s broker-watermark bin
//! closes), at which point accumulated journal events — and, on the
//! configured cadence, a sealed snapshot — are published to the
//! [`RibStore`].

use std::sync::Arc;

use bgp_types::SessionState;
use bgpstream::{BgpStream, BgpStreamElem, BgpStreamRecord, ElemType};
use bytes::{Buf, BufMut, BytesMut};
use fxhash::FxHashMap;

use crate::store::{RibStore, Snapshot};
use crate::table::{RibAction, RibEvent, RibRoute, RibTable};

/// Checkpoint format version.
const FOLD_VERSION: u8 = 1;

/// Counters a fold accumulates (diagnostics; not part of state).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FoldStats {
    /// Records seen (valid or not).
    pub records: u64,
    /// Journal events emitted.
    pub events: u64,
    /// Snapshots sealed.
    pub snapshots: u64,
}

/// Folds the time-sorted stream into [`RibTable`] state and publishes
/// journal events and sealed snapshots to a [`RibStore`].
pub struct RibFold {
    table: RibTable,
    watermark: u64,
    snapshot_every: u64,
    last_snapshot_at: u64,
    pending: Vec<RibEvent>,
    store: Option<Arc<dyn RibStore>>,
    names: FxHashMap<&'static str, Arc<str>>,
    stats: FoldStats,
}

impl RibFold {
    /// A fold sealing a snapshot roughly every `snapshot_every`
    /// seconds of stream time (`0` = never snapshot). Without a
    /// [`store`](RibFold::with_store), events are folded into the
    /// table and dropped at each watermark advance.
    pub fn new(snapshot_every: u64) -> Self {
        RibFold {
            table: RibTable::new(),
            watermark: 0,
            snapshot_every,
            last_snapshot_at: 0,
            pending: Vec::new(),
            store: None,
            names: FxHashMap::default(),
            stats: FoldStats::default(),
        }
    }

    /// Attach the store publications go to.
    pub fn with_store(mut self, store: Arc<dyn RibStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<dyn RibStore>> {
        self.store.as_ref()
    }

    /// The snapshot cadence this fold was configured with.
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// The folded table (current, possibly mid-bin, state).
    pub fn table(&self) -> &RibTable {
        &self.table
    }

    /// Folds are complete for instants strictly below this.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Diagnostics counters.
    pub fn stats(&self) -> FoldStats {
        self.stats
    }

    fn collector_name(&mut self, name: &'static str) -> Arc<str> {
        self.names
            .entry(name)
            .or_insert_with(|| Arc::<str>::from(name))
            .clone()
    }

    /// Fold one record of the sorted stream.
    pub fn apply_record(&mut self, record: &BgpStreamRecord) {
        self.stats.records += 1;
        if !record.status.is_valid() {
            return;
        }
        let collector = self.collector_name(record.collector());
        for elem in record.elems() {
            self.apply_elem(&collector, elem);
        }
    }

    /// Fold one elem (the record path resolves the collector name
    /// once per record and calls this per elem).
    pub fn apply_elem(&mut self, collector: &Arc<str>, elem: &BgpStreamElem) {
        let action = match elem.elem_type {
            // RIB-dump bootstrap rows and announcements fold the same
            // way: install with implicit replace.
            ElemType::RibEntry | ElemType::Announcement => {
                let Some(prefix) = elem.prefix else { return };
                RibAction::Announce {
                    prefix,
                    route: RibRoute {
                        path: elem.as_path.clone(),
                        next_hop: elem.next_hop,
                        communities: elem.communities.clone().unwrap_or_default(),
                        updated_at: elem.time,
                    },
                }
            }
            ElemType::Withdrawal => {
                let Some(prefix) = elem.prefix else { return };
                RibAction::Withdraw { prefix }
            }
            ElemType::PeerState => {
                if elem.new_state == Some(SessionState::Established) {
                    RibAction::PeerUp
                } else {
                    RibAction::PeerDown
                }
            }
        };
        let ev = RibEvent {
            time: elem.time,
            collector: collector.clone(),
            peer: elem.peer_address,
            peer_asn: elem.peer_asn,
            action,
        };
        self.table.apply(&ev);
        self.stats.events += 1;
        self.pending.push(ev);
    }

    /// Advance the watermark to `t` (a closed bin's end): publish the
    /// accumulated journal events and, when the snapshot cadence has
    /// elapsed, a snapshot sealed at `t`. No-op unless `t` advances.
    pub fn advance_watermark(&mut self, t: u64) {
        if t <= self.watermark {
            // A bin at or below the watermark is a post-restore
            // replay: whatever was re-folded for it is already in the
            // store, and must not leak into the next publication.
            self.pending.clear();
            return;
        }
        self.watermark = t;
        let snapshot = if self.snapshot_every > 0
            && t >= self.last_snapshot_at.saturating_add(self.snapshot_every)
        {
            self.last_snapshot_at = t;
            self.stats.snapshots += 1;
            Some(Snapshot::seal(t, &self.table))
        } else {
            None
        };
        let events = std::mem::take(&mut self.pending);
        if let Some(store) = &self.store {
            store.publish(t, events, snapshot);
        }
    }

    /// Mark the stream exhausted: every instant is now final. Called
    /// by historical drivers after the last record; live folds never
    /// finish. Publishes any pending events, seals no snapshot.
    pub fn finish(&mut self) {
        if self.watermark == u64::MAX {
            return;
        }
        self.watermark = u64::MAX;
        let events = std::mem::take(&mut self.pending);
        if let Some(store) = &self.store {
            store.publish(u64::MAX, events, None);
        }
    }

    /// Drive a historical stream to exhaustion, closing `bin_size`
    /// bins exactly like the plugin runtime does (aligned to
    /// `timestamp - timestamp % bin_size`; every elapsed bin closes,
    /// empty or not, before the record that outlived it folds) and
    /// finishing at stream end. Returns the fold's counters.
    pub fn ingest(&mut self, stream: &mut BgpStream, bin_size: u64) -> FoldStats {
        let bin_size = bin_size.max(1);
        let mut bin_end: Option<u64> = None;
        while let Some(record) = stream.next_record() {
            let t = record.timestamp;
            match bin_end {
                None => bin_end = Some(t - t % bin_size + bin_size),
                Some(mut e) => {
                    while t >= e {
                        self.advance_watermark(e);
                        e += bin_size;
                    }
                    bin_end = Some(e);
                }
            }
            self.apply_record(&record);
        }
        if let Some(e) = bin_end {
            self.advance_watermark(e);
        }
        self.finish();
        self.stats
    }

    /// Serialize the fold's full state as a sealed checkpoint frame.
    /// Canonical: two folds that processed the same records produce
    /// identical frames regardless of restore history.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        out.put_u8(FOLD_VERSION);
        out.put_u64(self.watermark);
        out.put_u64(self.snapshot_every);
        out.put_u64(self.last_snapshot_at);
        let table = self.table.encode();
        out.put_u32(table.len() as u32);
        out.put_slice(&table);
        out.put_u32(self.pending.len() as u32);
        for ev in &self.pending {
            ev.encode_into(&mut out);
        }
        bgpstream::codec::seal_frame(&out)
    }

    /// Restore from a [`checkpoint`](RibFold::checkpoint) frame. The
    /// store handle is kept; everything else — table, watermark,
    /// snapshot cadence and phase, pending events — comes from the
    /// frame, so post-restore publications line up with pre-crash
    /// ones.
    pub fn restore(&mut self, frame: &[u8]) -> Result<(), String> {
        let payload = bgpstream::codec::open_frame(frame)?;
        let mut buf = payload;
        if buf.len() < 1 + 8 + 8 + 8 + 4 {
            return Err("rib fold checkpoint truncated".into());
        }
        let version = buf.get_u8();
        if version != FOLD_VERSION {
            return Err(format!("unsupported rib fold checkpoint version {version}"));
        }
        let watermark = buf.get_u64();
        let snapshot_every = buf.get_u64();
        let last_snapshot_at = buf.get_u64();
        let table_len = buf.get_u32() as usize;
        if buf.len() < table_len {
            return Err("rib fold checkpoint: truncated table".into());
        }
        let table = RibTable::decode(&buf[..table_len])?;
        buf.advance(table_len);
        if buf.len() < 4 {
            return Err("rib fold checkpoint: truncated pending count".into());
        }
        let pending_count = buf.get_u32() as usize;
        let mut pending = Vec::with_capacity(pending_count.min(1 << 20));
        for _ in 0..pending_count {
            pending.push(RibEvent::decode(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err("rib fold checkpoint: trailing bytes".into());
        }
        self.table = table;
        self.watermark = watermark;
        self.snapshot_every = snapshot_every;
        self.last_snapshot_at = last_snapshot_at;
        self.pending = pending;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryRibStore;
    use bgp_types::Asn;

    fn elem(time: u64, ty: ElemType, prefix: Option<&str>) -> BgpStreamElem {
        BgpStreamElem {
            elem_type: ty,
            time,
            peer_address: "10.0.0.9".parse().unwrap(),
            peer_asn: Asn(65001),
            prefix: prefix.map(|p| p.parse().unwrap()),
            next_hop: None,
            as_path: Some(bgp_types::AsPath::from_sequence([65001, 7])),
            communities: None,
            old_state: None,
            new_state: None,
        }
    }

    #[test]
    fn watermark_publishes_pending_and_snapshots_on_cadence() {
        let store = MemoryRibStore::shared();
        let mut fold = RibFold::new(200).with_store(store.clone());
        let c: Arc<str> = "rrc00".into();
        fold.apply_elem(&c, &elem(10, ElemType::Announcement, Some("1.0.0.0/8")));
        fold.advance_watermark(100);
        use crate::store::RibStore as _;
        assert_eq!(store.watermark(), 100);
        assert_eq!(store.event_count(), 1);
        assert_eq!(store.snapshot_count(), 0);
        fold.apply_elem(&c, &elem(150, ElemType::Announcement, Some("2.0.0.0/8")));
        fold.advance_watermark(200);
        assert_eq!(store.snapshot_count(), 1);
        // Regressions are no-ops.
        fold.advance_watermark(50);
        assert_eq!(store.watermark(), 200);
        fold.finish();
        assert_eq!(store.watermark(), u64::MAX);
    }

    #[test]
    fn checkpoint_restore_roundtrips_full_state() {
        let mut fold = RibFold::new(300);
        let c: Arc<str> = "rrc00".into();
        fold.apply_elem(&c, &elem(10, ElemType::Announcement, Some("1.0.0.0/8")));
        fold.advance_watermark(100);
        fold.apply_elem(&c, &elem(150, ElemType::Announcement, Some("2.0.0.0/8")));
        // Mid-bin: one pending event.
        let frame = fold.checkpoint();
        let mut back = RibFold::new(0);
        back.restore(&frame).unwrap();
        assert_eq!(back.watermark(), 100);
        assert_eq!(back.snapshot_every(), 300);
        assert_eq!(back.table().encode(), fold.table().encode());
        assert_eq!(back.checkpoint(), frame);
        assert!(back.restore(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn invalid_records_and_pathless_prefixes_are_skipped() {
        let mut fold = RibFold::new(0);
        let c: Arc<str> = "rrc00".into();
        // No prefix on an announcement: skipped.
        fold.apply_elem(&c, &elem(10, ElemType::Announcement, None));
        assert_eq!(fold.stats().events, 0);
        // State change to non-established clears.
        fold.apply_elem(&c, &elem(10, ElemType::Announcement, Some("1.0.0.0/8")));
        let mut down = elem(11, ElemType::PeerState, None);
        down.new_state = Some(SessionState::Idle);
        fold.apply_elem(&c, &down);
        assert_eq!(fold.table().route_count(), 0);
        let mut up = elem(12, ElemType::PeerState, None);
        up.new_state = Some(SessionState::Established);
        fold.apply_elem(&c, &up);
        assert!(
            fold.table()
                .loc_rib("rrc00", &"10.0.0.9".parse().unwrap())
                .unwrap()
                .up
        );
    }
}
