//! Ground-truth consistency: the MRT RIB dumps a collector publishes
//! must agree exactly with the control plane's routes at dump time,
//! and updates dumps must replay into the same state.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use bgp_types::{AsPath, Asn, Prefix};
use broker::DumpType;
use collector_sim::{standard_collectors, SimConfig, Simulator};
use mrt::table_dump_v2::TableDumpV2;
use mrt::{MrtBody, MrtReader};
use topology::control::ControlPlane;
use topology::events::Scenario;
use topology::gen::{generate, TopologyConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-cons-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Parse one RIB dump into (peer_asn, prefix) → AS path.
fn parse_rib(path: &std::path::Path) -> HashMap<(Asn, Prefix), AsPath> {
    let bytes = std::fs::read(path).unwrap();
    let (records, err) = MrtReader::new(&bytes[..]).read_all();
    assert!(err.is_none(), "corrupt RIB: {err:?}");
    let mut pit = None;
    let mut out = HashMap::new();
    for rec in records {
        match rec.body {
            MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(t)) => pit = Some(t),
            MrtBody::TableDumpV2(TableDumpV2::RibRow(row)) => {
                let pit = pit.as_ref().expect("PIT precedes rows");
                for e in row.entries {
                    let peer = pit.peers[e.peer_index as usize];
                    out.insert((peer.asn, row.prefix), e.attrs.as_path);
                }
            }
            _ => panic!("unexpected record type in RIB dump"),
        }
    }
    out
}

#[test]
fn second_rib_matches_control_plane_after_events() {
    let topo = Arc::new(generate(&TopologyConfig::tiny(71)));
    let cp = ControlPlane::new(topo.clone(), u64::MAX);
    let specs = standard_collectors(&cp, 1, 0, 4, 1.0, 71); // RIS, all full-feed
    let vps = specs[0].vps.clone();
    let dir = tmpdir("rib");
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));

    // Stir the control plane well before the 8 h RIB.
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(10)
        .enumerate()
    {
        sc.flap(600 + 77 * k as u64, 5, 1200, n.asn, n.prefixes_v4[0].prefix);
    }
    sim.schedule(&sc);
    sim.run_until(8 * 3600 + 30);

    let rib = sim
        .manifest()
        .iter()
        .filter(|m| m.dump_type == DumpType::Rib)
        .max_by_key(|m| m.interval_start)
        .expect("a RIB was dumped")
        .clone();
    assert_eq!(rib.interval_start, 8 * 3600);
    let dumped = parse_rib(&rib.path);

    // Ground truth: every VP's route for every announced prefix.
    let cp = sim.control_plane();
    let announced = cp.announced_prefixes();
    let mut expected: HashMap<(Asn, Prefix), AsPath> = HashMap::new();
    for vp in &vps {
        for p in &announced {
            if let Some(r) = cp.route(vp.asn, p) {
                expected.insert((vp.asn, *p), r.as_path);
            }
        }
    }
    assert_eq!(
        dumped.len(),
        expected.len(),
        "RIB row-entry count diverges from ground truth"
    );
    for (key, path) in &expected {
        assert_eq!(
            dumped.get(key),
            Some(path),
            "route mismatch for VP {} prefix {}",
            key.0,
            key.1
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replaying_updates_reaches_rib_state() {
    // First RIB + all updates replayed on top must equal the second
    // RIB (this is the invariant the RT plugin depends on).
    let topo = Arc::new(generate(&TopologyConfig::tiny(72)));
    let cp = ControlPlane::new(topo.clone(), u64::MAX);
    let specs = standard_collectors(&cp, 1, 0, 3, 1.0, 72);
    let dir = tmpdir("replay");
    let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(12)
        .enumerate()
    {
        sc.flap(
            500 + 311 * k as u64,
            4,
            2000,
            n.asn,
            n.prefixes_v4[0].prefix,
        );
    }
    sim.schedule(&sc);
    sim.run_until(8 * 3600 + 30);

    let ribs: Vec<_> = sim
        .manifest()
        .iter()
        .filter(|m| m.dump_type == DumpType::Rib)
        .cloned()
        .collect();
    assert_eq!(ribs.len(), 2);
    let mut table = parse_rib(&ribs[0].path);

    let mut updates: Vec<_> = sim
        .manifest()
        .iter()
        .filter(|m| m.dump_type == DumpType::Updates)
        .cloned()
        .collect();
    updates.sort_by_key(|m| m.interval_start);
    for u in updates {
        if u.interval_start >= ribs[1].interval_start {
            break;
        }
        let bytes = std::fs::read(&u.path).unwrap();
        let (records, err) = MrtReader::new(&bytes[..]).read_all();
        assert!(err.is_none());
        for rec in records {
            if let MrtBody::Bgp4mp(mrt::Bgp4mp::Message {
                peer_asn,
                message: bgp_types::BgpMessage::Update(up),
                ..
            }) = rec.body
            {
                {
                    for w in &up.withdrawals {
                        table.remove(&(peer_asn, *w));
                    }
                    if let Some(attrs) = up.attrs {
                        for a in &up.announcements {
                            table.insert((peer_asn, *a), attrs.as_path.clone());
                        }
                    }
                }
            }
        }
    }
    let second = parse_rib(&ribs[1].path);
    assert_eq!(table.len(), second.len(), "replayed table size diverges");
    for (key, path) in &second {
        assert_eq!(table.get(key), Some(path), "replay mismatch at {key:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
