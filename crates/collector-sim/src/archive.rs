//! On-disk archive layout and manifest.
//!
//! Mirrors the directory-listing structure of the real project
//! archives: `root/<project>/<collector>/<type>/<type>.<start>.mrt`.
//! A CSV manifest (`root/manifest.csv`) indexes everything so analyses
//! can run without a live broker handle.

use std::path::{Path, PathBuf};

use broker::index::DumpMeta;
use broker::DumpType;

/// Path of a dump file inside the archive.
pub fn dump_path(
    root: &Path,
    project: &str,
    collector: &str,
    dump_type: DumpType,
    interval_start: u64,
) -> PathBuf {
    root.join(project)
        .join(collector)
        .join(dump_type.to_string())
        .join(format!("{dump_type}.{interval_start:010}.mrt"))
}

/// Write `bytes` to the archive location, creating directories.
pub fn write_dump(
    root: &Path,
    project: &str,
    collector: &str,
    dump_type: DumpType,
    interval_start: u64,
    bytes: &[u8],
) -> std::io::Result<PathBuf> {
    let path = dump_path(root, project, collector, dump_type, interval_start);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&path, bytes)?;
    Ok(path)
}

/// Write the CSV manifest for the given entries at `root/manifest.csv`.
pub fn write_manifest(root: &Path, entries: &[DumpMeta]) -> std::io::Result<PathBuf> {
    let path = root.join("manifest.csv");
    std::fs::create_dir_all(root)?;
    std::fs::write(&path, broker::interface::to_csv_manifest(entries))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_convention() {
        let p = dump_path(
            Path::new("/archive"),
            "ris",
            "rrc01",
            DumpType::Updates,
            300,
        );
        assert_eq!(
            p,
            PathBuf::from("/archive/ris/rrc01/updates/updates.0000000300.mrt")
        );
    }

    #[test]
    fn write_creates_directories() {
        let root = std::env::temp_dir().join(format!("bgpstream-arch-{}", std::process::id()));
        let p = write_dump(&root, "routeviews", "rv2", DumpType::Rib, 7200, b"xyz").unwrap();
        assert!(p.exists());
        assert_eq!(std::fs::read(&p).unwrap(), b"xyz");
        std::fs::remove_dir_all(&root).ok();
    }
}
