//! The live feeder: replays a pre-simulated archive into a broker
//! [`Index`] as a *publication process* — dump by dump, on a schedule
//! — instead of registering everything up front.
//!
//! This is the repo's stand-in for "collectors publishing to their
//! archives while the broker scrapes them", and it is what live-mode
//! CI soaks against. The feeder owns two things a passive index cannot
//! provide:
//!
//! * **fault injection at the publication layer** — extra per-dump
//!   delay jitter, collector-wide stalls, out-of-order publication,
//!   and duplicate re-publication ([`FaultPlan`]). Faults reorder
//!   *when* dumps surface, never *what* data exists: the final
//!   published archive always equals the input manifest, which is what
//!   makes live-vs-historical equivalence testable;
//! * **a truthful publication watermark** — after each publication the
//!   feeder advances [`Index::advance_watermark`] to the earliest
//!   `interval_start` still unpublished. Whatever the fault schedule
//!   does, the watermark never vouches for data that has not landed,
//!   so watermark-released live streams
//!   ([`ReleasePolicy::Watermark`](broker::ReleasePolicy::Watermark))
//!   stay byte-identical to a historical run over the final archive.
//!
//! Two driving modes:
//!
//! * [`LiveFeeder::publish_until`] — deterministic virtual-time
//!   stepping, for tests that interleave feeding with a
//!   manually-driven stream clock;
//! * [`LiveFeeder::spawn_compressed`] — a wall-clock thread mapping
//!   `speed` virtual seconds onto every wall second and driving a
//!   shared stream clock along, for soak runs against real threads.

use std::sync::Arc;

use broker::index::DumpMeta;
use broker::Index;
use bsync::atomic::{AtomicBool, Ordering};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Publication-layer fault plan (all seeded and deterministic).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Extra publication delay added to every dump, drawn uniformly
    /// from this range (virtual seconds; on top of the archive's own
    /// `available_at` delays).
    pub extra_delay: (u64, u64),
    /// Collector-wide stalls: while `(start, duration)` covers a
    /// dump's publication instant, the dump (and everything after it
    /// from the same collector) waits until the stall lifts.
    pub stalls: Vec<Stall>,
    /// Probability that a dump swaps publication order with its
    /// collector's next dump (out-of-order publication).
    pub swap_prob: f64,
    /// Probability that a published dump is re-published (identical
    /// `DumpMeta`) a little later — exercising the broker's
    /// exactly-once delivery.
    pub duplicate_prob: f64,
    /// Consumer-side crash vocabulary. The feeder itself ignores it —
    /// publication is not the crashing party — but carrying the crash
    /// schedule in the same plan keeps one seeded artifact describing
    /// the whole fault universe of a run; the supervised runtime
    /// harness translates it into its chaos injection.
    pub crash: CrashPlan,
}

/// Consumer-side crash schedule: which shard workers die, when, and
/// which checkpoint writes are torn mid-flush. Pure data (no runtime
/// dependency) so the plan stays serialisable and seedable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Worker kills, by global record index.
    pub kills: Vec<WorkerKill>,
    /// `(worker, nth_checkpoint)` pairs whose checkpoint write is torn
    /// mid-flush (truncated frame, checksum fails on read-back).
    pub torn_checkpoints: Vec<(usize, u64)>,
}

impl CrashPlan {
    /// No crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.torn_checkpoints.is_empty()
    }
}

/// One scheduled worker kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerKill {
    /// Shard worker index to kill.
    pub worker: usize,
    /// Global record index (session-wide, 0-based) whose processing
    /// the worker dies in.
    pub at_record: u64,
    /// How many times the kill re-fires after a restart: `1` is a
    /// one-off crash, larger values model a worker that keeps dying at
    /// the same record (a restart storm that eventually exhausts the
    /// retry budget).
    pub times: u32,
}

/// One collector-wide publication stall.
#[derive(Clone, Copy, Debug)]
pub struct Stall {
    /// Virtual time the publisher freezes.
    pub start: u64,
    /// How long it stays frozen.
    pub duration: u64,
    /// Index into the collector list (sorted collector names); `None`
    /// stalls every collector.
    pub collector: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            extra_delay: (0, 0),
            stalls: Vec::new(),
            swap_prob: 0.0,
            duplicate_prob: 0.0,
            crash: CrashPlan::none(),
        }
    }
}

impl FaultPlan {
    /// The benign plan: publish exactly per the archive's
    /// `available_at` times.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

/// One scheduled publication.
struct Publication {
    publish_at: u64,
    meta: DumpMeta,
    /// True for an injected duplicate re-publication.
    duplicate: bool,
}

/// Cumulative feeder statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct FeederStats {
    /// Distinct dumps published.
    pub published: u64,
    /// Duplicate re-publications attempted (deduped by the index).
    pub duplicates: u64,
}

/// Replays a manifest into an [`Index`] on a schedule. See the
/// [module docs](self).
pub struct LiveFeeder {
    index: Arc<Index>,
    /// Publications sorted by `publish_at`.
    schedule: Vec<Publication>,
    next: usize,
    stats: FeederStats,
}

impl LiveFeeder {
    /// Build a feeder for `manifest`, applying `faults` (seeded by
    /// `seed`) to the publication schedule. The index's watermark is
    /// initialised to the earliest `interval_start` of the manifest —
    /// nothing is published yet.
    pub fn new(manifest: &[DumpMeta], index: Arc<Index>, faults: &FaultPlan, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut collectors: Vec<&str> = manifest.iter().map(|m| m.collector.as_str()).collect();
        collectors.sort_unstable();
        collectors.dedup();

        // Per-collector publication sequences, in archive order.
        let mut per_collector: Vec<Vec<DumpMeta>> = vec![Vec::new(); collectors.len()];
        for m in manifest {
            let ci = collectors
                .binary_search(&m.collector.as_str())
                .expect("collector present");
            per_collector[ci].push(m.clone());
        }

        let mut schedule: Vec<Publication> = Vec::with_capacity(manifest.len());
        for (ci, metas) in per_collector.iter_mut().enumerate() {
            metas.sort_by_key(|m| (m.available_at, m.interval_start));
            // Publication instants: archive availability + jitter,
            // kept non-decreasing per collector unless a swap fault
            // reorders neighbours.
            let mut instants: Vec<u64> = metas
                .iter()
                .map(|m| {
                    let (lo, hi) = faults.extra_delay;
                    let jitter = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                    m.available_at.saturating_add(jitter)
                })
                .collect();
            for i in 1..instants.len() {
                instants[i] = instants[i].max(instants[i - 1]);
            }
            // Out-of-order publication: swap neighbouring instants so
            // a later window surfaces before an earlier one.
            for i in 0..instants.len().saturating_sub(1) {
                if faults.swap_prob > 0.0 && rng.gen::<f64>() < faults.swap_prob {
                    instants.swap(i, i + 1);
                }
            }
            // Stalls: publications falling inside a stall wait it out.
            // Deliberately no re-sorting afterwards — a stall pushing
            // an instant past its (possibly swapped) neighbours just
            // creates more out-of-order publication, which is the
            // fault model's job. Re-monotonizing here would silently
            // erase the swap faults whenever a stall matches the
            // collector, leaving the "out-of-order + stall"
            // combination untested.
            for stall in &faults.stalls {
                if stall.collector.is_some_and(|c| c != ci) {
                    continue;
                }
                let end = stall.start.saturating_add(stall.duration);
                for t in instants.iter_mut() {
                    if *t >= stall.start && *t < end {
                        *t = end;
                    }
                }
            }
            for (m, &t) in metas.iter().zip(&instants) {
                // A dump surfaces exactly when it is published — the
                // feeder *replaces* the archive's availability model,
                // so `available_at` is the (possibly faulted) actual
                // publication instant. Anything else desynchronises
                // visibility from the watermark: a swap fault can move
                // a dump before its nominal availability, and keeping
                // the stale timestamp would hide a dump the watermark
                // already vouched for. The duplicate re-publication
                // reuses the *identical* meta (that is the point of
                // the fault: same row, inserted twice).
                let mut meta = m.clone();
                meta.available_at = t;
                if faults.duplicate_prob > 0.0 && rng.gen::<f64>() < faults.duplicate_prob {
                    schedule.push(Publication {
                        publish_at: t.saturating_add(rng.gen_range(1..=600)),
                        meta: meta.clone(),
                        duplicate: true,
                    });
                }
                schedule.push(Publication {
                    publish_at: t,
                    meta,
                    duplicate: false,
                });
            }
        }
        schedule.sort_by(|a, b| {
            (a.publish_at, &a.meta.collector, a.meta.interval_start).cmp(&(
                b.publish_at,
                &b.meta.collector,
                b.meta.interval_start,
            ))
        });
        let feeder = LiveFeeder {
            index,
            schedule,
            next: 0,
            stats: FeederStats::default(),
        };
        feeder.sync_watermark();
        feeder
    }

    /// Advance the index watermark to the earliest `interval_start`
    /// still awaiting publication (`u64::MAX` when everything is out).
    /// This is the feeder's truthfulness invariant: the watermark
    /// never claims completeness for data still in flight.
    fn sync_watermark(&self) {
        let pending = self
            .schedule
            .iter()
            .skip(self.next)
            .filter(|p| !p.duplicate)
            .map(|p| p.meta.interval_start)
            .min();
        self.index.advance_watermark(pending.unwrap_or(u64::MAX));
    }

    /// Publish everything scheduled at or before virtual time `now`;
    /// returns how many registrations were made. Idempotent per
    /// instant; monotone `now` expected.
    pub fn publish_until(&mut self, now: u64) -> usize {
        let mut n = 0;
        while self
            .schedule
            .get(self.next)
            .is_some_and(|p| p.publish_at <= now)
        {
            let p = &self.schedule[self.next];
            if self.index.register(p.meta.clone()) {
                self.stats.published += 1;
            }
            if p.duplicate {
                self.stats.duplicates += 1;
            }
            self.next += 1;
            n += 1;
        }
        if n > 0 {
            self.sync_watermark();
        }
        n
    }

    /// True once the whole schedule is out.
    pub fn done(&self) -> bool {
        self.next >= self.schedule.len()
    }

    /// Virtual time of the last scheduled publication (0 for an empty
    /// manifest).
    pub fn horizon(&self) -> u64 {
        self.schedule.last().map(|p| p.publish_at).unwrap_or(0)
    }

    /// Statistics so far.
    pub fn stats(&self) -> FeederStats {
        self.stats
    }

    /// Drive the feeder (and a shared stream clock) from wall time:
    /// every wall second maps to `speed` virtual seconds. Returns the
    /// publisher thread's handle; it exits once the schedule is out
    /// and the clock passed `drain_to` — or as soon as `stop` is
    /// raised (cooperative shutdown; the thread never blocks longer
    /// than one tick).
    pub fn spawn_compressed(
        mut self,
        clock: bgpstream_clock::SharedClock,
        speed: u64,
        drain_to: u64,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<FeederStats> {
        std::thread::spawn(move || {
            let tick = std::time::Duration::from_millis(5);
            let start = std::time::Instant::now();
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let virt = (start.elapsed().as_micros() as u64)
                    .saturating_mul(speed)
                    .saturating_div(1_000_000);
                self.publish_until(virt);
                clock.advance_to(virt);
                if self.done() && virt >= drain_to {
                    break;
                }
                std::thread::sleep(tick);
            }
            self.stats
        })
    }
}

/// Minimal clock handoff so the feeder can drive a stream clock
/// without depending on the core crate (which depends on nothing
/// here; a dependency cycle otherwise).
pub mod bgpstream_clock {
    use bsync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A shared monotone virtual clock (compatible with
    /// `bgpstream::Clock::Manual` — both sides hold the same
    /// `Arc<AtomicU64>`).
    #[derive(Clone)]
    pub struct SharedClock(pub Arc<AtomicU64>);

    impl SharedClock {
        /// A clock starting at `t`.
        pub fn new(t: u64) -> Self {
            SharedClock(Arc::new(AtomicU64::new(t)))
        }

        /// Monotone advance.
        pub fn advance_to(&self, t: u64) {
            self.0.fetch_max(t, Ordering::SeqCst);
        }

        /// Current virtual time.
        pub fn now(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use broker::DumpType;
    use std::path::PathBuf;

    fn meta(collector: &str, start: u64, avail: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: collector.into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: 300,
            path: PathBuf::from(format!("/tmp/{collector}-{start}")),
            available_at: avail,
            size: 10,
        }
    }

    fn manifest() -> Vec<DumpMeta> {
        vec![
            meta("rrc01", 0, 350),
            meta("rrc01", 300, 650),
            meta("rrc01", 600, 950),
            meta("rv2", 0, 400),
            meta("rv2", 300, 700),
        ]
    }

    #[test]
    fn benign_plan_publishes_on_archive_schedule() {
        let idx = Index::shared();
        let mut f = LiveFeeder::new(&manifest(), idx.clone(), &FaultPlan::none(), 1);
        assert_eq!(idx.watermark(), 0);
        assert_eq!(f.publish_until(349), 0);
        assert_eq!(f.publish_until(400), 2); // rrc01@350, rv2@400
        assert_eq!(idx.len(), 2);
        // Both collectors' first windows are out; next pending is 300.
        assert_eq!(idx.watermark(), 300);
        f.publish_until(10_000);
        assert!(f.done());
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.watermark(), u64::MAX);
        assert_eq!(f.stats().published, 5);
    }

    #[test]
    fn watermark_never_vouches_for_unpublished_data() {
        // Whatever the fault plan, after every step: every dump with
        // interval_start < watermark is registered.
        for seed in 0..8u64 {
            let plan = FaultPlan {
                extra_delay: (0, 900),
                stalls: vec![Stall {
                    start: 500,
                    duration: 2000,
                    collector: Some(0),
                }],
                swap_prob: 0.5,
                duplicate_prob: 0.3,
                crash: CrashPlan::none(),
            };
            let idx = Index::shared();
            let mut f = LiveFeeder::new(&manifest(), idx.clone(), &plan, seed);
            let mut t = 0;
            while !f.done() {
                t += 100;
                f.publish_until(t);
                let wm = idx.watermark();
                for m in manifest() {
                    if m.interval_start < wm {
                        // Must be visible in a historical query.
                        let q = broker::Query {
                            start: m.interval_start,
                            end: Some(m.interval_start),
                            collectors: vec![m.collector.clone()],
                            ..Default::default()
                        };
                        let mut cur = broker::BrokerCursor {
                            window_start: m.interval_start,
                        };
                        let r = idx.query(&q, &mut cur, u64::MAX);
                        assert!(
                            r.files.iter().any(|x| x.interval_start == m.interval_start),
                            "watermark {wm} vouches for unpublished {m:?} (seed {seed})"
                        );
                    }
                }
            }
            assert_eq!(idx.len(), 5, "faults must never lose dumps (seed {seed})");
            assert_eq!(idx.watermark(), u64::MAX);
        }
    }

    #[test]
    fn stall_holds_back_collector_and_watermark() {
        let plan = FaultPlan {
            stalls: vec![Stall {
                start: 300,
                duration: 5000,
                collector: None,
            }],
            ..FaultPlan::none()
        };
        let idx = Index::shared();
        let mut f = LiveFeeder::new(&manifest(), idx.clone(), &plan, 3);
        f.publish_until(4999);
        // Nothing can surface inside the stall window.
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.watermark(), 0);
        f.publish_until(5300);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.watermark(), u64::MAX);
    }

    #[test]
    fn duplicates_are_republished_and_deduped() {
        let plan = FaultPlan {
            duplicate_prob: 1.0,
            ..FaultPlan::none()
        };
        let idx = Index::shared();
        let mut f = LiveFeeder::new(&manifest(), idx.clone(), &plan, 9);
        f.publish_until(u64::MAX - 1);
        assert_eq!(f.stats().duplicates, 5);
        assert_eq!(f.stats().published, 5, "index must dedup re-publications");
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn compressed_thread_drives_clock_and_stops() {
        let idx = Index::shared();
        let f = LiveFeeder::new(&manifest(), idx.clone(), &FaultPlan::none(), 5);
        let clock = bgpstream_clock::SharedClock::new(0);
        let stop = Arc::new(AtomicBool::new(false));
        // 1000 virtual seconds per wall second: the ~1000s schedule
        // drains in about a second.
        let h = f.spawn_compressed(clock.clone(), 1000, 1000, stop);
        let stats = h.join().expect("feeder thread");
        assert_eq!(stats.published, 5);
        assert!(clock.now() >= 950);
        assert_eq!(idx.watermark(), u64::MAX);
    }
}
