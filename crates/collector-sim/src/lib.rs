//! Route-collector simulation: the data-provider substrate.
//!
//! RouteViews and RIPE RIS run collector processes that peer with
//! vantage-point routers (VPs), maintain an image of each VP's
//! Adj-RIB-Out, and periodically dump (i) RIB snapshots and (ii) the
//! update messages received in the last window, as MRT files in a
//! public archive (paper §2, Figure 1). This crate reproduces that
//! pipeline against the simulated control plane:
//!
//! * [`project`] — the two collection projects with their real
//!   cadences: RouteViews (RIB every 2 h, updates every 15 min, no
//!   state messages) and RIS (RIB every 8 h, updates every 5 min,
//!   state messages dumped);
//! * [`sim::Simulator`] — drives virtual time: applies scenario
//!   events to the control plane, maintains per-VP Adj-RIB-Out images,
//!   emits `BGP4MP` update records with per-VP jitter, rotates and
//!   publishes dump files (with configurable publication delay), and
//!   registers every published file with a broker [`broker::Index`];
//! * [`archive`] — the on-disk archive layout
//!   (`root/<project>/<collector>/<type>/<type>.<start>.mrt`) plus a
//!   CSV manifest;
//! * fault injection — truncated (corrupt) dump files and session
//!   resets, exercising libBGPStream's error paths and the RT
//!   plugin's E1–E4 handling;
//! * [`feeder::LiveFeeder`] — replays a finished archive into a broker
//!   index as a *publication process* (jittered delays, stalls,
//!   out-of-order and duplicate publication) with a truthful
//!   completeness watermark; the substrate live streams tail and CI
//!   soaks against;
//! * [`clients`] — synthetic broker tenants (historical pagers, live
//!   tailers with crash/resume) that soaks compose into a fleet
//!   against a served [`broker::BrokerService`].

#![forbid(unsafe_code)]

pub mod archive;
pub mod clients;
pub mod feeder;
pub mod project;
pub mod sim;

pub use clients::{page_history, ClientReport, LiveTail};
pub use feeder::{CrashPlan, FaultPlan, FeederStats, LiveFeeder, Stall, WorkerKill};
pub use project::{ProjectSpec, RIS, ROUTEVIEWS};
pub use sim::{
    standard_collectors, CollectorSpec, FaultConfig, SimConfig, SimStats, Simulator, VpSpec,
};
