//! Collection-project parameters (paper §2, "Popular Data Sources").

/// The fixed parameters of a collection project.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProjectSpec {
    /// Project name as used in broker queries.
    pub name: &'static str,
    /// RIB dump period in seconds.
    pub rib_period: u64,
    /// Updates dump period in seconds.
    pub updates_period: u64,
    /// Whether the collector dumps session state-change messages
    /// (RIPE RIS does; RouteViews does not — §6.2.1 footnote 5).
    pub dumps_state_messages: bool,
    /// The collector's own AS number.
    pub collector_asn: u32,
}

/// RouteViews: RIB every 2 hours, updates every 15 minutes, no state
/// messages.
pub const ROUTEVIEWS: ProjectSpec = ProjectSpec {
    name: "routeviews",
    rib_period: 2 * 3600,
    updates_period: 15 * 60,
    dumps_state_messages: false,
    collector_asn: 6447,
};

/// RIPE RIS: RIB every 8 hours, updates every 5 minutes, state
/// messages dumped.
pub const RIS: ProjectSpec = ProjectSpec {
    name: "ris",
    rib_period: 8 * 3600,
    updates_period: 5 * 60,
    dumps_state_messages: true,
    collector_asn: 12654,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadences_match_the_paper() {
        assert_eq!(ROUTEVIEWS.rib_period, 7200);
        assert_eq!(ROUTEVIEWS.updates_period, 900);
        assert_eq!(RIS.rib_period, 28800);
        assert_eq!(RIS.updates_period, 300);
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(RIS.dumps_state_messages, "RIS dumps state messages");
            assert!(!ROUTEVIEWS.dumps_state_messages, "RouteViews does not");
        }
    }
}
