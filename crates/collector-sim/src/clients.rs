//! Synthetic broker tenants: scripted client behaviours for soaks and
//! multi-tenant tests.
//!
//! The paper's broker serves *many* independent libBGPStream
//! processes at once (§3.2); exercising that multi-tenancy needs a
//! population of clients with realistic behaviours, not one. This
//! module provides the two building blocks the `broker_service_soak`
//! example (and service tests) compose into a fleet:
//!
//! * [`page_history`] — a tenant paging a historical interval window
//!   by window, like a batch analysis;
//! * [`LiveTail`] — a tenant holding a live lease and polling it as a
//!   virtual clock advances, optionally "crashing" mid-session and
//!   resuming by lease id (exactly-once across the reconnect).
//!
//! Both drive the [`BrokerClient`] trait, so the same script runs
//! against an in-process [`broker::LocalBroker`] or a served
//! [`broker::RemoteBroker`] unchanged.

use std::sync::Arc;
use std::time::Duration;

use broker::index::{BrokerCursor, Query};
use broker::{BrokerClient, BrokerError, LeaseId, ReleasePolicy};

/// What one synthetic tenant observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientReport {
    /// Broker round trips (historical pages or live polls).
    pub requests: u64,
    /// Dump files returned across all responses.
    pub files: u64,
    /// Highest completeness watermark observed (live).
    pub released_through: u64,
}

/// Page `query`'s interval to exhaustion through `client`, as a batch
/// analysis would. Every page must move the window cursor forward —
/// a stuck cursor is reported as [`BrokerError::Protocol`] rather
/// than looping forever.
pub fn page_history(
    client: &Arc<dyn BrokerClient>,
    query: &Query,
) -> Result<ClientReport, BrokerError> {
    let mut report = ClientReport::default();
    let mut cursor = BrokerCursor {
        window_start: query.start,
    };
    loop {
        let before = cursor.window_start;
        let resp = client.query(query, &mut cursor, u64::MAX)?;
        report.requests += 1;
        report.files += resp.files.len() as u64;
        if resp.exhausted {
            return Ok(report);
        }
        if cursor.window_start <= before {
            return Err(BrokerError::Protocol(format!(
                "window cursor stuck at {before}"
            )));
        }
    }
}

/// A live tenant: one lease, polled at a virtual time the caller
/// advances. Dropping the tail without [`LiveTail::close`] simulates
/// a crash — the lease (and its delivered-set) stays with the broker
/// until it expires, so a successor can [`LiveTail::resume`] it.
pub struct LiveTail {
    client: Arc<dyn BrokerClient>,
    lease: LeaseId,
    report: ClientReport,
}

impl LiveTail {
    /// Open a fresh live session for `query`.
    pub fn open(
        client: Arc<dyn BrokerClient>,
        query: &Query,
        policy: ReleasePolicy,
    ) -> Result<Self, BrokerError> {
        let lease = client.open_live(query, policy, None)?;
        Ok(LiveTail {
            client,
            lease,
            report: ClientReport::default(),
        })
    }

    /// Re-attach to a crashed predecessor's session. The broker-side
    /// cursor is untouched by the reconnect: files it already released
    /// to the predecessor are not released again (exactly-once at dump
    /// granularity).
    pub fn resume(
        client: Arc<dyn BrokerClient>,
        query: &Query,
        policy: ReleasePolicy,
        lease: LeaseId,
    ) -> Result<Self, BrokerError> {
        let lease = client.open_live(query, policy, Some(lease))?;
        Ok(LiveTail {
            client,
            lease,
            report: ClientReport::default(),
        })
    }

    /// The session's lease id (what a successor needs to resume).
    pub fn lease(&self) -> LeaseId {
        self.lease
    }

    /// Observations so far.
    pub fn report(&self) -> ClientReport {
        self.report
    }

    /// One poll at virtual time `now`; returns how many files (new +
    /// late) this poll released.
    pub fn poll(&mut self, now: u64) -> Result<u64, BrokerError> {
        let poll = self.client.poll_live(self.lease, now)?;
        self.report.requests += 1;
        let got = (poll.files.len() + poll.late.len()) as u64;
        self.report.files += got;
        self.report.released_through = self.report.released_through.max(poll.released_through);
        Ok(got)
    }

    /// Poll until the completeness watermark reaches `target` (the
    /// feed vouches nothing below it is still outstanding), blocking
    /// up to `poll_wait` on broker news between quiet polls.
    pub fn poll_until_released(
        &mut self,
        now: impl Fn() -> u64,
        target: u64,
        poll_wait: Duration,
    ) -> Result<(), BrokerError> {
        loop {
            self.poll(now())?;
            if self.report.released_through >= target {
                return Ok(());
            }
            let v = self.client.version();
            self.client.wait_for_new(v, poll_wait);
        }
    }

    /// Keep the lease alive without polling (a tenant gone quiet).
    pub fn renew(&self) -> Result<(), BrokerError> {
        self.client.renew_lease(self.lease)
    }

    /// End the session, releasing the broker-side cursor.
    pub fn close(self) -> Result<(), BrokerError> {
        self.client.close_lease(self.lease)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use broker::{DumpMeta, DumpType, Index, LocalBroker};
    use std::path::PathBuf;

    fn filled_index(n: u64) -> Arc<Index> {
        let idx = Arc::new(Index::with_window(900));
        for k in 0..n {
            idx.register(DumpMeta {
                project: "ris".into(),
                collector: "rrc00".into(),
                dump_type: DumpType::Updates,
                interval_start: k * 300,
                duration: 300,
                path: PathBuf::from(format!("/tmp/u{k}.mrt")),
                available_at: 0,
                size: 1,
            });
        }
        idx
    }

    #[test]
    fn pager_counts_every_file_once() {
        let idx = filled_index(12);
        let client: Arc<dyn BrokerClient> = LocalBroker::shared(idx);
        let q = Query {
            start: 0,
            end: Some(12 * 300),
            ..Default::default()
        };
        let report = page_history(&client, &q).unwrap();
        assert_eq!(report.files, 12);
        assert!(report.requests >= 4, "900s windows over 3600s of data");
    }

    #[test]
    fn live_tail_crash_and_resume_is_exactly_once() {
        let idx = filled_index(6);
        idx.advance_watermark(900);
        let client: Arc<dyn BrokerClient> = LocalBroker::shared(idx.clone());
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        let mut tail = LiveTail::open(client.clone(), &q, ReleasePolicy::Watermark).unwrap();
        let first = tail.poll(0).unwrap();
        assert_eq!(first, 3, "window [0, 900) holds 3 dumps");
        let lease = tail.lease();
        drop(tail); // crash: no close
        idx.advance_watermark(1800);
        let mut successor = LiveTail::resume(client, &q, ReleasePolicy::Watermark, lease).unwrap();
        let rest = successor.poll(0).unwrap();
        assert_eq!(rest, 3, "successor gets only the second window");
        successor.close().unwrap();
    }
}
