//! The collector simulator: virtual-time event loop that maintains VP
//! Adj-RIB-Out images and emits MRT dump files.

use std::collections::{HashMap, VecDeque};
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;
use std::sync::Arc;

use bgp_types::{Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, SessionState};
use broker::index::DumpMeta;
use broker::{DumpType, Index};
use mrt::table_dump_v2::TableDumpV2;
use mrt::{Bgp4mp, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibRow};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use topology::control::{ControlPlane, Route};
use topology::events::{Event, Scenario};
use topology::routing::RouteClass;

use crate::archive;
use crate::project::ProjectSpec;

/// One vantage point peering with a collector.
#[derive(Clone, Copy, Debug)]
pub struct VpSpec {
    /// The VP's AS number (must exist in the topology).
    pub asn: Asn,
    /// Full-feed VPs export their whole Loc-RIB; partial-feed VPs only
    /// export their own and customer-learned routes (§2).
    pub full_feed: bool,
}

/// One collector: a name, a project (cadences) and its VPs.
#[derive(Clone, Debug)]
pub struct CollectorSpec {
    /// Collector name (e.g. "rrc01", "route-views2").
    pub name: String,
    /// Collection project parameters.
    pub project: ProjectSpec,
    /// The VPs this collector peers with.
    pub vps: Vec<VpSpec>,
}

/// Fault-injection parameters.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a written dump file is truncated (corrupted).
    pub truncate_prob: f64,
    /// Probability a scheduled RIB dump silently never appears in the
    /// archive — the paper observes both repositories "occasionally
    /// miss RIB dumps (34 per year on average)" (§5).
    pub skip_rib_prob: f64,
    /// Publication delay bounds: a file covering `[t, t+period)` is
    /// available at `t + period + U(min, max)` — the paper measures
    /// 99 % of updates available within 20 minutes of dump start.
    pub pub_delay_min: u64,
    /// Upper bound of the publication delay.
    pub pub_delay_max: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            truncate_prob: 0.0,
            skip_rib_prob: 0.0,
            pub_delay_min: 30,
            pub_delay_max: 120,
        }
    }
}

/// Simulator parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Archive root directory.
    pub archive_root: PathBuf,
    /// Virtual start time (seconds).
    pub start_time: u64,
    /// RNG seed (jitter, delays, faults).
    pub seed: u64,
    /// Emit Updates dumps.
    pub emit_updates: bool,
    /// Emit RIB dumps on the project cadence.
    pub emit_ribs: bool,
    /// RIB rows written per second of record timestamp (rows of one
    /// dump carry increasing timestamps, as real collectors do).
    pub rib_rows_per_sec: u64,
    /// Fault injection.
    pub faults: FaultConfig,
}

impl SimConfig {
    /// A config rooted at `dir` starting at time 0.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SimConfig {
            archive_root: dir.into(),
            start_time: 0,
            seed: 7,
            emit_updates: true,
            emit_ribs: true,
            rib_rows_per_sec: 500,
            faults: FaultConfig::default(),
        }
    }
}

#[derive(Clone, Debug)]
struct TableEntry {
    route: Route,
    since: u64,
}

struct VpState {
    asn: Asn,
    ip: IpAddr,
    full_feed: bool,
    up: bool,
    table: HashMap<Prefix, TableEntry>,
}

struct CollectorState {
    spec: CollectorSpec,
    local_ip: IpAddr,
    vps: Vec<VpState>,
    pending: Vec<(u64, MrtRecord)>,
    window_start: u64,
    next_rib: u64,
}

#[derive(Clone, Copy, Debug)]
struct SessionEvent {
    time: u64,
    collector: usize,
    vp: Asn,
    up: bool,
}

/// Aggregate emission statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Dump files written.
    pub files: u64,
    /// MRT records written.
    pub records: u64,
    /// Bytes written.
    pub bytes: u64,
    /// Files intentionally truncated by fault injection.
    pub truncated_files: u64,
    /// RIB dumps silently skipped by fault injection.
    pub skipped_ribs: u64,
}

/// The collector-side simulator (see crate docs).
pub struct Simulator {
    cp: ControlPlane,
    collectors: Vec<CollectorState>,
    cfg: SimConfig,
    rng: SmallRng,
    index: Option<Arc<Index>>,
    now: u64,
    events: VecDeque<Event>,
    session_events: VecDeque<SessionEvent>,
    manifest: Vec<DumpMeta>,
    stats: SimStats,
}

impl Simulator {
    /// Build a simulator; advances the control plane to
    /// `cfg.start_time` and initialises every VP table (without
    /// emitting updates).
    pub fn new(mut cp: ControlPlane, collectors: Vec<CollectorSpec>, cfg: SimConfig) -> Self {
        cp.advance_to(cfg.start_time);
        let announced = cp.announced_prefixes();
        let states = collectors
            .into_iter()
            .enumerate()
            .map(|(ci, spec)| {
                let local_ip = IpAddr::V4(Ipv4Addr::new(10, ci as u8 + 1, 255, 254));
                let vps = spec
                    .vps
                    .iter()
                    .enumerate()
                    .map(|(vi, v)| {
                        let ip = IpAddr::V4(Ipv4Addr::new(10, ci as u8 + 1, vi as u8, 1));
                        let mut table = HashMap::new();
                        for p in &announced {
                            if let Some(r) = feed_route(&mut cp, v, p) {
                                table.insert(
                                    *p,
                                    TableEntry {
                                        route: r,
                                        since: cfg.start_time,
                                    },
                                );
                            }
                        }
                        VpState {
                            asn: v.asn,
                            ip,
                            full_feed: v.full_feed,
                            up: true,
                            table,
                        }
                    })
                    .collect();
                CollectorState {
                    local_ip,
                    vps,
                    pending: Vec::new(),
                    window_start: cfg.start_time,
                    next_rib: cfg.start_time, // first RIB dumped immediately
                    spec,
                }
            })
            .collect();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let now = cfg.start_time;
        Simulator {
            cp,
            collectors: states,
            cfg,
            rng,
            index: None,
            now,
            events: VecDeque::new(),
            session_events: VecDeque::new(),
            manifest: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// Register published files with a live broker index.
    pub fn attach_index(&mut self, index: Arc<Index>) {
        self.index = Some(index);
    }

    /// Queue a scenario's events (merged with anything queued before).
    pub fn schedule(&mut self, scenario: &Scenario) {
        let mut all: Vec<Event> = self.events.drain(..).collect();
        all.extend(scenario.sorted());
        all.sort_by_key(|e| e.time);
        self.events = all.into();
    }

    /// Schedule a VP session reset: down at `time`, up again after
    /// `downtime` seconds.
    pub fn schedule_session_reset(&mut self, time: u64, collector: usize, vp: Asn, downtime: u64) {
        let mut all: Vec<SessionEvent> = self.session_events.drain(..).collect();
        all.push(SessionEvent {
            time,
            collector,
            vp,
            up: false,
        });
        all.push(SessionEvent {
            time: time + downtime,
            collector,
            vp,
            up: true,
        });
        all.sort_by_key(|e| e.time);
        self.session_events = all.into();
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Emission statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Everything published so far.
    pub fn manifest(&self) -> &[DumpMeta] {
        &self.manifest
    }

    /// Mutable access to the control plane (for analyses sharing the
    /// simulator's world).
    pub fn control_plane(&mut self) -> &mut ControlPlane {
        &mut self.cp
    }

    /// The VP AS numbers of collector `ci` (empty if out of range).
    pub fn vps_of(&self, ci: usize) -> Vec<Asn> {
        self.collectors
            .get(ci)
            .map(|c| c.vps.iter().map(|v| v.asn).collect())
            .unwrap_or_default()
    }

    /// Write the archive's CSV manifest.
    pub fn write_manifest(&self) -> std::io::Result<PathBuf> {
        archive::write_manifest(&self.cfg.archive_root, &self.manifest)
    }

    /// Drive the simulation to `t_end` (inclusive), dispatching dump
    /// rotations, RIB dumps, session events and scenario events in
    /// time order.
    pub fn run_until(&mut self, t_end: u64) {
        loop {
            // Candidate action times; fixed dispatch priority on ties:
            // update flush, RIB dump, session event, scenario event.
            let flush = if self.cfg.emit_updates {
                self.collectors
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.window_start + c.spec.project.updates_period, i))
                    .min()
            } else {
                None
            };
            let rib = if self.cfg.emit_ribs {
                self.collectors
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.next_rib, i))
                    .min()
            } else {
                None
            };
            let sess = self.session_events.front().map(|e| e.time);
            let ev = self.events.front().map(|e| e.time);

            let mut best: Option<(u64, u8)> = None; // (time, priority)
            let mut consider = |t: Option<u64>, prio: u8| {
                if let Some(t) = t {
                    if best.is_none_or(|(bt, bp)| (t, prio) < (bt, bp)) {
                        best = Some((t, prio));
                    }
                }
            };
            consider(flush.map(|(t, _)| t), 0);
            consider(rib.map(|(t, _)| t), 1);
            consider(sess, 2);
            consider(ev, 3);

            let Some((t, prio)) = best else { break };
            if t > t_end {
                break;
            }
            self.now = t;
            match prio {
                0 => {
                    let (bound, ci) = flush.unwrap();
                    let born = self.cp.advance_to(bound);
                    if !born.is_empty() {
                        self.apply_route_changes(bound, &born);
                    }
                    self.flush_updates(ci, bound);
                }
                1 => {
                    let (at, ci) = rib.unwrap();
                    self.cp.advance_to(at);
                    self.dump_rib(ci, at);
                    let period = self.collectors[ci].spec.project.rib_period;
                    self.collectors[ci].next_rib = at + period;
                }
                2 => {
                    let se = self.session_events.pop_front().unwrap();
                    self.apply_session_event(se);
                }
                _ => {
                    let ev = self.events.pop_front().unwrap();
                    let affected = self.cp.apply(&ev);
                    self.apply_route_changes(ev.time, &affected);
                }
            }
        }
        self.cp.advance_to(t_end);
        self.now = t_end;
    }

    /// Force a RIB dump on every collector at time `t`, refreshing VP
    /// tables from the control plane first. Used by longitudinal
    /// (RIB-only) workloads.
    pub fn force_rib_dump(&mut self, t: u64) {
        self.cp.advance_to(t);
        self.now = self.now.max(t);
        let announced = self.cp.announced_prefixes();
        for ci in 0..self.collectors.len() {
            for vi in 0..self.collectors[ci].vps.len() {
                if !self.collectors[ci].vps[vi].up {
                    continue;
                }
                let spec = VpSpec {
                    asn: self.collectors[ci].vps[vi].asn,
                    full_feed: self.collectors[ci].vps[vi].full_feed,
                };
                let mut table = HashMap::with_capacity(announced.len());
                for p in &announced {
                    if let Some(r) = feed_route(&mut self.cp, &spec, p) {
                        let since = self.collectors[ci].vps[vi]
                            .table
                            .get(p)
                            .filter(|e| e.route == r)
                            .map(|e| e.since)
                            .unwrap_or(t);
                        table.insert(*p, TableEntry { route: r, since });
                    }
                }
                self.collectors[ci].vps[vi].table = table;
            }
            self.dump_rib(ci, t);
        }
    }

    fn apply_session_event(&mut self, se: SessionEvent) {
        let t = se.time;
        let ci = se.collector;
        let Some(vi) = self.collectors[ci].vps.iter().position(|v| v.asn == se.vp) else {
            return;
        };
        let dumps_state = self.collectors[ci].spec.project.dumps_state_messages;
        let local_asn = Asn(self.collectors[ci].spec.project.collector_asn);
        let local_ip = self.collectors[ci].local_ip;
        let (peer_ip, full_feed) = {
            let vp = &self.collectors[ci].vps[vi];
            (vp.ip, vp.full_feed)
        };
        if !se.up {
            self.collectors[ci].vps[vi].up = false;
            self.collectors[ci].vps[vi].table.clear();
            if dumps_state && self.cfg.emit_updates {
                let rec = MrtRecord::bgp4mp(
                    t as u32,
                    Bgp4mp::StateChange {
                        peer_asn: se.vp,
                        local_asn,
                        peer_ip,
                        local_ip,
                        old_state: SessionState::Established,
                        new_state: SessionState::Idle,
                    },
                );
                self.collectors[ci].pending.push((t, rec));
            }
        } else {
            self.collectors[ci].vps[vi].up = true;
            if dumps_state && self.cfg.emit_updates {
                let mut prev = SessionState::Idle;
                for (k, st) in SessionState::bring_up_sequence().into_iter().enumerate() {
                    let ts = t + k as u64;
                    let rec = MrtRecord::bgp4mp(
                        ts as u32,
                        Bgp4mp::StateChange {
                            peer_asn: se.vp,
                            local_asn,
                            peer_ip,
                            local_ip,
                            old_state: prev,
                            new_state: st,
                        },
                    );
                    self.collectors[ci].pending.push((ts, rec));
                    prev = st;
                }
            }
            // Table re-announcement burst.
            let spec = VpSpec {
                asn: se.vp,
                full_feed,
            };
            let announced = self.cp.announced_prefixes();
            let mut table = HashMap::new();
            for (k, p) in announced.iter().enumerate() {
                if let Some(r) = feed_route(&mut self.cp, &spec, p) {
                    let ts = t + 5 + (k as u64 % 60);
                    if self.cfg.emit_updates {
                        let rec = announce_record(ts, se.vp, local_asn, peer_ip, local_ip, *p, &r);
                        self.collectors[ci].pending.push((ts, rec));
                    }
                    table.insert(
                        *p,
                        TableEntry {
                            route: r,
                            since: ts,
                        },
                    );
                }
            }
            self.collectors[ci].vps[vi].table = table;
        }
    }

    /// Re-evaluate `prefixes` at every up VP, emitting update records
    /// for changes.
    fn apply_route_changes(&mut self, t: u64, prefixes: &[Prefix]) {
        for ci in 0..self.collectors.len() {
            let local_asn = Asn(self.collectors[ci].spec.project.collector_asn);
            let local_ip = self.collectors[ci].local_ip;
            for vi in 0..self.collectors[ci].vps.len() {
                if !self.collectors[ci].vps[vi].up {
                    continue;
                }
                let (vp_asn, vp_ip, full_feed) = {
                    let vp = &self.collectors[ci].vps[vi];
                    (vp.asn, vp.ip, vp.full_feed)
                };
                let spec = VpSpec {
                    asn: vp_asn,
                    full_feed,
                };
                for p in prefixes {
                    let new = feed_route(&mut self.cp, &spec, p);
                    let old = self.collectors[ci].vps[vi].table.get(p).map(|e| &e.route);
                    if old == new.as_ref() {
                        continue;
                    }
                    let ts = t + jitter(vp_asn, p);
                    match new {
                        Some(r) => {
                            if self.cfg.emit_updates {
                                let rec =
                                    announce_record(ts, vp_asn, local_asn, vp_ip, local_ip, *p, &r);
                                self.collectors[ci].pending.push((ts, rec));
                            }
                            self.collectors[ci].vps[vi].table.insert(
                                *p,
                                TableEntry {
                                    route: r,
                                    since: ts,
                                },
                            );
                        }
                        None => {
                            if self.cfg.emit_updates {
                                let rec =
                                    withdraw_record(ts, vp_asn, local_asn, vp_ip, local_ip, *p);
                                self.collectors[ci].pending.push((ts, rec));
                            }
                            self.collectors[ci].vps[vi].table.remove(p);
                        }
                    }
                }
            }
        }
    }

    /// Rotate the updates dump of collector `ci` at window boundary
    /// `bound`.
    fn flush_updates(&mut self, ci: usize, bound: u64) {
        let window_start = self.collectors[ci].window_start;
        let period = self.collectors[ci].spec.project.updates_period;
        debug_assert_eq!(window_start + period, bound);

        let mut due: Vec<(u64, MrtRecord)> = Vec::new();
        let mut later: Vec<(u64, MrtRecord)> = Vec::new();
        for item in self.collectors[ci].pending.drain(..) {
            if item.0 < bound {
                due.push(item);
            } else {
                later.push(item);
            }
        }
        self.collectors[ci].pending = later;
        due.sort_by_key(|(ts, _)| *ts);

        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for (_, rec) in &due {
                w.write(rec).expect("in-memory write");
            }
        }
        self.publish(ci, DumpType::Updates, window_start, period, bound, buf);
        self.collectors[ci].window_start = bound;
    }

    /// Dump the RIB of collector `ci` at time `t`.
    fn dump_rib(&mut self, ci: usize, t: u64) {
        if self.cfg.faults.skip_rib_prob > 0.0
            && self.rng.gen::<f64>() < self.cfg.faults.skip_rib_prob
        {
            self.stats.skipped_ribs += 1;
            return;
        }
        let peers: Vec<PeerEntry> = self.collectors[ci]
            .vps
            .iter()
            .map(|v| PeerEntry {
                bgp_id: match v.ip {
                    IpAddr::V4(ip) => u32::from(ip),
                    IpAddr::V6(_) => 0,
                },
                ip: v.ip,
                asn: v.asn,
            })
            .collect();
        let mut buf = Vec::new();
        let mut records: u64 = 0;
        {
            let mut w = MrtWriter::new(&mut buf);
            let pit = MrtRecord::table_dump_v2(
                t as u32,
                TableDumpV2::PeerIndexTable(PeerIndexTable {
                    collector_bgp_id: match self.collectors[ci].local_ip {
                        IpAddr::V4(ip) => u32::from(ip),
                        IpAddr::V6(_) => 0,
                    },
                    view_name: String::new(),
                    peers,
                }),
            );
            w.write(&pit).expect("in-memory write");
            records += 1;

            // Union of prefixes across VP tables, sorted.
            let mut prefixes: Vec<Prefix> = self.collectors[ci]
                .vps
                .iter()
                .filter(|v| v.up)
                .flat_map(|v| v.table.keys().copied())
                .collect();
            prefixes.sort_unstable();
            prefixes.dedup();

            let rate = self.cfg.rib_rows_per_sec.max(1);
            for (seq, p) in prefixes.iter().enumerate() {
                let row_ts = t + seq as u64 / rate;
                let mut entries = Vec::new();
                for (vi, v) in self.collectors[ci].vps.iter().enumerate() {
                    if !v.up {
                        continue;
                    }
                    if let Some(e) = v.table.get(p) {
                        entries.push(RibEntry {
                            peer_index: vi as u16,
                            originated_time: e.since as u32,
                            attrs: route_attrs(v.ip, &e.route),
                        });
                    }
                }
                if entries.is_empty() {
                    continue;
                }
                let row = MrtRecord::table_dump_v2(
                    row_ts as u32,
                    TableDumpV2::RibRow(RibRow {
                        sequence: seq as u32,
                        prefix: *p,
                        entries,
                    }),
                );
                w.write(&row).expect("in-memory write");
                records += 1;
            }
        }
        let _ = records;
        // The dump's nominal interval covers its row-timestamp spread
        // (rows are written at `rib_rows_per_sec`), so the sorted
        // stream knows which updates windows it interleaves with.
        let spread = (records / self.cfg.rib_rows_per_sec.max(1)).max(1);
        self.publish(ci, DumpType::Rib, t, spread, t + spread, buf);
    }

    /// Write a dump file, apply fault injection, and register it.
    fn publish(
        &mut self,
        ci: usize,
        dump_type: DumpType,
        interval_start: u64,
        duration: u64,
        nominal_done: u64,
        mut bytes: Vec<u8>,
    ) {
        let records = count_records(&bytes);
        if self.cfg.faults.truncate_prob > 0.0
            && bytes.len() > 40
            && self.rng.gen::<f64>() < self.cfg.faults.truncate_prob
        {
            let cut = self.rng.gen_range(1..40usize);
            bytes.truncate(bytes.len() - cut);
            self.stats.truncated_files += 1;
        }
        let project = self.collectors[ci].spec.project.name;
        let collector = self.collectors[ci].spec.name.clone();
        let path = archive::write_dump(
            &self.cfg.archive_root,
            project,
            &collector,
            dump_type,
            interval_start,
            &bytes,
        )
        .expect("archive write");
        let delay = if self.cfg.faults.pub_delay_max > self.cfg.faults.pub_delay_min {
            self.rng
                .gen_range(self.cfg.faults.pub_delay_min..=self.cfg.faults.pub_delay_max)
        } else {
            self.cfg.faults.pub_delay_min
        };
        let meta = DumpMeta {
            project: project.to_string(),
            collector,
            dump_type,
            interval_start,
            duration,
            path,
            available_at: nominal_done + delay,
            size: bytes.len() as u64,
        };
        self.stats.files += 1;
        self.stats.records += records;
        self.stats.bytes += bytes.len() as u64;
        if let Some(idx) = &self.index {
            idx.register(meta.clone());
        }
        self.manifest.push(meta);
    }
}

/// The route a VP exports to the collector, honouring partial feeds.
fn feed_route(cp: &mut ControlPlane, vp: &VpSpec, prefix: &Prefix) -> Option<Route> {
    let r = cp.route(vp.asn, prefix)?;
    if vp.full_feed || matches!(r.class, RouteClass::Origin | RouteClass::Customer) {
        Some(r)
    } else {
        None
    }
}

/// Deterministic per-(VP, prefix) propagation jitter in 0..30 s.
fn jitter(vp: Asn, prefix: &Prefix) -> u64 {
    let x = (vp.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(prefix.raw_bits() as u64 ^ (prefix.raw_bits() >> 64) as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 33) % 30
}

fn route_attrs(vp_ip: IpAddr, route: &Route) -> PathAttributes {
    let mut attrs = PathAttributes::route(route.as_path.clone(), vp_ip);
    attrs.communities = route.communities.clone();
    attrs
}

fn announce_record(
    ts: u64,
    peer_asn: Asn,
    local_asn: Asn,
    peer_ip: IpAddr,
    local_ip: IpAddr,
    prefix: Prefix,
    route: &Route,
) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts as u32,
        Bgp4mp::Message {
            peer_asn,
            local_asn,
            peer_ip,
            local_ip,
            message: BgpMessage::Update(BgpUpdate::announce(
                vec![prefix],
                route_attrs(peer_ip, route),
            )),
        },
    )
}

fn withdraw_record(
    ts: u64,
    peer_asn: Asn,
    local_asn: Asn,
    peer_ip: IpAddr,
    local_ip: IpAddr,
    prefix: Prefix,
) -> MrtRecord {
    MrtRecord::bgp4mp(
        ts as u32,
        Bgp4mp::Message {
            peer_asn,
            local_asn,
            peer_ip,
            local_ip,
            message: BgpMessage::Update(BgpUpdate::withdraw(vec![prefix])),
        },
    )
}

fn count_records(bytes: &[u8]) -> u64 {
    let (recs, _) = mrt::MrtReader::new(bytes).read_all();
    recs.len() as u64
}

/// Build a standard multi-project collector deployment: `n_ris` RIS
/// collectors (rrc00…) and `n_rv` RouteViews collectors
/// (route-views2…), each peering with `vps_each` VPs drawn
/// deterministically from the topology (transit-heavy, a
/// `full_feed_frac` fraction of them full-feed).
pub fn standard_collectors(
    cp: &ControlPlane,
    n_ris: usize,
    n_rv: usize,
    vps_each: usize,
    full_feed_frac: f64,
    seed: u64,
) -> Vec<CollectorSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let transit = cp.transit_vp_candidates();
    let all = cp.vp_candidates();
    let mut specs = Vec::new();
    let mut mk = |name: String, project: ProjectSpec, rng: &mut SmallRng| {
        let mut vps = Vec::new();
        let mut used: Vec<Asn> = Vec::new();
        while vps.len() < vps_each {
            // 70 % transit VPs, 30 % from the whole population.
            let pool = if rng.gen::<f64>() < 0.7 && !transit.is_empty() {
                &transit
            } else {
                &all
            };
            let asn = pool[rng.gen_range(0..pool.len())];
            if used.contains(&asn) {
                continue;
            }
            used.push(asn);
            let full_feed = rng.gen::<f64>() < full_feed_frac;
            vps.push(VpSpec { asn, full_feed });
        }
        specs.push(CollectorSpec { name, project, vps });
    };
    for k in 0..n_ris {
        mk(format!("rrc{k:02}"), crate::project::RIS, &mut rng);
    }
    for k in 0..n_rv {
        mk(
            format!("route-views{}", k + 2),
            crate::project::ROUTEVIEWS,
            &mut rng,
        );
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrt::MrtReader;
    use std::sync::Arc;
    use topology::events::EventKind;
    use topology::gen::{generate, TopologyConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "bgpstream-sim-{}-{}-{}",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_world(seed: u64) -> ControlPlane {
        ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX)
    }

    fn one_collector(cp: &ControlPlane) -> Vec<CollectorSpec> {
        standard_collectors(cp, 1, 0, 4, 0.8, 99)
    }

    #[test]
    fn first_rib_is_dumped_immediately() {
        let cp = small_world(1);
        let specs = one_collector(&cp);
        let dir = tmpdir("rib0");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        sim.run_until(10);
        let ribs: Vec<_> = sim
            .manifest()
            .iter()
            .filter(|m| m.dump_type == DumpType::Rib)
            .collect();
        assert_eq!(ribs.len(), 1);
        assert_eq!(ribs[0].interval_start, 0);
        // The RIB parses and contains a peer table + rows.
        let bytes = std::fs::read(&ribs[0].path).unwrap();
        let (recs, err) = MrtReader::new(&bytes[..]).read_all();
        assert!(err.is_none());
        assert!(recs.len() > 1);
        assert!(matches!(
            recs[0].body,
            mrt::MrtBody::TableDumpV2(TableDumpV2::PeerIndexTable(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_windows_rotate_on_cadence() {
        let cp = small_world(2);
        let specs = one_collector(&cp); // RIS: 300 s updates
        let dir = tmpdir("rotate");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        sim.run_until(1800);
        let updates: Vec<_> = sim
            .manifest()
            .iter()
            .filter(|m| m.dump_type == DumpType::Updates)
            .collect();
        assert_eq!(updates.len(), 6);
        let starts: Vec<u64> = updates.iter().map(|m| m.interval_start).collect();
        assert_eq!(starts, vec![0, 300, 600, 900, 1200, 1500]);
        for m in &updates {
            assert!(m.available_at >= m.interval_start + m.duration);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn withdraw_event_appears_in_updates_dump() {
        let mut cp = small_world(3);
        let topo = cp.topology().clone();
        let victim = topo
            .nodes
            .iter()
            .find(|n| !n.prefixes_v4.is_empty())
            .unwrap();
        let prefix = victim.prefixes_v4[0].prefix;
        let origin = victim.asn;
        let _ = &mut cp;
        let specs = one_collector(&cp);
        let dir = tmpdir("withdraw");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        let mut sc = Scenario::new();
        sc.push(Event::at(100, EventKind::Withdraw { origin, prefix }));
        sim.schedule(&sc);
        sim.run_until(400);
        // Find a withdrawal of `prefix` in the first updates dump.
        let upd = sim
            .manifest()
            .iter()
            .find(|m| m.dump_type == DumpType::Updates && m.interval_start == 0)
            .unwrap();
        let bytes = std::fs::read(&upd.path).unwrap();
        let (recs, err) = MrtReader::new(&bytes[..]).read_all();
        assert!(err.is_none());
        let mut found = false;
        for r in recs {
            if let mrt::MrtBody::Bgp4mp(Bgp4mp::Message {
                message: BgpMessage::Update(u),
                ..
            }) = r.body
            {
                if u.withdrawals.contains(&prefix) {
                    found = true;
                }
            }
        }
        assert!(found, "withdrawal not found in updates dump");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_timestamps_are_monotonic_within_file() {
        let mut cp = small_world(4);
        let topo = cp.topology().clone();
        let _ = &mut cp;
        let specs = one_collector(&cp);
        let dir = tmpdir("mono");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        let mut sc = Scenario::new();
        // Flap a few prefixes to create traffic.
        for (k, n) in topo
            .nodes
            .iter()
            .filter(|n| !n.prefixes_v4.is_empty())
            .take(5)
            .enumerate()
        {
            sc.flap(20 + k as u64 * 13, 4, 120, n.asn, n.prefixes_v4[0].prefix);
        }
        sim.schedule(&sc);
        sim.run_until(1500);
        for m in sim
            .manifest()
            .iter()
            .filter(|m| m.dump_type == DumpType::Updates)
        {
            let bytes = std::fs::read(&m.path).unwrap();
            let (recs, err) = MrtReader::new(&bytes[..]).read_all();
            assert!(err.is_none());
            let ts: Vec<u32> = recs.iter().map(|r| r.timestamp).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(
                ts,
                sorted,
                "timestamps out of order in {}",
                m.path.display()
            );
            // Records belong to the window.
            for t in ts {
                assert!((t as u64) >= m.interval_start && (t as u64) < m.interval_end());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_feed_tables_are_smaller() {
        let cp = small_world(5);
        let transit = cp.transit_vp_candidates();
        let specs = vec![CollectorSpec {
            name: "rrc00".into(),
            project: crate::project::RIS,
            vps: vec![
                VpSpec {
                    asn: transit[0],
                    full_feed: true,
                },
                VpSpec {
                    asn: transit[0],
                    full_feed: false,
                },
            ],
        }];
        let dir = tmpdir("partial");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        sim.run_until(5);
        let full = sim.collectors[0].vps[0].table.len();
        let partial = sim.collectors[0].vps[1].table.len();
        assert!(full > partial, "full={full} partial={partial}");
        assert!(partial > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn session_reset_emits_state_changes_and_reannouncement() {
        let cp = small_world(6);
        let specs = one_collector(&cp);
        let vp = specs[0].vps[0].asn;
        let dir = tmpdir("sess");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        sim.schedule_session_reset(50, 0, vp, 100);
        sim.run_until(600);
        let upd = sim
            .manifest()
            .iter()
            .find(|m| m.dump_type == DumpType::Updates && m.interval_start == 0)
            .unwrap();
        let bytes = std::fs::read(&upd.path).unwrap();
        let (recs, _) = MrtReader::new(&bytes[..]).read_all();
        let mut state_changes = 0;
        let mut announcements = 0;
        for r in &recs {
            match &r.body {
                mrt::MrtBody::Bgp4mp(Bgp4mp::StateChange { peer_asn, .. }) if *peer_asn == vp => {
                    state_changes += 1
                }
                mrt::MrtBody::Bgp4mp(Bgp4mp::Message {
                    peer_asn,
                    message: BgpMessage::Update(u),
                    ..
                }) if *peer_asn == vp => announcements += u.announcements.len(),
                _ => {}
            }
        }
        // Down (1) + bring-up (5) transitions.
        assert_eq!(state_changes, 6);
        assert!(announcements > 0, "no re-announcement burst");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_fault_produces_corrupt_files() {
        let cp = small_world(7);
        let specs = one_collector(&cp);
        let dir = tmpdir("trunc");
        let mut cfg = SimConfig::new(&dir);
        cfg.faults.truncate_prob = 1.0;
        let mut sim = Simulator::new(cp, specs, cfg);
        sim.run_until(5);
        assert!(sim.stats().truncated_files > 0);
        let rib = sim
            .manifest()
            .iter()
            .find(|m| m.dump_type == DumpType::Rib)
            .unwrap();
        let bytes = std::fs::read(&rib.path).unwrap();
        let (_, err) = MrtReader::new(&bytes[..]).read_all();
        assert!(err.is_some(), "truncated file parsed cleanly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rib_skip_fault_loses_dumps_silently() {
        let cp = small_world(11);
        let specs = one_collector(&cp);
        let dir = tmpdir("skiprib");
        let mut cfg = SimConfig::new(&dir);
        cfg.emit_updates = false;
        cfg.faults.skip_rib_prob = 1.0;
        let mut sim = Simulator::new(cp, specs, cfg);
        sim.run_until(9 * 3600); // would normally dump 2 RIS RIBs
        assert!(sim.stats().skipped_ribs >= 2);
        assert!(sim.manifest().iter().all(|m| m.dump_type != DumpType::Rib));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn force_rib_dump_tracks_growth() {
        let topo = Arc::new(generate(&TopologyConfig {
            months: 24,
            ..TopologyConfig::tiny(8)
        }));
        let spm = 1000u64;
        let cp = ControlPlane::new(topo, spm);
        let specs = standard_collectors(&cp, 1, 0, 3, 1.0, 5);
        let dir = tmpdir("growth");
        let mut cfg = SimConfig::new(&dir);
        cfg.emit_updates = false;
        cfg.emit_ribs = false;
        let mut sim = Simulator::new(cp, specs, cfg);
        sim.force_rib_dump(0);
        sim.force_rib_dump(24 * spm);
        let ribs: Vec<_> = sim
            .manifest()
            .iter()
            .filter(|m| m.dump_type == DumpType::Rib)
            .collect();
        assert_eq!(ribs.len(), 2);
        assert!(
            ribs[1].size > ribs[0].size,
            "RIB did not grow: {} -> {}",
            ribs[0].size,
            ribs[1].size
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_index_sees_files_as_published() {
        let cp = small_world(9);
        let specs = one_collector(&cp);
        let dir = tmpdir("live");
        let mut sim = Simulator::new(cp, specs, SimConfig::new(&dir));
        let idx = Index::shared();
        sim.attach_index(idx.clone());
        sim.run_until(700);
        assert_eq!(idx.len(), sim.manifest().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn standard_collectors_shape() {
        let cp = small_world(10);
        let specs = standard_collectors(&cp, 2, 3, 5, 0.5, 1);
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[0].name, "rrc00");
        assert_eq!(specs[2].name, "route-views2");
        assert!(specs.iter().all(|s| s.vps.len() == 5));
        // VPs within a collector are unique.
        for s in &specs {
            let mut asns: Vec<_> = s.vps.iter().map(|v| v.asn).collect();
            asns.dedup();
            assert_eq!(asns.len(), s.vps.len());
        }
    }
}
