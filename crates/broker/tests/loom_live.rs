//! loom-lite model tests: LiveCursor exactly-once delivery under
//! concurrent re-publication.
//!
//! Run with `cargo test -p broker --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use broker::index::{DumpMeta, DumpType, Index, Query};
use broker::lease::LeaseTable;
use broker::live::{LiveCursor, ReleasePolicy};
use bsync::model::{explore, Builder};
use bsync::time::Clock;
use bsync::Mutex;

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

fn meta(start: u64) -> DumpMeta {
    DumpMeta {
        project: "ris".into(),
        collector: "rrc01".into(),
        dump_type: DumpType::Updates,
        interval_start: start,
        duration: 50,
        path: PathBuf::from(format!("/tmp/rrc01-{start}")),
        available_at: start,
        size: 1,
    }
}

/// Two publishers register the SAME dump concurrently (re-publication)
/// while a poller drives the live cursor through its lease. No
/// interleaving may deliver the dump twice — or lose it.
#[test]
fn live_cursor_is_exactly_once_under_concurrent_republication() {
    let report = explore(&budget(), || {
        let idx = Arc::new(Index::with_window(100));
        let table = Arc::new(LeaseTable::immortal(Clock::manual(0)));
        let id = table.open(LiveCursor::new(
            idx.clone(),
            Query::default(),
            ReleasePolicy::Watermark,
        ));
        let publisher = |idx: Arc<Index>| {
            move || {
                idx.register(meta(10));
                idx.advance_watermark(1_000);
            }
        };
        let p1 = bsync::thread::spawn_named("pub1", publisher(idx.clone()));
        let p2 = bsync::thread::spawn_named("pub2", publisher(idx.clone()));
        // Poll concurrently with publication, then drain after both
        // publishers finished (the watermark is then certainly past
        // the dump's window, so it must have been released).
        let mut seen: Vec<DumpMeta> = Vec::new();
        for _ in 0..2 {
            if let Some(poll) = table.with_lease(id, |c| c.poll(u64::MAX)) {
                seen.extend(poll.files);
                seen.extend(poll.late);
            }
        }
        p1.join().expect("publisher 1 ran");
        p2.join().expect("publisher 2 ran");
        for _ in 0..3 {
            if let Some(poll) = table.with_lease(id, |c| c.poll(u64::MAX)) {
                seen.extend(poll.files);
                seen.extend(poll.late);
            }
        }
        assert_eq!(
            seen.len(),
            1,
            "re-published dump delivered {} times (want exactly once)",
            seen.len()
        );
    })
    .expect("no interleaving may break exactly-once delivery");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: a delivered-set that is consulted and updated in two
/// separate lock acquisitions. Two pollers draining the same session
/// can both see "not yet delivered" and both deliver — the checker
/// must find it and reproduce it from the seed.
#[test]
fn canary_split_delivered_set_double_delivers() {
    let racy = || {
        let delivered: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let poller = |delivered: Arc<Mutex<HashSet<u64>>>, out: Arc<Mutex<Vec<u64>>>| {
            move || {
                // BUG: membership test and insertion are separate
                // critical sections — a concurrent poller interleaves.
                let fresh = !delivered.lock().contains(&10);
                if fresh {
                    delivered.lock().insert(10);
                    out.lock().push(10);
                }
            }
        };
        let other = bsync::thread::spawn_named("poller", poller(delivered.clone(), out.clone()));
        poller(delivered.clone(), out.clone())();
        other.join().expect("poller ran");
        assert!(
            out.lock().len() <= 1,
            "dump delivered twice — split delivered-set race"
        );
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the seeded race");
    assert!(
        failure.kind.contains("delivered twice"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the race");
    assert!(again.kind.contains("delivered twice"));
}
