//! loom-lite model tests: mirror demotion racing an in-flight pick.
//!
//! Run with `cargo test -p broker --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::sync::Arc;

use broker::mirror::{MirrorPolicy, MirrorSet};
use bsync::atomic::{AtomicU64, Ordering};
use bsync::model::{explore, Builder};

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// On-disk fixture shared by every explored execution (the model
/// closure re-runs; the filesystem is read-only during exploration).
fn fixture(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("loom_mirror_{tag}_{}", std::process::id()));
    let primary = base.join("primary");
    let mirror = base.join("m0");
    std::fs::create_dir_all(&primary).expect("fixture dir");
    std::fs::create_dir_all(&mirror).expect("fixture dir");
    std::fs::write(primary.join("a.mrt"), b"x").expect("fixture file");
    std::fs::write(mirror.join("a.mrt"), b"x").expect("fixture file");
    (base, primary, mirror)
}

/// A health checker demotes the preferred mirror while a poller is
/// mid-`pick`. The in-flight pick may land on either server, but it
/// must always land on an existing file, and any pick that starts
/// after the demotion completed must avoid the demoted mirror.
#[test]
fn demote_mid_pick_always_falls_back_cleanly() {
    let (base, primary, mirror) = fixture("model");
    let report = explore(&budget(), move || {
        let set = Arc::new(MirrorSet::new(
            primary.clone(),
            vec![mirror.clone()],
            MirrorPolicy::Preferred(0),
        ));
        let checker = {
            let set = set.clone();
            bsync::thread::spawn_named("health", move || set.set_online(0, false))
        };
        let picked = set.pick(&primary.join("a.mrt"));
        checker.join().expect("health checker ran");
        assert!(
            picked.exists(),
            "in-flight pick returned a non-existent path: {picked:?}"
        );
        // The demotion has completed: from here on the mirror must
        // never be selected again.
        let after = set.pick(&primary.join("a.mrt"));
        assert!(
            after.starts_with(&primary),
            "pick selected a demoted mirror: {after:?}"
        );
        assert!(!set.is_online(0));
    })
    .expect("no interleaving may route past a completed demotion");
    assert!(report.iterations > 1, "must explore multiple interleavings");
    std::fs::remove_dir_all(&base).ok();
}

/// Canary: per-mirror hit accounting done as a load-then-store on a
/// shared counter. Two concurrent picks can lose an update — the
/// checker must find the lost update and reproduce it from the seed.
#[test]
fn canary_unsynchronized_hit_counter_loses_updates() {
    let racy = || {
        let hits = Arc::new(AtomicU64::new(0));
        let pick = |hits: Arc<AtomicU64>| {
            move || {
                // BUG: read-modify-write without atomicity.
                let seen = hits.load(Ordering::SeqCst);
                hits.store(seen + 1, Ordering::SeqCst);
            }
        };
        let other = bsync::thread::spawn_named("picker", pick(hits.clone()));
        pick(hits.clone())();
        other.join().expect("picker ran");
        assert_eq!(hits.load(Ordering::SeqCst), 2, "hit counter lost an update");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the lost update");
    assert!(
        failure.kind.contains("lost an update"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the lost update");
    assert!(again.kind.contains("lost an update"));
}
