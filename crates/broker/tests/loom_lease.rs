//! loom-lite model tests: lease TTL expiry racing resume-by-id.
//!
//! Run with `cargo test -p broker --features loom-lite`. Each
//! scenario has a correctness check (the checker must find NO failing
//! schedule) and a canary with a deliberately seeded race the checker
//! MUST catch — and reproduce from its printed schedule seed
//! (`LOOM_LITE_SCHEDULE`).
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use broker::lease::LeaseTable;
use bsync::atomic::{AtomicU64, Ordering};
use bsync::model::{explore, Builder};
use bsync::time::Clock;
use bsync::Mutex;

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// A reaper advancing the clock past the TTL races a client resuming
/// its lease by id. Whatever the interleaving: the lease is accounted
/// exactly once (never double-expired, never lost AND kept), and a
/// failed resume means the lease is really gone.
#[test]
fn lease_expiry_racing_resume_is_exclusive() {
    let report = explore(&budget(), || {
        let clock = Clock::manual(0);
        let table = Arc::new(LeaseTable::new(clock.clone(), Duration::from_millis(100)));
        let id = table.open(());
        let reaper = {
            let (table, clock) = (table.clone(), clock.clone());
            bsync::thread::spawn_named("reaper", move || {
                clock.advance_millis(150);
                table.reap();
            })
        };
        let resumed = table.resume(id);
        reaper.join().expect("reaper ran");
        let c = table.counters();
        assert_eq!(c.opened, 1);
        assert!(c.expired <= 1, "lease expired twice");
        assert_eq!(
            c.expired + table.len() as u64,
            1,
            "lease lost or duplicated (expired={}, live={})",
            c.expired,
            table.len()
        );
        if !resumed {
            assert_eq!(table.len(), 0, "failed resume but the lease survived");
        }
    })
    .expect("no interleaving may break lease accounting");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: a lease table whose expiry is check-then-act across two
/// separate critical sections. Two expirers can both observe the
/// stale entry and both count it — the checker must find that
/// schedule and reproduce it from the seed.
#[test]
fn canary_check_then_act_expiry_double_counts() {
    let racy = || {
        // One lease, last active at t=0, observed at t=200, TTL 100.
        let slot = Arc::new(Mutex::new(Some(0u64)));
        let expired = Arc::new(AtomicU64::new(0));
        let expire = |slot: Arc<Mutex<Option<u64>>>, expired: Arc<AtomicU64>| {
            move || {
                // BUG: the staleness check and the removal are two
                // critical sections; another expirer can interleave.
                let stale = slot.lock().map(|last| 200 - last >= 100) == Some(true);
                if stale {
                    *slot.lock() = None;
                    expired.fetch_add(1, Ordering::SeqCst);
                }
            }
        };
        let other = bsync::thread::spawn_named("expirer", expire(slot.clone(), expired.clone()));
        expire(slot.clone(), expired.clone())();
        other.join().expect("expirer ran");
        assert!(
            expired.load(Ordering::SeqCst) <= 1,
            "lease expired twice — check-then-act race"
        );
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the seeded race");
    assert!(
        failure.kind.contains("expired twice"),
        "unexpected failure kind: {}",
        failure.kind
    );
    assert!(!failure.schedule.is_empty());
    // The printed seed must reproduce the failure deterministically.
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the race");
    assert!(again.kind.contains("expired twice"));
}
