//! Property tests on the broker: windowed pagination must be complete
//! (every matching file returned exactly once) for arbitrary archives,
//! windows and query ranges.

use std::path::PathBuf;

use broker::index::{BrokerCursor, DumpMeta, Query};
use broker::{DumpType, Index};
use proptest::prelude::*;

fn arb_meta() -> impl Strategy<Value = DumpMeta> {
    (
        0usize..3,
        prop_oneof![Just(DumpType::Rib), Just(DumpType::Updates)],
        0u64..50_000,
        0u64..2_000,
    )
        .prop_map(|(c, dump_type, start, dur)| {
            let collector = ["rrc00", "rrc01", "rv2"][c];
            DumpMeta {
                project: if collector.starts_with("rrc") {
                    "ris"
                } else {
                    "routeviews"
                }
                .into(),
                collector: collector.into(),
                dump_type,
                interval_start: start,
                duration: if dump_type == DumpType::Rib {
                    dur / 10
                } else {
                    dur
                },
                path: PathBuf::from(format!("/x/{collector}-{start}-{dur}")),
                available_at: start,
                size: 1,
            }
        })
}

proptest! {
    #[test]
    fn windowed_pagination_is_complete_and_duplicate_free(
        entries in proptest::collection::vec(arb_meta(), 0..60),
        window in 1u64..10_000,
        start in 0u64..40_000,
        span in 0u64..40_000,
    ) {
        let end = start + span;
        let idx = Index::with_window(window);
        for e in &entries {
            idx.register(e.clone());
        }
        let q = Query { start, end: Some(end), ..Default::default() };

        // Windowed pagination.
        let mut cursor = BrokerCursor { window_start: start };
        let mut got: Vec<DumpMeta> = Vec::new();
        let mut guard = 0;
        loop {
            let resp = idx.query(&q, &mut cursor, u64::MAX);
            got.extend(resp.files);
            guard += 1;
            prop_assert!(guard < 100_000, "pagination did not terminate");
            if resp.exhausted {
                break;
            }
        }

        // Oracle: direct filter.
        let mut want: Vec<DumpMeta> = entries
            .iter()
            .filter(|m| m.overlaps(start, Some(end)))
            // Files starting before the query window are attributed to
            // the first window (they overlap `start`).
            .cloned()
            .collect();

        let key = |m: &DumpMeta| {
            (m.interval_start, m.collector.clone(), m.dump_type as u8, m.duration,
             m.path.clone())
        };
        let mut got_keys: Vec<_> = got.iter().map(key).collect();
        let mut want_keys: Vec<_> = want.drain(..).map(|m| key(&m)).collect();
        got_keys.sort();
        want_keys.sort();
        prop_assert_eq!(&got_keys, &want_keys);

        // No duplicates beyond genuine duplicate registrations.
        let mut dedup = got_keys.clone();
        dedup.dedup();
        let mut want_dedup = want_keys.clone();
        want_dedup.dedup();
        prop_assert_eq!(got_keys.len() - dedup.len(), want_keys.len() - want_dedup.len());
    }

    #[test]
    fn publication_time_monotonicity(
        entries in proptest::collection::vec(arb_meta(), 1..40),
        now1 in 0u64..60_000,
        extra in 0u64..60_000,
    ) {
        // Whatever is visible at now1 is also visible at now1+extra.
        let idx = Index::with_window(3600);
        for e in &entries {
            idx.register(e.clone());
        }
        let q = Query { start: 0, end: Some(100_000), ..Default::default() };
        let collect_at = |now: u64| {
            let mut cursor = BrokerCursor { window_start: 0 };
            let mut got = Vec::new();
            loop {
                let resp = idx.query(&q, &mut cursor, now);
                got.extend(resp.files.into_iter().map(|m| m.path));
                if resp.exhausted {
                    break;
                }
            }
            got
        };
        let early = collect_at(now1);
        let late = collect_at(now1 + extra);
        for p in &early {
            prop_assert!(late.contains(p), "{p:?} vanished as time advanced");
        }
    }
}
