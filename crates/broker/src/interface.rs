//! Data interfaces: how libBGPStream learns which files to read.
//!
//! The paper ships four: the Broker (primary), Single file, CSV file
//! and SQLite. We implement the first three
//! ([`DataInterface::Client`] is the Broker — local or served;
//! [`DataInterface::SingleFile`] and [`DataInterface::CsvFile`]
//! here); SQLite is omitted for dependency reasons — the CSV manifest
//! covers the same "local index" use case.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::client::{BrokerClient, LocalBroker};
use crate::error::BrokerError;
use crate::index::{DumpMeta, DumpType, Index};

/// Where stream meta-data comes from.
#[derive(Clone)]
pub enum DataInterface {
    /// The Broker meta-data service, behind the [`BrokerClient`]
    /// abstraction: an in-process [`LocalBroker`] or a served
    /// [`RemoteBroker`](crate::RemoteBroker) — streams cannot tell
    /// the difference.
    Client(Arc<dyn BrokerClient>),
    /// Exactly one local dump file.
    SingleFile {
        /// Dump type of the file.
        dump_type: DumpType,
        /// Path to the file.
        path: PathBuf,
        /// Nominal interval start.
        interval_start: u64,
        /// Nominal interval duration (0 for RIBs).
        duration: u64,
    },
    /// A CSV manifest:
    /// `project,collector,type,interval_start,duration,available_at,size,path`
    /// per line (`#` comments allowed).
    CsvFile(PathBuf),
}

impl DataInterface {
    /// Back-compat constructor for the pre-service API, where the
    /// Broker interface held a bare `Arc<Index>`. Wraps the index in
    /// a [`LocalBroker`] and returns [`DataInterface::Client`] — so
    /// the long-standing `DataInterface::Broker(index)` call syntax
    /// keeps compiling. Deprecated in favor of
    /// [`DataInterface::client`] (or constructing the variant
    /// directly); new code should pick its [`BrokerClient`]
    /// explicitly.
    #[allow(non_snake_case)] // historical variant-constructor syntax
    #[deprecated(
        since = "0.1.0",
        note = "construct the client explicitly: `DataInterface::client(LocalBroker::shared(index))` \
                or `BgpStreamBuilder::broker_client`"
    )]
    pub fn Broker(index: Arc<Index>) -> Self {
        DataInterface::Client(LocalBroker::shared(index))
    }

    /// The broker interface over an explicit client.
    pub fn client(client: Arc<dyn BrokerClient>) -> Self {
        DataInterface::Client(client)
    }

    /// Materialise this interface as a [`BrokerClient`] — the one
    /// query surface the stream layer drives. `SingleFile`/`CsvFile`
    /// build a fresh, fully-available local index behind a
    /// [`LocalBroker`]; `Client` returns the handle as-is.
    pub fn into_client(self) -> Result<Arc<dyn BrokerClient>, BrokerError> {
        match self {
            DataInterface::Client(client) => Ok(client),
            other => Ok(LocalBroker::shared(other.into_index()?)),
        }
    }

    /// Materialise this interface as an [`Index`].
    /// `SingleFile`/`CsvFile` build a fresh, fully-available index; a
    /// `Client` yields its wrapped index when it is local, and
    /// [`BrokerError::Protocol`] when the broker lives across a wire
    /// (there is no index to hand out).
    pub fn into_index(self) -> Result<Arc<Index>, BrokerError> {
        match self {
            DataInterface::Client(client) => client.local_index().ok_or_else(|| {
                BrokerError::Protocol("broker client is not backed by a local index".into())
            }),
            DataInterface::SingleFile {
                dump_type,
                path,
                interval_start,
                duration,
            } => {
                let idx = Index::shared();
                // A single-file interface names exactly one file; if
                // that file cannot be stat'ed the stream would only
                // discover the problem mid-read. Fail loudly here.
                let size = std::fs::metadata(&path)
                    .map_err(|e| BrokerError::Io(format!("cannot stat {}: {e}", path.display())))?
                    .len();
                idx.register(DumpMeta {
                    project: "local".into(),
                    collector: "local".into(),
                    dump_type,
                    interval_start,
                    duration,
                    path,
                    available_at: 0,
                    size,
                });
                Ok(idx)
            }
            DataInterface::CsvFile(path) => {
                let idx = Index::shared();
                for meta in parse_csv_manifest(&path)? {
                    idx.register(meta);
                }
                Ok(idx)
            }
        }
    }
}

/// Parse a CSV manifest file into dump meta-data entries.
pub fn parse_csv_manifest(path: &Path) -> Result<Vec<DumpMeta>, BrokerError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| BrokerError::Io(format!("cannot read manifest {}: {e}", path.display())))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(BrokerError::Malformed(format!(
                "{}:{}: expected 8 fields, got {}",
                path.display(),
                lineno + 1,
                fields.len()
            )));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, BrokerError> {
            s.trim().parse().map_err(|e| {
                BrokerError::Malformed(format!(
                    "{}:{}: bad {what}: {e}",
                    path.display(),
                    lineno + 1
                ))
            })
        };
        out.push(DumpMeta {
            project: fields[0].trim().to_string(),
            collector: fields[1].trim().to_string(),
            dump_type: fields[2].trim().parse().map_err(|e| {
                BrokerError::Malformed(format!("{}:{}: {e}", path.display(), lineno + 1))
            })?,
            interval_start: parse_u64(fields[3], "interval_start")?,
            duration: parse_u64(fields[4], "duration")?,
            available_at: parse_u64(fields[5], "available_at")?,
            size: parse_u64(fields[6], "size")?,
            path: PathBuf::from(fields[7].trim()),
        });
    }
    Ok(out)
}

/// Serialise entries to CSV manifest format (inverse of
/// [`parse_csv_manifest`]); the collector simulator writes one of
/// these per archive so analyses can run offline.
pub fn to_csv_manifest(entries: &[DumpMeta]) -> String {
    let mut out =
        String::from("# project,collector,type,interval_start,duration,available_at,size,path\n");
    for m in entries {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            m.project,
            m.collector,
            m.dump_type,
            m.interval_start,
            m.duration,
            m.available_at,
            m.size,
            m.path.display()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BrokerCursor, Query};

    fn sample_entries() -> Vec<DumpMeta> {
        vec![
            DumpMeta {
                project: "ris".into(),
                collector: "rrc01".into(),
                dump_type: DumpType::Rib,
                interval_start: 1000,
                duration: 0,
                path: PathBuf::from("/data/rrc01/rib.1000.mrt"),
                available_at: 1600,
                size: 5_000,
            },
            DumpMeta {
                project: "routeviews".into(),
                collector: "rv2".into(),
                dump_type: DumpType::Updates,
                interval_start: 900,
                duration: 900,
                path: PathBuf::from("/data/rv2/updates.900.mrt"),
                available_at: 2100,
                size: 2_000,
            },
        ]
    }

    #[test]
    fn csv_roundtrip() {
        let entries = sample_entries();
        let csv = to_csv_manifest(&entries);
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.csv");
        std::fs::write(&path, csv).unwrap();
        let back = parse_csv_manifest(&path).unwrap();
        assert_eq!(back, entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_rejects_malformed_with_typed_errors() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "ris,rrc01,ribs,notanumber,0,0,0,/x\n").unwrap();
        assert!(matches!(
            parse_csv_manifest(&path),
            Err(BrokerError::Malformed(_))
        ));
        std::fs::write(&path, "too,few,fields\n").unwrap();
        assert!(matches!(
            parse_csv_manifest(&path),
            Err(BrokerError::Malformed(_))
        ));
        std::fs::write(&path, "ris,rrc01,frobs,1,0,0,0,/x\n").unwrap();
        assert!(matches!(
            parse_csv_manifest(&path),
            Err(BrokerError::Malformed(_))
        ));
        // An unreadable manifest is I/O, not parse.
        assert!(matches!(
            parse_csv_manifest(&dir.join("absent.csv")),
            Err(BrokerError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        std::fs::write(&path, "# header\n\nris,rrc01,ribs,1,0,2,3,/x\n").unwrap();
        let entries = parse_csv_manifest(&path).unwrap();
        assert_eq!(entries.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_interface_builds_index() {
        let dir = std::env::temp_dir().join(format!("bgpstream-sf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("u.mrt");
        std::fs::write(&file, [0u8; 32]).unwrap();
        let iface = DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path: file,
            interval_start: 50,
            duration: 300,
        };
        let idx = iface.into_index().unwrap();
        let mut cur = BrokerCursor { window_start: 0 };
        let q = Query {
            start: 0,
            end: Some(1000),
            ..Default::default()
        };
        let r = idx.query(&q, &mut cur, u64::MAX);
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].interval_start, 50);
        assert_eq!(r.files[0].size, 32, "size must come from the file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_missing_file_is_an_io_error() {
        // Regression: this used to be swallowed into `size: 0`,
        // deferring the failure to mid-stream file opens.
        let iface = DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path: PathBuf::from("/nonexistent/u.mrt"),
            interval_start: 50,
            duration: 300,
        };
        match iface.clone().into_index() {
            Err(BrokerError::Io(msg)) => assert!(msg.contains("/nonexistent/u.mrt")),
            Err(other) => panic!("expected Io error, got {other:?}"),
            Ok(_) => panic!("expected Io error, got an index"),
        }
        assert!(matches!(iface.into_client(), Err(BrokerError::Io(_))));
    }

    #[test]
    fn csv_interface_builds_index() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-i-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        std::fs::write(&path, to_csv_manifest(&sample_entries())).unwrap();
        let idx = DataInterface::CsvFile(path).into_index().unwrap();
        assert_eq!(idx.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[allow(deprecated)] // deliberately exercises the back-compat shim
    fn broker_constructor_is_a_local_client() {
        // The back-compat surface: `DataInterface::Broker(idx)` still
        // works and both materialisations recover the same index.
        let idx = Index::shared();
        let iface = DataInterface::Broker(idx.clone());
        let client = iface.clone().into_client().unwrap();
        assert!(Arc::ptr_eq(&client.local_index().unwrap(), &idx));
        assert!(Arc::ptr_eq(&iface.into_index().unwrap(), &idx));
    }
}
