//! Data interfaces: how libBGPStream learns which files to read.
//!
//! The paper ships four: the Broker (primary), Single file, CSV file
//! and SQLite. We implement the first three ([`Index`] is the Broker;
//! [`DataInterface::SingleFile`] and [`DataInterface::CsvFile`] here);
//! SQLite is omitted for dependency reasons — the CSV manifest covers
//! the same "local index" use case.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::index::{DumpMeta, DumpType, Index};

/// Where stream meta-data comes from.
#[derive(Clone)]
pub enum DataInterface {
    /// The Broker meta-data service.
    Broker(Arc<Index>),
    /// Exactly one local dump file.
    SingleFile {
        /// Dump type of the file.
        dump_type: DumpType,
        /// Path to the file.
        path: PathBuf,
        /// Nominal interval start.
        interval_start: u64,
        /// Nominal interval duration (0 for RIBs).
        duration: u64,
    },
    /// A CSV manifest:
    /// `project,collector,type,interval_start,duration,available_at,size,path`
    /// per line (`#` comments allowed).
    CsvFile(PathBuf),
}

impl DataInterface {
    /// Materialise this interface as an [`Index`] so the stream layer
    /// has one query path. `SingleFile`/`CsvFile` build a fresh,
    /// fully-available index; `Broker` returns the live handle.
    pub fn into_index(self) -> Result<Arc<Index>, String> {
        match self {
            DataInterface::Broker(idx) => Ok(idx),
            DataInterface::SingleFile {
                dump_type,
                path,
                interval_start,
                duration,
            } => {
                let idx = Index::shared();
                let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                idx.register(DumpMeta {
                    project: "local".into(),
                    collector: "local".into(),
                    dump_type,
                    interval_start,
                    duration,
                    path,
                    available_at: 0,
                    size,
                });
                Ok(idx)
            }
            DataInterface::CsvFile(path) => {
                let idx = Index::shared();
                for meta in parse_csv_manifest(&path)? {
                    idx.register(meta);
                }
                Ok(idx)
            }
        }
    }
}

/// Parse a CSV manifest file into dump meta-data entries.
pub fn parse_csv_manifest(path: &Path) -> Result<Vec<DumpMeta>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(format!(
                "{}:{}: expected 8 fields, got {}",
                path.display(),
                lineno + 1,
                fields.len()
            ));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.trim()
                .parse()
                .map_err(|e| format!("{}:{}: bad {what}: {e}", path.display(), lineno + 1))
        };
        out.push(DumpMeta {
            project: fields[0].trim().to_string(),
            collector: fields[1].trim().to_string(),
            dump_type: fields[2]
                .trim()
                .parse()
                .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?,
            interval_start: parse_u64(fields[3], "interval_start")?,
            duration: parse_u64(fields[4], "duration")?,
            available_at: parse_u64(fields[5], "available_at")?,
            size: parse_u64(fields[6], "size")?,
            path: PathBuf::from(fields[7].trim()),
        });
    }
    Ok(out)
}

/// Serialise entries to CSV manifest format (inverse of
/// [`parse_csv_manifest`]); the collector simulator writes one of
/// these per archive so analyses can run offline.
pub fn to_csv_manifest(entries: &[DumpMeta]) -> String {
    let mut out =
        String::from("# project,collector,type,interval_start,duration,available_at,size,path\n");
    for m in entries {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            m.project,
            m.collector,
            m.dump_type,
            m.interval_start,
            m.duration,
            m.available_at,
            m.size,
            m.path.display()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BrokerCursor, Query};

    fn sample_entries() -> Vec<DumpMeta> {
        vec![
            DumpMeta {
                project: "ris".into(),
                collector: "rrc01".into(),
                dump_type: DumpType::Rib,
                interval_start: 1000,
                duration: 0,
                path: PathBuf::from("/data/rrc01/rib.1000.mrt"),
                available_at: 1600,
                size: 5_000,
            },
            DumpMeta {
                project: "routeviews".into(),
                collector: "rv2".into(),
                dump_type: DumpType::Updates,
                interval_start: 900,
                duration: 900,
                path: PathBuf::from("/data/rv2/updates.900.mrt"),
                available_at: 2100,
                size: 2_000,
            },
        ]
    }

    #[test]
    fn csv_roundtrip() {
        let entries = sample_entries();
        let csv = to_csv_manifest(&entries);
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.csv");
        std::fs::write(&path, csv).unwrap();
        let back = parse_csv_manifest(&path).unwrap();
        assert_eq!(back, entries);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_rejects_malformed() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "ris,rrc01,ribs,notanumber,0,0,0,/x\n").unwrap();
        assert!(parse_csv_manifest(&path).is_err());
        std::fs::write(&path, "too,few,fields\n").unwrap();
        assert!(parse_csv_manifest(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        std::fs::write(&path, "# header\n\nris,rrc01,ribs,1,0,2,3,/x\n").unwrap();
        let entries = parse_csv_manifest(&path).unwrap();
        assert_eq!(entries.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_interface_builds_index() {
        let iface = DataInterface::SingleFile {
            dump_type: DumpType::Updates,
            path: PathBuf::from("/nonexistent/u.mrt"),
            interval_start: 50,
            duration: 300,
        };
        let idx = iface.into_index().unwrap();
        let mut cur = BrokerCursor { window_start: 0 };
        let q = Query {
            start: 0,
            end: Some(1000),
            ..Default::default()
        };
        let r = idx.query(&q, &mut cur, u64::MAX);
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].interval_start, 50);
    }

    #[test]
    fn csv_interface_builds_index() {
        let dir = std::env::temp_dir().join(format!("bgpstream-csv-i-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        std::fs::write(&path, to_csv_manifest(&sample_entries())).unwrap();
        let idx = DataInterface::CsvFile(path).into_index().unwrap();
        assert_eq!(idx.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
