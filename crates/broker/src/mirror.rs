//! Mirror selection — the Broker's load-balancing layer (§3.2).
//!
//! The paper: the Broker "can transparently round-robin amongst
//! multiple mirror servers or adopt more sophisticated policies (e.g.,
//! requests sent from UC San Diego machines are normally pointed to
//! campus mirrors)", since it serves only meta-data and the bulk data
//! lives on external archives. Offline, a "mirror server" is an
//! alternative directory tree holding (a possibly partial copy of) the
//! primary archive; the broker rewrites each returned dump-file path
//! onto the mirror chosen by the policy.
//!
//! Selection is *transparent and safe*: a candidate mirror lacking the
//! requested file is skipped, falling back through the remaining
//! mirrors to the primary, so a stale or partial mirror degrades
//! throughput, never correctness. A mirror can also be **demoted**
//! ([`MirrorSet::set_online`]) — a health checker or operator marking
//! it down mid-flight — in which case selection skips it entirely
//! until it is promoted back; the primary is always online.

use std::path::{Path, PathBuf};

use bsync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How the broker chooses among mirrors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MirrorPolicy {
    /// Spread requests evenly across all mirrors plus the primary.
    RoundRobin,
    /// Always try the preferred mirror (index into the mirror list)
    /// first — the "campus mirror" policy — falling back in list
    /// order, then to the primary.
    Preferred(usize),
}

/// A set of mirror roots over one primary archive root.
pub struct MirrorSet {
    primary: PathBuf,
    mirrors: Vec<PathBuf>,
    policy: MirrorPolicy,
    cursor: AtomicU64,
    /// Per-mirror availability; a demoted mirror is skipped by
    /// [`MirrorSet::pick`] until promoted back.
    online: Vec<AtomicBool>,
    /// Per-mirror hit counters (last slot = primary), for stats and
    /// tests.
    hits: Vec<AtomicU64>,
    /// Fall-backs due to a missing file on the selected mirror.
    misses: AtomicU64,
}

impl MirrorSet {
    /// A mirror set over `primary` with the given mirror roots.
    pub fn new(primary: impl Into<PathBuf>, mirrors: Vec<PathBuf>, policy: MirrorPolicy) -> Self {
        let n = mirrors.len();
        MirrorSet {
            primary: primary.into(),
            mirrors,
            policy,
            cursor: AtomicU64::new(0),
            online: (0..n).map(|_| AtomicBool::new(true)).collect(),
            hits: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            misses: AtomicU64::new(0),
        }
    }

    /// Demote (`false`) or promote (`true`) mirror `mirror`. Safe to
    /// call from a health checker while pollers are mid-`pick`: a
    /// demoted mirror stops being selected, in-flight picks fall back
    /// through the remaining candidates. Out-of-range indices are
    /// ignored (the primary cannot be demoted).
    pub fn set_online(&self, mirror: usize, online: bool) {
        if let Some(flag) = self.online.get(mirror) {
            flag.store(online, Ordering::SeqCst);
        }
    }

    /// Whether mirror `mirror` is currently selectable.
    pub fn is_online(&self, mirror: usize) -> bool {
        self.online
            .get(mirror)
            .map(|f| f.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Number of mirrors (excluding the primary).
    pub fn len(&self) -> usize {
        self.mirrors.len()
    }

    /// True when no mirrors are configured.
    pub fn is_empty(&self) -> bool {
        self.mirrors.is_empty()
    }

    /// Requests served per mirror, primary last.
    pub fn hit_counts(&self) -> Vec<u64> {
        self.hits
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }

    /// Fall-backs caused by files missing on the selected mirror.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Rewrite `path` (a file under the primary root) onto the mirror
    /// chosen by the policy; returns the original path when the file
    /// is outside the primary root, or present on no mirror.
    pub fn pick(&self, path: &Path) -> PathBuf {
        let Ok(rel) = path.strip_prefix(&self.primary) else {
            return path.to_path_buf();
        };
        let n = self.mirrors.len();
        if n == 0 {
            self.hits[0].fetch_add(1, Ordering::Relaxed);
            return path.to_path_buf();
        }
        // Candidate order per policy; `n` stands for the primary.
        let order: Vec<usize> = match self.policy {
            MirrorPolicy::RoundRobin => {
                let start = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % (n + 1);
                (0..=n).map(|k| (start + k) % (n + 1)).collect()
            }
            MirrorPolicy::Preferred(p) => {
                let mut o: Vec<usize> = Vec::with_capacity(n + 1);
                if p < n {
                    o.push(p);
                }
                o.extend((0..n).filter(|&i| i != p));
                o.push(n);
                o
            }
        };
        let mut first = true;
        for idx in order {
            // A demoted mirror is not a candidate at all: it neither
            // serves nor counts as a fallback miss.
            if idx < n && !self.online[idx].load(Ordering::SeqCst) {
                continue;
            }
            let candidate = if idx == n {
                self.primary.join(rel)
            } else {
                self.mirrors[idx].join(rel)
            };
            if candidate.exists() {
                if !first {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                self.hits[idx].fetch_add(1, Ordering::Relaxed);
                return candidate;
            }
            first = false;
        }
        // Present nowhere (will surface as a corrupted-source record
        // downstream, exactly like a dead archive link would).
        self.misses.fetch_add(1, Ordering::Relaxed);
        path.to_path_buf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(tag: &str, mirror_files: &[&str]) -> (PathBuf, PathBuf, MirrorSet) {
        let base = std::env::temp_dir().join(format!("mirror_{tag}_{}", std::process::id()));
        let primary = base.join("primary");
        let mirror = base.join("m0");
        std::fs::create_dir_all(&primary).unwrap();
        std::fs::create_dir_all(&mirror).unwrap();
        for f in ["a.mrt", "b.mrt", "c.mrt"] {
            std::fs::write(primary.join(f), b"x").unwrap();
        }
        for f in mirror_files {
            std::fs::write(mirror.join(f), b"x").unwrap();
        }
        let set = MirrorSet::new(&primary, vec![mirror], MirrorPolicy::RoundRobin);
        (base, primary, set)
    }

    #[test]
    fn round_robin_alternates_between_mirror_and_primary() {
        let (base, primary, set) = setup("rr", &["a.mrt", "b.mrt", "c.mrt"]);
        let mut mirror_hits = 0;
        let mut primary_hits = 0;
        for f in ["a.mrt", "b.mrt", "c.mrt", "a.mrt"] {
            let p = set.pick(&primary.join(f));
            assert!(p.exists());
            if p.starts_with(&primary) {
                primary_hits += 1;
            } else {
                mirror_hits += 1;
            }
        }
        assert_eq!(mirror_hits, 2);
        assert_eq!(primary_hits, 2);
        assert_eq!(set.hit_counts().iter().sum::<u64>(), 4);
        assert_eq!(set.miss_count(), 0);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn partial_mirror_falls_back_to_primary() {
        let (base, primary, set) = setup("partial", &["a.mrt"]);
        // Force enough picks that the mirror is selected for a file it
        // lacks; the fallback must land on the primary.
        for _ in 0..4 {
            let p = set.pick(&primary.join("b.mrt"));
            assert!(p.exists());
            assert!(p.starts_with(&primary), "b.mrt only exists on primary");
        }
        assert!(set.miss_count() > 0, "mirror misses counted");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn preferred_policy_pins_to_campus_mirror() {
        let (base, primary, _) = setup("pref", &["a.mrt", "b.mrt", "c.mrt"]);
        let mirror = base.join("m0");
        let set = MirrorSet::new(&primary, vec![mirror.clone()], MirrorPolicy::Preferred(0));
        for f in ["a.mrt", "b.mrt", "c.mrt"] {
            let p = set.pick(&primary.join(f));
            assert!(p.starts_with(&mirror), "preferred mirror not used for {f}");
        }
        assert_eq!(set.hit_counts()[0], 3);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn foreign_paths_pass_through() {
        let (base, _primary, set) = setup("foreign", &[]);
        let outside = PathBuf::from("/nonexistent/elsewhere.mrt");
        assert_eq!(set.pick(&outside), outside);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn file_on_no_server_returns_original() {
        let (base, primary, set) = setup("gone", &[]);
        let missing = primary.join("zz.mrt");
        assert_eq!(set.pick(&missing), missing);
        assert!(set.miss_count() > 0);
        std::fs::remove_dir_all(&base).ok();
    }
}
