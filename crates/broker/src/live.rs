//! The incremental live cursor: a resumable query handle for
//! unbounded ("live") streams.
//!
//! Historical queries page through the index with a plain
//! [`BrokerCursor`](crate::index::BrokerCursor) and stop at the
//! interval end. A live stream never ends, and its consumer needs two
//! things the plain cursor cannot give:
//!
//! 1. **exactly-once delivery across polls** — the same dump must not
//!    be handed out twice, even when it is re-published with identical
//!    meta-data after the cursor already passed its window, and a dump
//!    published *late* (after its window was released) must still be
//!    delivered instead of being lost behind the advancing cursor;
//! 2. **a completeness watermark** — "the data is complete through T"
//!    — so downstream time bins can close deterministically instead of
//!    closing on stream EOF (which never comes).
//!
//! A [`LiveCursor`] provides both. Window release is governed by a
//! [`ReleasePolicy`]:
//!
//! * [`ReleasePolicy::Grace`] reproduces the paper's §6.2.3 trade-off:
//!   a window is released once its span plus a grace period covering
//!   the provider's maximum publication delay has elapsed on the
//!   (virtual) clock. Low machinery, but a publisher stalled beyond
//!   the grace loses completeness (late dumps are still delivered —
//!   as stragglers, out of order).
//! * [`ReleasePolicy::Watermark`] releases a window only when the
//!   provider's explicit publication watermark
//!   ([`Index::advance_watermark`]) has passed the window end. Any
//!   fault schedule — delays, stalls, out-of-order publication —
//!   holds the watermark (and therefore release) back rather than
//!   dropping data, which is what makes live output provably
//!   byte-identical to a historical run over the final archive.

use std::sync::Arc;
use std::time::Duration;

use crate::index::{DumpMeta, Index, Query};

/// When a live window may be released to the consumer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReleasePolicy {
    /// Release window `[w, w+span)` once `now >= w + span + grace`
    /// (grace in virtual seconds, covering the maximum publication
    /// delay).
    Grace(u64),
    /// Release window `[w, w+span)` once the index's publication
    /// watermark reaches `w + span`.
    Watermark,
}

/// One poll's outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LivePoll {
    /// Files of the window released by this poll (at most one window
    /// advances per poll, so batches group exactly as a historical
    /// windowed query would).
    pub files: Vec<DumpMeta>,
    /// Dumps that surfaced *behind* the cursor since the last poll:
    /// late publications under [`ReleasePolicy::Grace`]. Delivered
    /// exactly once, but out of window order — the consumer decides
    /// how to merge them (the stream admits them into its current
    /// merge).
    pub late: Vec<DumpMeta>,
    /// True when a window boundary was crossed (even if it held no
    /// files); the caller should poll again before blocking.
    pub advanced: bool,
    /// Everything with `interval_start` below this has either been
    /// delivered or will surface only in `late`; downstream bins with
    /// `end <= released_through` can close.
    pub released_through: u64,
}

/// Resumable live query handle over one [`Index`]. See the
/// [module docs](self).
pub struct LiveCursor {
    index: Arc<Index>,
    query: Query,
    policy: ReleasePolicy,
    /// Start of the next unreleased window.
    window_start: u64,
    /// Positional delivered-set over the index's append-only entry
    /// list: entry `i` delivered iff `delivered[i]`.
    delivered: Vec<bool>,
    /// Leading-prefix skip hint over `delivered` (see
    /// [`Index::scan_undelivered`]): steady-state polls scan only
    /// entries published since the last poll.
    frontier: usize,
}

impl LiveCursor {
    /// A cursor over `index` for `query` (whose `end` is ignored —
    /// live cursors never exhaust). Delivery starts at `query.start`.
    pub fn new(index: Arc<Index>, query: Query, policy: ReleasePolicy) -> Self {
        let window_start = query.start;
        LiveCursor {
            index,
            query,
            policy,
            window_start,
            delivered: Vec::new(),
            frontier: 0,
        }
    }

    /// The completeness watermark: everything with `interval_start`
    /// below this has been released (modulo `late` stragglers).
    pub fn released_through(&self) -> u64 {
        self.window_start
    }

    /// Whether the next window can be released at virtual time `now`.
    fn releasable(&self, now: u64) -> bool {
        if self.window_start == u64::MAX {
            // Feed declared complete and fully released: no further
            // windows exist; surprise registrations (a provider
            // breaking its own completeness claim) still surface
            // through the straggler sweep.
            return false;
        }
        let w_end = self.window_start.saturating_add(self.index.window());
        match self.policy {
            ReleasePolicy::Grace(grace) => now >= w_end.saturating_add(grace),
            ReleasePolicy::Watermark => self.index.watermark() >= w_end,
        }
    }

    /// One incremental poll at virtual time `now`: release at most one
    /// window (collecting its files), then sweep for stragglers behind
    /// the cursor. Every dump is delivered exactly once per cursor, no
    /// matter how often it is re-published.
    pub fn poll(&mut self, now: u64) -> LivePoll {
        // Visibility gate: under the grace policy, `available_at`
        // models the provider's publication delay against the clock.
        // Under watermark release the watermark itself vouches that
        // covered dumps are published — registration IS publication —
        // so clock-gating them again would only race a publisher that
        // registers before its driver advances the shared clock.
        let vis_now = match self.policy {
            ReleasePolicy::Grace(_) => now,
            ReleasePolicy::Watermark => u64::MAX,
        };
        let mut out = LivePoll::default();
        if self.releasable(now) {
            let w_end = self.window_start.saturating_add(self.index.window());
            out.files = self.index.scan_undelivered(
                &self.query,
                &mut self.delivered,
                &mut self.frontier,
                w_end,
                vis_now,
            );
            self.window_start = w_end;
            out.advanced = true;
            // Feed-complete short-circuit: a provider that parked the
            // watermark at `u64::MAX` has declared "nothing more,
            // ever". Once no matching dump remains at or beyond the
            // cursor, stepping window by window through the empty
            // eternity is meaningless — jump the watermark to the end
            // of time so consumers see `released_through == u64::MAX`
            // and can treat the session as complete. (Data windows
            // still release one per poll first, preserving historical
            // batching.)
            if self.policy == ReleasePolicy::Watermark
                && self.index.watermark() == u64::MAX
                && !self
                    .index
                    .has_entry_at_or_after(&self.query, self.window_start)
            {
                self.window_start = u64::MAX;
            }
        } else {
            // No window released: sweep for dumps that appeared behind
            // the cursor since the last poll (late publications past
            // the grace, or re-publications — the latter dedup away).
            out.late = self.index.scan_undelivered(
                &self.query,
                &mut self.delivered,
                &mut self.frontier,
                self.window_start,
                vis_now,
            );
        }
        out.released_through = self.window_start;
        out
    }

    /// Block until the index changes (new publication or watermark
    /// advance) past `last_version`, or `timeout` elapses. Sugar over
    /// [`Index::wait_for_new`] so live consumers need only the cursor.
    pub fn wait(&self, last_version: u64, timeout: Duration) -> bool {
        self.index.wait_for_new(last_version, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DumpType;
    use std::path::PathBuf;

    fn meta(collector: &str, start: u64, avail: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: collector.into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: 300,
            path: PathBuf::from(format!("/tmp/{collector}-{start}")),
            available_at: avail,
            size: 100,
        }
    }

    fn cursor(index: &Arc<Index>, policy: ReleasePolicy) -> LiveCursor {
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        LiveCursor::new(index.clone(), q, policy)
    }

    #[test]
    fn grace_policy_releases_window_after_span_plus_grace() {
        let idx = Arc::new(Index::with_window(3600));
        idx.register(meta("rrc01", 0, 400));
        idx.register(meta("rrc01", 300, 700));
        let mut cur = cursor(&idx, ReleasePolicy::Grace(500));
        // Before span+grace: nothing releases.
        let p = cur.poll(3600);
        assert!(!p.advanced && p.files.is_empty() && p.late.is_empty());
        assert_eq!(p.released_through, 0);
        // At 4100 the window [0, 3600) is complete per the grace model.
        let p = cur.poll(4100);
        assert!(p.advanced);
        assert_eq!(p.files.len(), 2);
        assert_eq!(p.released_through, 3600);
    }

    #[test]
    fn watermark_policy_ignores_clock_and_follows_provider() {
        let idx = Arc::new(Index::with_window(3600));
        idx.register(meta("rrc01", 0, 10));
        let mut cur = cursor(&idx, ReleasePolicy::Watermark);
        // Clock far ahead, but the provider has not vouched for the
        // window: a stalled publisher must hold release back.
        let p = cur.poll(u64::MAX);
        assert!(!p.advanced && p.files.is_empty());
        idx.advance_watermark(3600);
        let p = cur.poll(u64::MAX);
        assert!(p.advanced);
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.released_through, 3600);
    }

    #[test]
    fn one_window_per_poll_preserves_historical_batching() {
        let idx = Arc::new(Index::with_window(3600));
        idx.register(meta("rrc01", 0, 0));
        idx.register(meta("rrc01", 3600, 3600));
        idx.advance_watermark(7200);
        let mut cur = cursor(&idx, ReleasePolicy::Watermark);
        let p1 = cur.poll(u64::MAX);
        assert!(p1.advanced);
        assert_eq!(p1.files.len(), 1);
        assert_eq!(p1.files[0].interval_start, 0);
        let p2 = cur.poll(u64::MAX);
        assert!(p2.advanced);
        assert_eq!(p2.files.len(), 1);
        assert_eq!(p2.files[0].interval_start, 3600);
    }

    #[test]
    fn republished_dump_after_cursor_passed_is_delivered_exactly_once() {
        // Regression (companion to index::tests::
        // live_query_never_skips_gaps): a dump re-published with
        // identical DumpMeta after the live cursor already released
        // its window used to be a correctness trap — a plain windowed
        // query never revisits the window (losing it), while a naive
        // rescan would deliver it twice.
        let idx = Arc::new(Index::with_window(3600));
        let m = meta("rrc01", 0, 100);
        idx.register(m.clone());
        let mut cur = cursor(&idx, ReleasePolicy::Grace(100));
        let p = cur.poll(3700);
        assert_eq!(p.files, vec![m.clone()]);
        // Re-publish the very same dump, well after the cursor moved on.
        idx.register(m.clone());
        for now in [3800u64, 7400, 11_000] {
            let p = cur.poll(now);
            assert!(
                p.files.iter().chain(p.late.iter()).count() == 0,
                "duplicate delivered at now={now}: {p:?}"
            );
        }
    }

    #[test]
    fn late_publication_behind_cursor_surfaces_as_straggler_once() {
        let idx = Arc::new(Index::with_window(3600));
        let mut cur = cursor(&idx, ReleasePolicy::Grace(100));
        assert!(cur.poll(3700).advanced); // window [0,3600) released empty
                                          // A dump for that window published far beyond the grace.
        let m = meta("rrc01", 300, 5000);
        idx.register(m.clone());
        let p = cur.poll(5000);
        assert_eq!(p.late, vec![m]);
        assert!(p.files.is_empty());
        // ...and never again.
        assert!(cur.poll(5100).late.is_empty());
    }

    #[test]
    fn distinct_metas_same_dump_time_both_deliver() {
        // Dedup keys on the whole DumpMeta: two different files for
        // the same (collector, window) — e.g. a corrected re-upload
        // under a new path — are distinct publications.
        let idx = Arc::new(Index::with_window(3600));
        let a = meta("rrc01", 0, 100);
        let mut b = meta("rrc01", 0, 100);
        b.path = PathBuf::from("/tmp/rrc01-0.retry");
        idx.register(a);
        idx.register(b);
        let mut cur = cursor(&idx, ReleasePolicy::Grace(0));
        let p = cur.poll(3600);
        assert_eq!(p.files.len(), 2);
    }
}
