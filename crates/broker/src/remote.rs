//! [`RemoteBroker`]: the mq-backed [`BrokerClient`].
//!
//! The remote client is the other half of [`crate::service`]: it
//! encodes each call as a [`wire`](crate::wire) request on the shared
//! request topic, then blocks on its own reply topic for the response
//! carrying the matching correlation id. Two things make it behave
//! like the local client from the stream layer's point of view:
//!
//! * **Version caching** — every response (and every events-topic
//!   frame) carries the server's index version and watermark, which
//!   the client folds into local atomics. [`BrokerClient::version`]
//!   is therefore a local load — critical, because the stream checks
//!   it once per pump step — and
//!   [`BrokerClient::wait_for_new`] blocks on the events topic
//!   exactly like local callers block on [`Index::wait_for_new`].
//! * **Busy retry** — admission-control sheds
//!   ([`BrokerError::Busy`]) are retried with doubling backoff up to
//!   [`RemoteConfig::busy_retries`] times before the error surfaces,
//!   so transient overload looks like latency, not failure.
//!
//! Lease renewal is implicit: every `poll_live` touches the lease
//! server-side. Clients that expect to go quiet longer than the
//! server's TTL call [`BrokerClient::renew_lease`] explicitly.
//!
//! [`Index::wait_for_new`]: crate::Index::wait_for_new

use std::sync::Arc;
use std::time::Duration;

use bsync::atomic::{AtomicU64, Ordering};
use bsync::time::Clock;
use bsync::Mutex;
use mq::Cluster;

use crate::client::{BrokerClient, LeaseId};
use crate::error::BrokerError;
use crate::index::{BrokerCursor, Query, Response};
use crate::live::{LivePoll, ReleasePolicy};
use crate::service::ServiceConfig;
use crate::wire::{BrokerRequest, BrokerResponse, RequestEnvelope, ResponseEnvelope};

/// Client-side tuning; topics must match the server's
/// [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// Topic requests are produced to.
    pub request_topic: String,
    /// Reply topic prefix; the client listens on
    /// `{reply_prefix}{client_id}`.
    pub reply_prefix: String,
    /// Topic carrying server change events.
    pub events_topic: String,
    /// How long one request may wait for its response before
    /// reporting [`BrokerError::Io`].
    pub timeout: Duration,
    /// How many times a [`BrokerError::Busy`] shed is retried before
    /// surfacing.
    pub busy_retries: u32,
    /// Initial retry backoff (doubles per attempt, capped at 20ms).
    pub busy_backoff: Duration,
    /// Time source for the request deadline and retry backoff.
    pub clock: Clock,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        let service = ServiceConfig::default();
        RemoteConfig {
            request_topic: service.request_topic,
            reply_prefix: service.reply_prefix,
            events_topic: service.events_topic,
            timeout: Duration::from_secs(10),
            busy_retries: 24,
            busy_backoff: Duration::from_micros(200),
            clock: Clock::system(),
        }
    }
}

/// The mq-backed [`BrokerClient`]. One instance per consuming thread
/// (requests are serialised internally; sharing one across streams
/// would serialise their broker traffic too).
pub struct RemoteBroker {
    cluster: Arc<Cluster>,
    cfg: RemoteConfig,
    client: String,
    reply_topic: String,
    next_req: AtomicU64,
    /// Next unread offset on the reply topic; under a lock because a
    /// request/response exchange must read it exclusively.
    reply_offset: Mutex<u64>,
    version: AtomicU64,
    watermark: AtomicU64,
    events_offset: AtomicU64,
    busy_shed_observed: AtomicU64,
}

impl RemoteBroker {
    /// A client named `client_id` on `cluster` with default topics.
    /// The id must be unique among concurrent clients — it names the
    /// reply topic and scopes per-client admission control.
    pub fn new(cluster: Arc<Cluster>, client_id: impl Into<String>) -> Self {
        Self::with_config(cluster, client_id, RemoteConfig::default())
    }

    /// A client with explicit topics/tuning.
    pub fn with_config(
        cluster: Arc<Cluster>,
        client_id: impl Into<String>,
        cfg: RemoteConfig,
    ) -> Self {
        let client = client_id.into();
        let reply_topic = format!("{}{}", cfg.reply_prefix, client);
        cluster.create_topic(&reply_topic, 1);
        cluster.create_topic(&cfg.events_topic, 1);
        // Start past any replies addressed to a previous incarnation
        // of this client id (crash/resume): stale correlation ids
        // would be skipped anyway, but not reading them is cheaper.
        let reply_offset = cluster.latest_offset(&reply_topic, 0);
        RemoteBroker {
            cluster,
            cfg,
            client,
            reply_topic,
            next_req: AtomicU64::new(1),
            reply_offset: Mutex::new(reply_offset),
            version: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            events_offset: AtomicU64::new(0),
            busy_shed_observed: AtomicU64::new(0),
        }
    }

    /// This client's id.
    pub fn client_id(&self) -> &str {
        &self.client
    }

    /// How many `Busy` sheds this client absorbed via retry.
    pub fn busy_sheds_observed(&self) -> u64 {
        self.busy_shed_observed.load(Ordering::Relaxed)
    }

    fn note(&self, version: u64, watermark: u64) {
        self.version.fetch_max(version, Ordering::SeqCst);
        self.watermark.fetch_max(watermark, Ordering::SeqCst);
    }

    /// Fold any unread events-topic frames into the cached
    /// version/watermark.
    fn drain_events(&self) {
        loop {
            let off = self.events_offset.load(Ordering::SeqCst);
            let msgs = self.cluster.fetch(&self.cfg.events_topic, 0, off, 64);
            if msgs.is_empty() {
                return;
            }
            let n = msgs.len() as u64;
            for m in msgs {
                if let ([version, watermark], []) = m.payload.as_chunks::<8>() {
                    self.note(u64::from_le_bytes(*version), u64::from_le_bytes(*watermark));
                }
            }
            self.events_offset.fetch_max(off + n, Ordering::SeqCst);
        }
    }

    /// One request/response exchange (no Busy retry).
    fn exchange(&self, body: BrokerRequest) -> Result<BrokerResponse, BrokerError> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let frame = RequestEnvelope {
            client: self.client.clone(),
            req_id,
            body,
        }
        .encode();
        let mut offset = self.reply_offset.lock();
        self.cluster
            .produce(&self.cfg.request_topic, &self.client, 0, frame);
        let timeout_ms = u64::try_from(self.cfg.timeout.as_millis()).unwrap_or(u64::MAX);
        let deadline = self.cfg.clock.now_millis().saturating_add(timeout_ms);
        loop {
            let msgs = self.cluster.fetch(&self.reply_topic, 0, *offset, 64);
            if msgs.is_empty() {
                let remaining =
                    Duration::from_millis(deadline.saturating_sub(self.cfg.clock.now_millis()));
                if remaining.is_zero() {
                    return Err(BrokerError::Io(format!(
                        "request {req_id} to {} timed out after {:?}",
                        self.cfg.request_topic, self.cfg.timeout
                    )));
                }
                self.cluster.wait_for(
                    &self.reply_topic,
                    0,
                    *offset,
                    remaining.min(Duration::from_millis(50)),
                );
                continue;
            }
            for msg in msgs {
                *offset = msg.offset + 1;
                let resp = ResponseEnvelope::decode(&msg.payload)?;
                self.note(resp.index_version, resp.watermark);
                if resp.req_id == req_id {
                    return Ok(resp.body);
                }
                // Anything else is a response to an older request of
                // ours (e.g. one that timed out): drop it.
            }
        }
    }

    /// Exchange with Busy retry: `make` rebuilds the request per
    /// attempt (fresh correlation id each time).
    fn request(&self, make: impl Fn() -> BrokerRequest) -> Result<BrokerResponse, BrokerError> {
        let mut backoff = self.cfg.busy_backoff;
        let mut attempt = 0;
        loop {
            match self.exchange(make())? {
                BrokerResponse::Error(BrokerError::Busy) => {
                    self.busy_shed_observed.fetch_add(1, Ordering::Relaxed);
                    if attempt >= self.cfg.busy_retries {
                        return Err(BrokerError::Busy);
                    }
                    attempt += 1;
                    self.cfg.clock.sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
                BrokerResponse::Error(e) => return Err(e),
                ok => return Ok(ok),
            }
        }
    }
}

impl BrokerClient for RemoteBroker {
    fn query(
        &self,
        query: &Query,
        cursor: &mut BrokerCursor,
        now: u64,
    ) -> Result<Response, BrokerError> {
        let window_start = cursor.window_start;
        match self.request(|| BrokerRequest::Query {
            query: query.clone(),
            window_start,
            now,
        })? {
            BrokerResponse::Query {
                files,
                exhausted,
                next_window_start,
            } => {
                cursor.window_start = next_window_start;
                Ok(Response { files, exhausted })
            }
            other => Err(BrokerError::Protocol(format!(
                "expected Query response, got {other:?}"
            ))),
        }
    }

    fn open_live(
        &self,
        query: &Query,
        policy: ReleasePolicy,
        resume: Option<LeaseId>,
    ) -> Result<LeaseId, BrokerError> {
        match self.request(|| BrokerRequest::OpenLive {
            query: query.clone(),
            policy,
            resume,
        })? {
            BrokerResponse::LiveOpened { lease } => Ok(lease),
            other => Err(BrokerError::Protocol(format!(
                "expected LiveOpened response, got {other:?}"
            ))),
        }
    }

    fn poll_live(&self, lease: LeaseId, now: u64) -> Result<LivePoll, BrokerError> {
        match self.request(|| BrokerRequest::PollLive { lease, now })? {
            BrokerResponse::Live(poll) => Ok(poll),
            other => Err(BrokerError::Protocol(format!(
                "expected Live response, got {other:?}"
            ))),
        }
    }

    fn renew_lease(&self, lease: LeaseId) -> Result<(), BrokerError> {
        match self.request(|| BrokerRequest::Renew { lease })? {
            BrokerResponse::Renewed => Ok(()),
            other => Err(BrokerError::Protocol(format!(
                "expected Renewed response, got {other:?}"
            ))),
        }
    }

    fn close_lease(&self, lease: LeaseId) -> Result<(), BrokerError> {
        match self.request(|| BrokerRequest::Close { lease })? {
            BrokerResponse::Closed => Ok(()),
            other => Err(BrokerError::Protocol(format!(
                "expected Closed response, got {other:?}"
            ))),
        }
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn wait_for_new(&self, last_version: u64, timeout: Duration) -> bool {
        self.drain_events();
        if self.version() > last_version {
            return true;
        }
        let off = self.events_offset.load(Ordering::SeqCst);
        self.cluster
            .wait_for(&self.cfg.events_topic, 0, off, timeout);
        self.drain_events();
        self.version() > last_version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{DumpMeta, DumpType, Index};
    use crate::service::{BrokerService, ServiceConfig};
    use std::path::PathBuf;

    fn meta(start: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: "rrc01".into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: 300,
            path: PathBuf::from(format!("/tmp/rrc01-{start}")),
            available_at: start,
            size: 7,
        }
    }

    #[test]
    fn remote_query_round_trip_matches_local() {
        let cluster = Cluster::shared();
        let idx = Arc::new(Index::with_window(3600));
        for k in 0..12 {
            idx.register(meta(k * 300));
        }
        let svc = BrokerService::new(cluster.clone(), idx.clone(), ServiceConfig::default());
        let handle = svc.spawn();
        let remote = RemoteBroker::new(cluster, "t-query");
        let q = Query {
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut rc = BrokerCursor { window_start: 0 };
        let mut lc = BrokerCursor { window_start: 0 };
        loop {
            let via_remote = remote.query(&q, &mut rc, u64::MAX).unwrap();
            let via_local = idx.query(&q, &mut lc, u64::MAX);
            assert_eq!(via_remote.files, via_local.files);
            assert_eq!(via_remote.exhausted, via_local.exhausted);
            assert_eq!(rc.window_start, lc.window_start);
            if via_remote.exhausted {
                break;
            }
        }
        assert!(remote.version() > 0, "responses must carry the version");
        handle.shutdown();
    }

    #[test]
    fn remote_wait_for_new_wakes_on_registration() {
        let cluster = Cluster::shared();
        let idx = Arc::new(Index::with_window(3600));
        let handle =
            BrokerService::new(cluster.clone(), idx.clone(), ServiceConfig::default()).spawn();
        let remote = RemoteBroker::new(cluster, "t-wait");
        // Prime the version cache.
        let mut c = BrokerCursor { window_start: 0 };
        remote
            .query(
                &Query {
                    start: 0,
                    end: Some(10),
                    ..Default::default()
                },
                &mut c,
                u64::MAX,
            )
            .unwrap();
        let v = remote.version();
        assert!(!remote.wait_for_new(v, Duration::from_millis(20)));
        let idx2 = idx.clone();
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            idx2.register(meta(0));
        });
        assert!(remote.wait_for_new(v, Duration::from_secs(5)));
        publisher.join().unwrap();
        assert!(remote.version() > v);
        handle.shutdown();
    }

    #[test]
    fn remote_live_lease_round_trip() {
        let cluster = Cluster::shared();
        let idx = Arc::new(Index::with_window(3600));
        idx.register(meta(0));
        idx.advance_watermark(3600);
        let handle = BrokerService::new(cluster.clone(), idx, ServiceConfig::default()).spawn();
        let remote = RemoteBroker::new(cluster, "t-live");
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        let lease = remote
            .open_live(&q, ReleasePolicy::Watermark, None)
            .unwrap();
        let p = remote.poll_live(lease, 0).unwrap();
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.released_through, 3600);
        remote.renew_lease(lease).unwrap();
        remote.close_lease(lease).unwrap();
        assert_eq!(remote.poll_live(lease, 0), Err(BrokerError::LeaseExpired));
        handle.shutdown();
    }
}
