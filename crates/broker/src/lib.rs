//! BGPStream meta-data providers (paper §3.2).
//!
//! The paper's Broker is a web service that continuously scrapes the
//! RouteViews/RIS archives, stores meta-data about every dump file in
//! an SQL database, and answers windowed HTTP queries from
//! libBGPStream ("which files match these projects/collectors/types
//! over this time range, and where are they?"). Offline we keep the
//! exact query semantics and drop the HTTP transport:
//!
//! * [`Index`] — the meta-data store. The collector simulator
//!   registers each dump file as it is *published* (nominal time plus
//!   publication delay), so live-mode consumers observe the same
//!   variable-latency behaviour the paper measures (§2, §6.2.3).
//! * [`Query`]/[`BrokerCursor`] — windowed iteration: each call
//!   returns at most one window's worth of files (overload
//!   protection), the cursor advances, and an empty final window
//!   signals end-of-stream — or, in live mode, "poll again later"
//!   (§3.3.2's blocking query mechanism).
//! * [`DataInterface`] — the alternative local interfaces the paper
//!   ships besides the Broker: a single file and a CSV manifest.
//!   (The SQLite interface is omitted — no SQL engine in the allowed
//!   dependency set; the CSV interface covers the same use case.)
//! * [`LiveCursor`] — the incremental live query handle: windowed
//!   release (grace- or watermark-driven), exactly-once delivery
//!   across polls, and a completeness watermark downstream time bins
//!   close against (§"(ii) live data processing").
//! * [`mirror::MirrorSet`] — §3.2's load balancing: the Broker
//!   "can transparently round-robin amongst multiple mirror servers or
//!   adopt more sophisticated policies"; response paths are rewritten
//!   onto the selected mirror, with transparent fallback when a mirror
//!   lacks a file.
//!
//! The broker is also *served*: the paper's deployment is a
//! multi-tenant HTTP service that many independent libBGPStream
//! processes query concurrently. We reproduce that topology over the
//! in-repo message queue instead of HTTP:
//!
//! * [`BrokerClient`] — the one query surface streams drive. Two
//!   implementations: [`LocalBroker`] (wraps an [`Index`] in-process,
//!   zero cost) and [`RemoteBroker`] (speaks the [`wire`] protocol
//!   over `mq` topics to a [`BrokerService`]). A pipeline is
//!   byte-identical through either.
//! * [`BrokerService`] — the served side: a partitioned, memoized
//!   [`service::IndexView`] answers historical windows; per-client
//!   live leases carry [`LiveCursor`] state server-side so a crashed
//!   client can resume exactly-once by lease id; admission control
//!   sheds load with an explicit [`BrokerError::Busy`].
//! * [`wire`] — the small versioned request/response protocol
//!   (hand-rolled little-endian frames; no serialization deps).
//! * [`BrokerError`] — typed errors across the public broker API.

#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod index;
pub mod interface;
pub mod lease;
pub mod live;
pub mod mirror;
pub mod remote;
pub mod service;
pub mod source;
pub mod wire;

pub use client::{BrokerClient, LeaseId, LocalBroker};
pub use error::BrokerError;
pub use index::{BrokerCursor, DumpMeta, DumpType, Index, Query, Response};
pub use interface::DataInterface;
pub use live::{LiveCursor, LivePoll, ReleasePolicy};
pub use mirror::{MirrorPolicy, MirrorSet};
pub use remote::{RemoteBroker, RemoteConfig};
pub use service::{BrokerService, ServiceConfig, ServiceHandle, ServiceStats};
pub use source::{SourceId, SourceMeta};
