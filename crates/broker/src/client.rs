//! The [`BrokerClient`] abstraction: one broker surface for local and
//! remote callers.
//!
//! In the paper the broker is an HTTP service shared by many
//! independent libBGPStream processes; in a single process it is just
//! an [`Index`] behind an `Arc`. This module makes the stream layer
//! oblivious to the difference: everything it needs — windowed
//! historical queries, live-cursor sessions, change notification — is
//! expressed once as the object-safe [`BrokerClient`] trait, with two
//! implementations:
//!
//! * [`LocalBroker`] (here) wraps an `Arc<Index>` directly. Calls are
//!   plain method dispatch plus one uncontended mutex for the lease
//!   table — effectively the pre-trait in-process fast path.
//! * [`RemoteBroker`](crate::remote::RemoteBroker) speaks the
//!   [`wire`](crate::wire) protocol over `mq` topics to a
//!   [`BrokerService`](crate::service::BrokerService), adding retry on
//!   [`BrokerError::Busy`] and lease keep-alive.
//!
//! Live sessions are *leases*: [`BrokerClient::open_live`] creates a
//! server-side [`LiveCursor`] and returns a [`LeaseId`]; subsequent
//! [`BrokerClient::poll_live`] calls advance it. Because the cursor
//! state (delivered set, window frontier) lives with the lease, a
//! client that crashes and reconnects can pass its old lease id to
//! `open_live` and resume *exactly-once* — nothing is re-delivered,
//! nothing is lost — as long as the lease has not expired.

use std::sync::Arc;
use std::time::Duration;

use bsync::time::Clock;

use crate::error::BrokerError;
use crate::index::{BrokerCursor, Index, Query, Response};
use crate::lease::LeaseTable;
use crate::live::{LiveCursor, LivePoll, ReleasePolicy};

/// Identifier of a live-cursor lease, unique per broker.
pub type LeaseId = u64;

/// The broker surface the stream layer programs against — local
/// in-process index or remote service, the calls are the same.
///
/// Object-safe on purpose: streams hold an `Arc<dyn BrokerClient>`.
pub trait BrokerClient: Send + Sync {
    /// Answer one windowed historical query (see [`Index::query`]):
    /// at most one response window of files, cursor advanced in place.
    fn query(
        &self,
        query: &Query,
        cursor: &mut BrokerCursor,
        now: u64,
    ) -> Result<Response, BrokerError>;

    /// Open a live-cursor session for `query` under `policy`,
    /// returning its lease. Passing `resume = Some(id)` re-attaches to
    /// an existing lease instead (exactly-once continuation after a
    /// client crash); an unknown or expired id yields
    /// [`BrokerError::LeaseExpired`].
    fn open_live(
        &self,
        query: &Query,
        policy: ReleasePolicy,
        resume: Option<LeaseId>,
    ) -> Result<LeaseId, BrokerError>;

    /// One live poll at virtual time `now` (see [`LiveCursor::poll`]).
    /// Touching the lease renews it.
    fn poll_live(&self, lease: LeaseId, now: u64) -> Result<LivePoll, BrokerError>;

    /// Explicit lease keep-alive for clients that go quiet between
    /// polls.
    fn renew_lease(&self, lease: LeaseId) -> Result<(), BrokerError>;

    /// Close a lease, freeing its server-side cursor. Closing an
    /// already-gone lease is not an error.
    fn close_lease(&self, lease: LeaseId) -> Result<(), BrokerError>;

    /// The broker's current index version — a cheap monotone change
    /// detector (remote implementations serve a locally cached value).
    fn version(&self) -> u64;

    /// Block until the broker's version exceeds `last_version` or
    /// `timeout` elapses; true when something new arrived.
    fn wait_for_new(&self, last_version: u64, timeout: Duration) -> bool;

    /// The underlying [`Index`] when this client is in-process
    /// (`None` across a wire). Lets [`DataInterface::into_index`]
    /// keep working on local clients.
    ///
    /// [`DataInterface::into_index`]: crate::DataInterface::into_index
    fn local_index(&self) -> Option<Arc<Index>> {
        None
    }
}

/// The in-process [`BrokerClient`]: a thin wrapper over `Arc<Index>`.
///
/// Queries delegate straight to [`Index::query`]; live leases are
/// [`LiveCursor`]s in a local table and never expire (the "server"
/// cannot outlive its only client).
pub struct LocalBroker {
    index: Arc<Index>,
    leases: LeaseTable<LiveCursor>,
}

impl LocalBroker {
    /// A local broker over `index`.
    pub fn new(index: Arc<Index>) -> Self {
        LocalBroker {
            index,
            leases: LeaseTable::immortal(Clock::system()),
        }
    }

    /// Sugar: `Arc<LocalBroker>` over `index`.
    pub fn shared(index: Arc<Index>) -> Arc<Self> {
        Arc::new(Self::new(index))
    }

    /// The wrapped index.
    pub fn index(&self) -> Arc<Index> {
        self.index.clone()
    }
}

impl BrokerClient for LocalBroker {
    fn query(
        &self,
        query: &Query,
        cursor: &mut BrokerCursor,
        now: u64,
    ) -> Result<Response, BrokerError> {
        Ok(self.index.query(query, cursor, now))
    }

    fn open_live(
        &self,
        query: &Query,
        policy: ReleasePolicy,
        resume: Option<LeaseId>,
    ) -> Result<LeaseId, BrokerError> {
        if let Some(id) = resume {
            return if self.leases.resume(id) {
                Ok(id)
            } else {
                Err(BrokerError::LeaseExpired)
            };
        }
        Ok(self
            .leases
            .open(LiveCursor::new(self.index.clone(), query.clone(), policy)))
    }

    fn poll_live(&self, lease: LeaseId, now: u64) -> Result<LivePoll, BrokerError> {
        self.leases
            .with_lease(lease, |cursor| cursor.poll(now))
            .ok_or(BrokerError::LeaseExpired)
    }

    fn renew_lease(&self, lease: LeaseId) -> Result<(), BrokerError> {
        if self.leases.touch(lease) {
            Ok(())
        } else {
            Err(BrokerError::LeaseExpired)
        }
    }

    fn close_lease(&self, lease: LeaseId) -> Result<(), BrokerError> {
        self.leases.close(lease);
        Ok(())
    }

    fn version(&self) -> u64 {
        self.index.version()
    }

    fn wait_for_new(&self, last_version: u64, timeout: Duration) -> bool {
        self.index.wait_for_new(last_version, timeout)
    }

    fn local_index(&self) -> Option<Arc<Index>> {
        Some(self.index.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{DumpMeta, DumpType};
    use std::path::PathBuf;

    fn meta(start: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: "rrc01".into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: 300,
            path: PathBuf::from(format!("/tmp/rrc01-{start}")),
            available_at: start,
            size: 1,
        }
    }

    #[test]
    fn local_broker_query_matches_index() {
        let idx = Index::shared();
        idx.register(meta(0));
        let client = LocalBroker::new(idx.clone());
        let q = Query {
            start: 0,
            end: Some(1000),
            ..Default::default()
        };
        let mut c1 = BrokerCursor { window_start: 0 };
        let mut c2 = BrokerCursor { window_start: 0 };
        let via_client = client.query(&q, &mut c1, u64::MAX).unwrap();
        let via_index = idx.query(&q, &mut c2, u64::MAX);
        assert_eq!(via_client.files, via_index.files);
        assert_eq!(via_client.exhausted, via_index.exhausted);
        assert_eq!(c1.window_start, c2.window_start);
    }

    #[test]
    fn local_lease_lifecycle_and_resume() {
        let idx = Index::shared();
        idx.register(meta(0));
        idx.advance_watermark(u64::MAX);
        let client = LocalBroker::new(idx);
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        let lease = client
            .open_live(&q, ReleasePolicy::Watermark, None)
            .unwrap();
        let p = client.poll_live(lease, 0).unwrap();
        assert_eq!(p.files.len(), 1);
        // Resume re-attaches to the very same cursor: the delivered
        // set is intact, so nothing is re-delivered.
        let resumed = client
            .open_live(&q, ReleasePolicy::Watermark, Some(lease))
            .unwrap();
        assert_eq!(resumed, lease);
        let p = client.poll_live(lease, 0).unwrap();
        assert!(p.files.is_empty() && p.late.is_empty());
        client.renew_lease(lease).unwrap();
        client.close_lease(lease).unwrap();
        assert_eq!(client.poll_live(lease, 0), Err(BrokerError::LeaseExpired));
        assert_eq!(
            client.open_live(&q, ReleasePolicy::Watermark, Some(lease)),
            Err(BrokerError::LeaseExpired)
        );
        // Closing twice is fine.
        client.close_lease(lease).unwrap();
    }

    #[test]
    fn local_index_is_recoverable() {
        let idx = Index::shared();
        let client = LocalBroker::new(idx.clone());
        assert!(Arc::ptr_eq(&client.local_index().unwrap(), &idx));
    }
}
