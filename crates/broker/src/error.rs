//! Typed broker errors.
//!
//! Every fallible broker API — materialising a [`DataInterface`],
//! parsing a CSV manifest, and the whole client/server request path —
//! reports a [`BrokerError`] instead of a bare `String`. The variants
//! mirror what a caller can actually *do* about the failure: retry
//! later ([`BrokerError::Busy`]), re-open a session
//! ([`BrokerError::LeaseExpired`]), or give up and report
//! ([`BrokerError::Io`], [`BrokerError::Malformed`],
//! [`BrokerError::Protocol`]).
//!
//! [`DataInterface`]: crate::DataInterface

/// What went wrong talking to (or standing in for) the broker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BrokerError {
    /// An I/O failure: unreadable manifest, missing dump file, a
    /// request that timed out on the wire.
    Io(String),
    /// Input that could not be parsed: a malformed manifest line, an
    /// undecodable wire frame, an unknown dump type.
    Malformed(String),
    /// The referenced live-cursor lease no longer exists on the
    /// server: it expired (the client went quiet past the TTL) or was
    /// closed. The session state is gone; the client must open a new
    /// lease (losing exactly-once continuity) or treat the stream as
    /// ended.
    LeaseExpired,
    /// The server shed the request under admission control (per-client
    /// or global in-flight bound). Transient by design: retry with
    /// backoff.
    Busy,
    /// The two sides do not speak the same protocol: unknown wire
    /// version, a response of the wrong kind for the request, or an
    /// operation the interface cannot support.
    Protocol(String),
}

impl BrokerError {
    /// Whether a fresh attempt could plausibly succeed without
    /// operator intervention: [`BrokerError::Busy`] is transient by
    /// design and [`BrokerError::Io`] covers timeouts and flaky
    /// transports worth retrying with backoff. A lapsed lease, input
    /// that failed to parse, or a protocol mismatch will fail the same
    /// way every time — retrying those only hides the fault.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, BrokerError::Busy | BrokerError::Io(_))
    }
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Io(msg) => write!(f, "broker I/O error: {msg}"),
            BrokerError::Malformed(msg) => write!(f, "malformed broker input: {msg}"),
            BrokerError::LeaseExpired => f.write_str("broker lease expired"),
            BrokerError::Busy => f.write_str("broker busy (admission control)"),
            BrokerError::Protocol(msg) => write!(f, "broker protocol error: {msg}"),
        }
    }
}

impl std::error::Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        let cases = [
            (BrokerError::Io("x".into()), "broker I/O error: x"),
            (
                BrokerError::Malformed("bad line".into()),
                "malformed broker input: bad line",
            ),
            (BrokerError::LeaseExpired, "broker lease expired"),
            (BrokerError::Busy, "broker busy (admission control)"),
            (
                BrokerError::Protocol("v9".into()),
                "broker protocol error: v9",
            ),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
            let _: &dyn std::error::Error = &err;
        }
    }

    #[test]
    fn recoverability_split_matches_variant_semantics() {
        assert!(BrokerError::Busy.is_recoverable());
        assert!(BrokerError::Io("timeout".into()).is_recoverable());
        assert!(!BrokerError::LeaseExpired.is_recoverable());
        assert!(!BrokerError::Malformed("x".into()).is_recoverable());
        assert!(!BrokerError::Protocol("v9".into()).is_recoverable());
    }
}
