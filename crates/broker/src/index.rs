//! The meta-data index and its windowed query interface.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bsync::{Condvar, Mutex};

/// RIB snapshot or Updates dump.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DumpType {
    /// A RIB snapshot (TABLE_DUMP_V2).
    Rib,
    /// An Updates dump (BGP4MP) covering an interval.
    Updates,
}

impl std::fmt::Display for DumpType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DumpType::Rib => "ribs",
            DumpType::Updates => "updates",
        })
    }
}

impl std::str::FromStr for DumpType {
    type Err = crate::error::BrokerError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ribs" | "rib" => Ok(DumpType::Rib),
            "updates" => Ok(DumpType::Updates),
            other => Err(crate::error::BrokerError::Malformed(format!(
                "unknown dump type {other:?}"
            ))),
        }
    }
}

/// Meta-data about one dump file in a data provider's archive.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DumpMeta {
    /// Collection project ("routeviews", "ris").
    pub project: String,
    /// Collector name ("rrc01", "route-views2"…).
    pub collector: String,
    /// RIB or Updates.
    pub dump_type: DumpType,
    /// Nominal start of the interval the dump covers (virtual
    /// seconds). For RIBs this is the snapshot time.
    pub interval_start: u64,
    /// Interval length (0 for RIBs).
    pub duration: u64,
    /// Where the file lives.
    pub path: PathBuf,
    /// When the file became visible in the archive (start + rotation
    /// duration + publication delay).
    pub available_at: u64,
    /// File size in bytes (for the >2 TB/yr volume accounting).
    pub size: u64,
}

impl DumpMeta {
    /// Nominal end of the covered interval.
    pub fn interval_end(&self) -> u64 {
        self.interval_start + self.duration
    }

    /// The interned identity of this dump's source. Called once per
    /// dump open; records derived from the dump carry the returned
    /// `Copy` handle instead of cloning the name strings.
    pub fn source_id(&self) -> crate::source::SourceId {
        crate::source::SourceId::intern(&self.project, &self.collector, self.dump_type)
    }

    /// Whether the dump's interval overlaps `[start, end]`
    /// (end = `None` means unbounded / live).
    pub fn overlaps(&self, start: u64, end: Option<u64>) -> bool {
        let within_end = match end {
            Some(e) => self.interval_start <= e,
            None => true,
        };
        within_end && self.interval_end() >= start
    }
}

/// A stream request, mirroring libBGPStream's meta-data filters
/// (§3.3.1): projects, collectors, dump types, time interval, live.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Query {
    /// Accepted projects; empty = all.
    pub projects: Vec<String>,
    /// Accepted collectors; empty = all.
    pub collectors: Vec<String>,
    /// Accepted dump types; empty = all.
    pub dump_types: Vec<DumpType>,
    /// Interval start (virtual seconds).
    pub start: u64,
    /// Interval end; `None` = live mode (the stream never ends).
    pub end: Option<u64>,
}

impl Query {
    /// Whether `m` matches the non-time filters.
    pub fn matches(&self, m: &DumpMeta) -> bool {
        (self.projects.is_empty() || self.projects.contains(&m.project))
            && (self.collectors.is_empty() || self.collectors.contains(&m.collector))
            && (self.dump_types.is_empty() || self.dump_types.contains(&m.dump_type))
    }
}

/// Cursor for windowed (paginated) query responses.
#[derive(Clone, Copy, Debug)]
pub struct BrokerCursor {
    /// Next window start (nominal time).
    pub window_start: u64,
}

/// One windowed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Matching dump files, ordered by (interval_start, project,
    /// collector, type).
    pub files: Vec<DumpMeta>,
    /// True when the historical part of the query is exhausted.
    pub exhausted: bool,
}

/// The window span of one Broker response: "the broker returns in each
/// response a set of dump file URLs spanning up to 2 hours of data"
/// (§3.3.4).
pub const DEFAULT_WINDOW: u64 = 2 * 3600;

struct Inner {
    entries: Vec<DumpMeta>,
    /// Every registered entry, so an exact re-publication of a dump
    /// (same `DumpMeta` field for field) is recognised and ignored —
    /// the paper's SQL store keys on dump identity, and re-inserting
    /// the same row is a no-op there too. Without this, a duplicate
    /// registration would make every historical query (and every live
    /// poll) deliver the dump twice.
    seen: std::collections::HashSet<DumpMeta>,
    /// Monotone registration counter, bumped on every publish.
    version: u64,
    /// Publication watermark: the data provider asserts that every
    /// dump with `interval_start < watermark` matching its feed has
    /// been registered. 0 = no watermark support (time/grace-based
    /// live release applies instead).
    watermark: u64,
}

/// The meta-data store. Thread-safe; live consumers can block on
/// [`Index::wait_for_new`].
pub struct Index {
    inner: Mutex<Inner>,
    cond: Condvar,
    window: u64,
    /// Optional mirror set: response paths are rewritten through it
    /// (§3.2 load balancing).
    mirrors: Mutex<Option<std::sync::Arc<crate::mirror::MirrorSet>>>,
}

impl Default for Index {
    fn default() -> Self {
        Self::new()
    }
}

impl Index {
    /// An empty index with the default response window.
    pub fn new() -> Self {
        Index::with_window(DEFAULT_WINDOW)
    }

    /// An empty index with a custom response window (seconds of data
    /// per response).
    pub fn with_window(window: u64) -> Self {
        Index {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                seen: std::collections::HashSet::new(),
                version: 0,
                watermark: 0,
            }),
            cond: Condvar::new(),
            window: window.max(1),
            mirrors: Mutex::new(None),
        }
    }

    /// Configure mirror-based load balancing: every dump-file path in
    /// subsequent responses is rewritten through `mirrors`.
    pub fn set_mirrors(&self, mirrors: std::sync::Arc<crate::mirror::MirrorSet>) {
        *self.mirrors.lock() = Some(mirrors);
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Register a published dump file (what the paper's scraper feeds
    /// into the SQL database). Wakes any live pollers. Registering the
    /// exact same `DumpMeta` again is a no-op (returns false): a
    /// re-published dump must not double every query that covers it.
    pub fn register(&self, meta: DumpMeta) -> bool {
        let mut inner = self.inner.lock();
        if !inner.seen.insert(meta.clone()) {
            return false;
        }
        inner.entries.push(meta);
        inner.version += 1;
        drop(inner);
        self.cond.notify_all();
        true
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total registered bytes (archive volume accounting).
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().entries.iter().map(|e| e.size).sum()
    }

    /// Current registration version (for change detection).
    pub fn version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Advance the publication watermark to `t` (monotone; moving
    /// backwards is a no-op). By advancing to `t` the data provider
    /// asserts "every dump with `interval_start < t` has been
    /// registered" — the live cursor's [`ReleasePolicy::Watermark`]
    /// releases broker windows off this instead of waiting out a
    /// publication-delay grace period, which is both lower-latency and
    /// stall-proof: a stalled or out-of-order publisher holds the
    /// watermark (and therefore bin closing) back rather than losing
    /// data. Wakes live pollers.
    ///
    /// [`ReleasePolicy::Watermark`]: crate::live::ReleasePolicy::Watermark
    pub fn advance_watermark(&self, t: u64) {
        let mut inner = self.inner.lock();
        if t > inner.watermark {
            inner.watermark = t;
            inner.version += 1;
            drop(inner);
            self.cond.notify_all();
        }
    }

    /// The current publication watermark ("complete through T"); 0
    /// when the provider never advanced one.
    pub fn watermark(&self) -> u64 {
        self.inner.lock().watermark
    }

    /// One consistent snapshot of everything registered at or after
    /// position `from` in the append-only entry list, together with
    /// the version and watermark it reflects. The broker service's
    /// partitioned view ([`crate::service`]) tails the index with
    /// this, so its refresh cost is O(new entries), not O(all).
    pub(crate) fn entries_from(&self, from: usize) -> (u64, u64, Vec<DumpMeta>) {
        let inner = self.inner.lock();
        let from = from.min(inner.entries.len());
        (
            inner.version,
            inner.watermark,
            inner.entries[from..].to_vec(),
        )
    }

    /// Rewrite dump-file paths through the configured mirror set
    /// (no-op without mirrors). Response paths — from [`Index::query`]
    /// or the service's cached view — go through here so mirror
    /// selection behaves identically on every query path.
    pub(crate) fn rewrite_mirrors(&self, files: &mut [DumpMeta]) {
        if let Some(mirrors) = self.mirrors.lock().clone() {
            for f in files {
                f.path = mirrors.pick(&f.path);
            }
        }
    }

    /// Whether any entry matching `query` has `interval_start >= t`
    /// (used by the live cursor to detect that a feed declared
    /// complete has nothing left beyond its cursor).
    pub(crate) fn has_entry_at_or_after(&self, query: &Query, t: u64) -> bool {
        self.inner
            .lock()
            .entries
            .iter()
            .any(|m| m.interval_start >= t && query.matches(m))
    }

    /// Scan for live delivery: every entry matching `query`, visible
    /// by `now`, with `interval_start` in `[query.start,
    /// release_before)`, whose position is not yet marked in
    /// `delivered`. Marks and returns them. Positions are stable
    /// (entries are append-only and deduped), so a dump is delivered
    /// to a given cursor exactly once no matter how often it is
    /// re-published or how late it appears.
    ///
    /// `frontier` is the cursor's skip hint: the number of leading
    /// entries already delivered. It is advanced here, so over a
    /// long-lived live session (where delivery is a growing prefix of
    /// the append-only list) the steady-state scan cost is O(new
    /// entries), not O(all entries ever registered). Entries behind
    /// the frontier left undelivered (filtered out, or still awaiting
    /// release) keep the frontier pinned and are simply rescanned.
    pub(crate) fn scan_undelivered(
        &self,
        query: &Query,
        delivered: &mut Vec<bool>,
        frontier: &mut usize,
        release_before: u64,
        now: u64,
    ) -> Vec<DumpMeta> {
        let inner = self.inner.lock();
        delivered.resize(inner.entries.len(), false);
        let mut out: Vec<DumpMeta> = Vec::new();
        for (pos, m) in inner.entries.iter().enumerate().skip(*frontier) {
            if delivered[pos] {
                continue;
            }
            // Permanently out of scope for this cursor (the query is
            // fixed for the stream's lifetime): resolve the slot so it
            // never pins the frontier.
            if !query.matches(m) || m.interval_end() < query.start {
                delivered[pos] = true;
                continue;
            }
            // Transiently undeliverable: unpublished or not released.
            if m.available_at > now || m.interval_start >= release_before {
                continue;
            }
            delivered[pos] = true;
            out.push(m.clone());
        }
        while *frontier < delivered.len() && delivered[*frontier] {
            *frontier += 1;
        }
        drop(inner);
        self.rewrite_mirrors(&mut out);
        out
    }

    /// The response window span in seconds (how much data one query
    /// returns). Live consumers use this to know when a window can be
    /// considered complete.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Answer one windowed query.
    ///
    /// Only files *published* by `now` (`available_at <= now`) are
    /// visible — this is what makes live mode see data with realistic
    /// latency. The cursor advances by at most one window. `exhausted`
    /// is true once the cursor passed `query.end` (never in live
    /// mode).
    pub fn query(&self, query: &Query, cursor: &mut BrokerCursor, now: u64) -> Response {
        let inner = self.inner.lock();
        let w_start = cursor.window_start.max(query.start);
        let w_end = w_start.saturating_add(self.window);
        let mut files: Vec<DumpMeta> = inner
            .entries
            .iter()
            .filter(|m| m.available_at <= now)
            .filter(|m| query.matches(m))
            // Window slice: a file belongs to the window containing
            // its interval_start; the query end is enforced by
            // `overlaps` (inclusive).
            .filter(|m| m.interval_start < w_end)
            .filter(|m| m.interval_end() >= w_start)
            .filter(|m| m.overlaps(query.start, query.end))
            .cloned()
            .collect();
        files.sort_by(|a, b| {
            (
                a.interval_start,
                &a.project,
                &a.collector,
                a.dump_type as u8,
            )
                .cmp(&(
                    b.interval_start,
                    &b.project,
                    &b.collector,
                    b.dump_type as u8,
                ))
        });
        // Deduplicate files that overlap multiple windows: a file is
        // attributed to the window containing its interval_start.
        files.retain(|m| m.interval_start >= w_start || cursor.window_start <= query.start);
        cursor.window_start = w_end;
        if files.is_empty() {
            if let Some(e) = query.end {
                // Historical query, empty window: fast-forward the
                // cursor over file-less time, directly to the window
                // holding the next matching file — or past the end if
                // none exists. Without this, a query whose end lies
                // far beyond the archive (e.g. "-w 0," to the end of
                // time) would page through astronomically many empty
                // windows. Live queries never skip: future publications
                // may fill the gap.
                let next = inner
                    .entries
                    .iter()
                    .filter(|m| m.available_at <= now)
                    .filter(|m| query.matches(m))
                    .filter(|m| m.interval_start >= w_end)
                    .map(|m| m.interval_start)
                    .min();
                cursor.window_start = match next {
                    Some(s) if s <= e => s,
                    _ => e.saturating_add(1),
                };
            }
        }
        let exhausted = match query.end {
            Some(e) => cursor.window_start > e,
            None => false,
        };
        drop(inner);
        self.rewrite_mirrors(&mut files);
        Response { files, exhausted }
    }

    /// Block until a new file is registered or `timeout` elapses.
    /// Returns true if something new arrived. Live-mode pollers use
    /// this instead of spinning.
    pub fn wait_for_new(&self, last_version: u64, timeout: Duration) -> bool {
        let mut inner = self.inner.lock();
        if inner.version > last_version {
            return true;
        }
        self.cond.wait_for(&mut inner, timeout);
        inner.version > last_version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(collector: &str, ty: DumpType, start: u64, dur: u64, avail: u64) -> DumpMeta {
        DumpMeta {
            project: if collector.starts_with("rrc") {
                "ris"
            } else {
                "routeviews"
            }
            .into(),
            collector: collector.into(),
            dump_type: ty,
            interval_start: start,
            duration: dur,
            path: PathBuf::from(format!("/tmp/{collector}-{start}")),
            available_at: avail,
            size: 1000,
        }
    }

    fn populated() -> Index {
        let idx = Index::with_window(3600);
        // RIS rrc01: 5-minute updates over two hours.
        for k in 0..24 {
            let s = k * 300;
            idx.register(meta("rrc01", DumpType::Updates, s, 300, s + 400));
        }
        // RouteViews rv2: 15-minute updates.
        for k in 0..8 {
            let s = k * 900;
            idx.register(meta("rv2", DumpType::Updates, s, 900, s + 1100));
        }
        // One RIB each.
        idx.register(meta("rrc01", DumpType::Rib, 0, 0, 600));
        idx.register(meta("rv2", DumpType::Rib, 0, 0, 600));
        idx
    }

    #[test]
    fn historical_query_fast_forwards_over_empty_gaps() {
        let idx = Index::with_window(3600);
        idx.register(meta("rrc01", DumpType::Updates, 0, 300, 400));
        // A lone file eons later.
        idx.register(meta(
            "rrc01",
            DumpType::Updates,
            1_000_000_000,
            300,
            1_000_000_400,
        ));
        let q = Query {
            start: 0,
            end: Some(u64::MAX - 1),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let now = u64::MAX;
        let mut queries = 0;
        let mut files = 0;
        loop {
            let r = idx.query(&q, &mut cur, now);
            queries += 1;
            files += r.files.len();
            if r.exhausted {
                break;
            }
            assert!(queries < 10, "cursor not fast-forwarding");
        }
        assert_eq!(files, 2);
        assert!(queries <= 4, "took {queries} queries");
    }

    #[test]
    fn live_query_never_skips_gaps() {
        let idx = Index::with_window(3600);
        idx.register(meta("rrc01", DumpType::Updates, 1_000_000, 300, 1_000_400));
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let r = idx.query(&q, &mut cur, u64::MAX);
        assert!(r.files.is_empty());
        assert!(!r.exhausted);
        // Cursor advanced by exactly one window: live mode must revisit
        // the gap, since a slow publisher could still fill it.
        assert_eq!(cur.window_start, 3600);
    }

    #[test]
    fn windowed_query_pages_through() {
        let idx = populated();
        let q = Query {
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let now = u64::MAX;
        let r1 = idx.query(&q, &mut cur, now);
        assert!(!r1.exhausted);
        // First window [0, 3600): 12 rrc01 updates + 4 rv2 + 2 ribs.
        assert_eq!(r1.files.len(), 12 + 4 + 2);
        let r2 = idx.query(&q, &mut cur, now);
        assert_eq!(r2.files.len(), 12 + 4);
        let r3 = idx.query(&q, &mut cur, now);
        assert!(r3.exhausted);
        assert!(r3.files.is_empty());
    }

    #[test]
    fn filters_apply() {
        let idx = populated();
        let q = Query {
            collectors: vec!["rrc01".into()],
            dump_types: vec![DumpType::Rib],
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let r = idx.query(&q, &mut cur, u64::MAX);
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].collector, "rrc01");
        assert_eq!(r.files[0].dump_type, DumpType::Rib);
    }

    #[test]
    fn project_filter() {
        let idx = populated();
        let q = Query {
            projects: vec!["ris".into()],
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let mut n = 0;
        loop {
            let r = idx.query(&q, &mut cur, u64::MAX);
            n += r.files.len();
            assert!(r.files.iter().all(|f| f.project == "ris"));
            if r.exhausted {
                break;
            }
        }
        assert_eq!(n, 24 + 1);
    }

    #[test]
    fn unpublished_files_are_invisible() {
        let idx = populated();
        let q = Query {
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        // At now=450 only files with available_at <= 450 are visible:
        // the first rrc01 update (avail 400).
        let r = idx.query(&q, &mut cur, 450);
        assert_eq!(r.files.len(), 1);
        assert_eq!(r.files[0].collector, "rrc01");
        assert_eq!(r.files[0].interval_start, 0);
    }

    #[test]
    fn ordering_is_time_then_name() {
        let idx = populated();
        let q = Query {
            start: 0,
            end: Some(3600),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let r = idx.query(&q, &mut cur, u64::MAX);
        for w in r.files.windows(2) {
            assert!(w[0].interval_start <= w[1].interval_start);
        }
    }

    #[test]
    fn live_query_never_exhausts() {
        let idx = populated();
        let q = Query {
            start: 0,
            end: None,
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        for _ in 0..10 {
            let r = idx.query(&q, &mut cur, u64::MAX);
            assert!(!r.exhausted);
        }
    }

    #[test]
    fn wait_for_new_sees_registration() {
        let idx = Arc::new(Index::new());
        let v0 = idx.version();
        let idx2 = idx.clone();
        let handle = std::thread::spawn(move || {
            idx2.register(meta("rrc01", DumpType::Rib, 0, 0, 0));
        });
        let got = idx.wait_for_new(v0, Duration::from_secs(5));
        handle.join().unwrap();
        assert!(got);
        // Nothing newer than the current version.
        let v1 = idx.version();
        assert!(!idx.wait_for_new(v1, Duration::from_millis(10)));
    }

    #[test]
    fn volume_accounting() {
        let idx = populated();
        assert_eq!(idx.total_bytes(), idx.len() as u64 * 1000);
    }

    #[test]
    fn overlap_semantics() {
        let m = meta("rrc01", DumpType::Updates, 100, 300, 0);
        assert!(m.overlaps(0, Some(150)));
        assert!(m.overlaps(400, Some(500))); // interval_end == 400
        assert!(!m.overlaps(401, Some(500)));
        assert!(m.overlaps(0, None));
        assert!(!m.overlaps(0, Some(99)));
    }

    #[test]
    fn register_ignores_exact_duplicates() {
        // Regression companion to live_query_never_skips_gaps: a dump
        // re-published with identical DumpMeta must not appear twice
        // in query responses (historical readers would double-read the
        // file; live cursors would double-deliver).
        let idx = Index::with_window(3600);
        let m = meta("rrc01", DumpType::Updates, 0, 300, 400);
        assert!(idx.register(m.clone()));
        assert!(!idx.register(m.clone()));
        assert_eq!(idx.len(), 1);
        let q = Query {
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let mut cur = BrokerCursor { window_start: 0 };
        let r = idx.query(&q, &mut cur, u64::MAX);
        assert_eq!(r.files.len(), 1);
        // A genuinely different publication (new path) still lands.
        let mut m2 = m;
        m2.path = PathBuf::from("/tmp/rrc01-0-retry");
        assert!(idx.register(m2));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn watermark_is_monotone_and_wakes_waiters() {
        let idx = Arc::new(Index::new());
        assert_eq!(idx.watermark(), 0);
        let v0 = idx.version();
        let idx2 = idx.clone();
        let handle = std::thread::spawn(move || idx2.advance_watermark(500));
        assert!(idx.wait_for_new(v0, Duration::from_secs(5)));
        handle.join().unwrap();
        assert_eq!(idx.watermark(), 500);
        // Moving backwards is a no-op and does not bump the version.
        let v1 = idx.version();
        idx.advance_watermark(100);
        assert_eq!(idx.watermark(), 500);
        assert_eq!(idx.version(), v1);
    }

    #[test]
    fn dump_type_parse() {
        assert_eq!("ribs".parse::<DumpType>().unwrap(), DumpType::Rib);
        assert_eq!("updates".parse::<DumpType>().unwrap(), DumpType::Updates);
        assert!("nope".parse::<DumpType>().is_err());
        assert_eq!(DumpType::Rib.to_string(), "ribs");
    }
}
