//! The served broker: a multi-tenant metadata service over `mq`.
//!
//! The paper's broker is one HTTP service fielding windowed meta-data
//! queries from many independent libBGPStream clients (§3.2). This
//! module stands that architecture up in-process: a
//! [`BrokerService`] consumes [`wire`](crate::wire) request frames
//! from a shared request topic, answers each client on its own reply
//! topic, and announces index changes on an events topic so remote
//! clients can block exactly like local ones do on
//! [`Index::wait_for_new`].
//!
//! Three server-side concerns distinguish a *served* broker from the
//! in-process [`Index`]:
//!
//! * **A partitioned, time-bucketed view** ([`IndexView`]) — the
//!   service answers historical queries from a snapshot sorted by the
//!   response order key, locating each window's candidates by binary
//!   search instead of the index's full scan, and memoizes fully
//!   published windows (`now == u64::MAX`) in a hot-query cache so
//!   thousands of clients paging the same popular interval cost one
//!   scan, not thousands. The cache is invalidated wholesale whenever
//!   the index version moves — which includes
//!   [`Index::advance_watermark`] — so a cached page can never
//!   outlive the data it summarises.
//! * **Cursor leases** — live sessions are server-side
//!   [`LiveCursor`]s keyed by [`crate::LeaseId`] with a wall-clock TTL. Any
//!   request touching a lease renews it; a client that goes quiet
//!   past the TTL is reaped, and later requests get
//!   [`BrokerError::LeaseExpired`]. Within the TTL a crashed client
//!   may re-attach by id ([`BrokerRequest::OpenLive`] with `resume`)
//!   and continue exactly-once: the delivered-set lives with the
//!   lease, not the connection.
//! * **Admission control** — each service step processes a bounded
//!   batch: at most [`ServiceConfig::max_inflight_global`] requests
//!   per step and [`ServiceConfig::max_inflight_per_client`] per
//!   client within it. Excess requests are answered with an explicit
//!   [`BrokerError::Busy`] instead of queueing unboundedly — load is
//!   shed visibly, and a flooding client cannot starve the rest.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bsync::atomic::{AtomicBool, Ordering};
use bsync::time::Clock;
use mq::Cluster;

use crate::error::BrokerError;
use crate::index::{BrokerCursor, DumpMeta, DumpType, Index, Query};
use crate::lease::LeaseTable;
use crate::live::LiveCursor;
use crate::wire::{BrokerRequest, BrokerResponse, RequestEnvelope, ResponseEnvelope};

/// Topic layout and service tuning.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Topic all clients produce requests to (single partition: the
    /// service is the only consumer and preserves arrival order).
    pub request_topic: String,
    /// Per-client reply topics are `{reply_prefix}{client}`.
    pub reply_prefix: String,
    /// Topic carrying `(index_version, watermark)` change events.
    pub events_topic: String,
    /// Wall-clock lease TTL: a lease untouched this long is reaped.
    pub lease_ttl: Duration,
    /// Time source for lease liveness. [`Clock::system`] in
    /// production; tests inject [`Clock::manual`] so expiry is
    /// deterministic.
    pub clock: Clock,
    /// Max requests processed per service step across all clients;
    /// the rest of the fetched batch is answered `Busy`.
    pub max_inflight_global: usize,
    /// Max requests per client within one step; excess is `Busy`.
    pub max_inflight_per_client: usize,
    /// Memoized historical pages kept before the cache is reset.
    pub cache_capacity: usize,
    /// Idle wait per loop iteration in [`BrokerService::run`]; bounds
    /// the latency of change-event publication.
    pub tick: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            request_topic: "broker.requests".into(),
            reply_prefix: "broker.replies.".into(),
            events_topic: "broker.events".into(),
            lease_ttl: Duration::from_secs(30),
            clock: Clock::system(),
            max_inflight_global: 512,
            max_inflight_per_client: 64,
            cache_capacity: 4096,
            tick: Duration::from_millis(2),
        }
    }
}

/// Counters the service accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests answered (including errors, excluding `Busy`).
    pub requests: u64,
    /// Requests shed with [`BrokerError::Busy`].
    pub busy: u64,
    /// Frames that failed to decode (no reply possible).
    pub malformed: u64,
    /// Historical pages served from the memo cache.
    pub cache_hits: u64,
    /// Historical pages that had to scan the view.
    pub cache_misses: u64,
    /// Leases opened.
    pub leases_opened: u64,
    /// Leases re-attached via resume-by-id.
    pub leases_resumed: u64,
    /// Leases reaped by TTL expiry.
    pub leases_expired: u64,
}

/// Key of one memoized historical page: the query identity plus the
/// cursor position. Only fully published reads (`now == u64::MAX`)
/// are cached, so `now` is not part of the key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct PageKey {
    projects: Vec<String>,
    collectors: Vec<String>,
    dump_types: Vec<DumpType>,
    start: u64,
    end: Option<u64>,
    window_start: u64,
}

impl PageKey {
    fn new(q: &Query, window_start: u64) -> Self {
        PageKey {
            projects: q.projects.clone(),
            collectors: q.collectors.clone(),
            dump_types: q.dump_types.clone(),
            start: q.start,
            end: q.end,
            window_start,
        }
    }
}

#[derive(Clone)]
struct CachedPage {
    files: Vec<DumpMeta>,
    exhausted: bool,
    next_window_start: u64,
}

/// The service's partitioned, time-bucketed snapshot of an [`Index`].
///
/// Entries are kept pre-sorted by the response order key
/// `(interval_start, project, collector, dump_type)`, so a window's
/// candidates are one `partition_point` range scan and come out
/// already ordered. Refresh tails the index incrementally (new
/// entries only) and re-establishes the sort stably, which preserves
/// registration order among equal keys — exactly what
/// [`Index::query`]'s stable sort produces, keeping served responses
/// byte-identical to local ones.
pub struct IndexView {
    entries: Vec<DumpMeta>,
    /// Entries consumed from the index so far (tail position).
    raw_count: usize,
    version: u64,
    watermark: u64,
    /// Longest dump duration seen; bounds how far before a window an
    /// overlapping entry's `interval_start` can lie.
    max_duration: u64,
    window: u64,
    cache: HashMap<PageKey, CachedPage>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl IndexView {
    /// An empty view over an index with response window `window`.
    pub fn new(window: u64, cache_capacity: usize) -> Self {
        IndexView {
            entries: Vec::new(),
            raw_count: 0,
            version: 0,
            watermark: 0,
            max_duration: 0,
            window: window.max(1),
            cache: HashMap::new(),
            capacity: cache_capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// `(cache_hits, cache_misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The index version this view reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The publication watermark this view reflects.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Catch up with `index`: pull entries registered since the last
    /// refresh, re-sort, and drop every cached page (any version
    /// change — new dumps or a watermark advance — invalidates).
    /// Returns true when the view changed.
    pub fn refresh(&mut self, index: &Index) -> bool {
        if index.version() == self.version {
            return false;
        }
        let (version, watermark, fresh) = index.entries_from(self.raw_count);
        self.raw_count += fresh.len();
        if !fresh.is_empty() {
            for m in &fresh {
                self.max_duration = self.max_duration.max(m.duration);
            }
            self.entries.extend(fresh);
            // Stable: equal order keys stay in registration order,
            // matching Index::query's stable sort of its scan result.
            self.entries.sort_by(|a, b| order_key(a).cmp(&order_key(b)));
        }
        self.version = version;
        self.watermark = watermark;
        self.cache.clear();
        true
    }

    /// Answer one windowed page with [`Index::query`] semantics.
    /// Paths are NOT mirror-rewritten here — the caller applies
    /// [`Index`] mirror selection after the (possibly cached) page is
    /// materialised, so cached pages stay mirror-agnostic.
    pub fn query(
        &mut self,
        query: &Query,
        cursor: &mut BrokerCursor,
        now: u64,
    ) -> (Vec<DumpMeta>, bool) {
        let cacheable = now == u64::MAX;
        let key = cacheable.then(|| PageKey::new(query, cursor.window_start));
        if let Some(k) = &key {
            if let Some(page) = self.cache.get(k) {
                self.hits += 1;
                cursor.window_start = page.next_window_start;
                return (page.files.clone(), page.exhausted);
            }
            self.misses += 1;
        }
        let entered = cursor.window_start;
        let w_start = cursor.window_start.max(query.start);
        let w_end = w_start.saturating_add(self.window);
        // Candidates: interval_start ∈ [w_start - max_duration, w_end).
        // Anything earlier cannot reach the window (interval_end =
        // interval_start + duration ≤ interval_start + max_duration <
        // w_start); anything later is attributed to a later window.
        let lo = self
            .entries
            .partition_point(|m| m.interval_start < w_start.saturating_sub(self.max_duration));
        let hi = self.entries.partition_point(|m| m.interval_start < w_end);
        let first_window = cursor.window_start <= query.start;
        let files: Vec<DumpMeta> = self.entries[lo..hi]
            .iter()
            .filter(|m| m.available_at <= now)
            .filter(|m| query.matches(m))
            .filter(|m| m.interval_end() >= w_start)
            .filter(|m| m.overlaps(query.start, query.end))
            // Window attribution: a file belongs to the window holding
            // its interval_start, except in the query's first window.
            .filter(|m| m.interval_start >= w_start || first_window)
            .cloned()
            .collect();
        cursor.window_start = w_end;
        if files.is_empty() {
            if let Some(e) = query.end {
                // Historical fast-forward over file-less time: the
                // entries are sorted by interval_start, so the first
                // visible match at or past w_end is the minimum.
                let next = self.entries
                    [self.entries.partition_point(|m| m.interval_start < w_end)..]
                    .iter()
                    .filter(|m| m.available_at <= now)
                    .find(|m| query.matches(m))
                    .map(|m| m.interval_start);
                cursor.window_start = match next {
                    Some(s) if s <= e => s,
                    _ => e.saturating_add(1),
                };
            }
        }
        let exhausted = match query.end {
            Some(e) => cursor.window_start > e,
            None => false,
        };
        if let Some(k) = key {
            if self.cache.len() >= self.capacity {
                // Plain memoization, not an LRU: on overflow the whole
                // memo resets (it will warm back up from the view).
                self.cache.clear();
            }
            debug_assert_eq!(k.window_start, entered);
            self.cache.insert(
                k,
                CachedPage {
                    files: files.clone(),
                    exhausted,
                    next_window_start: cursor.window_start,
                },
            );
        }
        (files, exhausted)
    }
}

fn order_key(m: &DumpMeta) -> (u64, &String, &String, u8) {
    (
        m.interval_start,
        &m.project,
        &m.collector,
        m.dump_type as u8,
    )
}

/// The broker server. Construct with [`BrokerService::new`], then
/// either [`BrokerService::spawn`] a thread or drive
/// [`BrokerService::step`] manually (deterministic tests).
pub struct BrokerService {
    cluster: Arc<Cluster>,
    index: Arc<Index>,
    cfg: ServiceConfig,
    view: IndexView,
    leases: Arc<LeaseTable<LiveCursor>>,
    /// Next unread offset on the request topic.
    req_offset: u64,
    /// Index version last announced on the events topic.
    announced_version: u64,
    stats: ServiceStats,
}

impl BrokerService {
    /// A service over `index`, speaking on `cluster` per `cfg`.
    /// Creates the request and events topics (idempotent).
    pub fn new(cluster: Arc<Cluster>, index: Arc<Index>, cfg: ServiceConfig) -> Self {
        cluster.create_topic(&cfg.request_topic, 1);
        cluster.create_topic(&cfg.events_topic, 1);
        let view = IndexView::new(index.window(), cfg.cache_capacity);
        let leases = Arc::new(LeaseTable::new(cfg.clock.clone(), cfg.lease_ttl));
        BrokerService {
            cluster,
            index,
            cfg,
            view,
            leases,
            req_offset: 0,
            announced_version: 0,
            stats: ServiceStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats;
        (s.cache_hits, s.cache_misses) = self.view.cache_stats();
        let leases = self.leases.counters();
        s.leases_opened = leases.opened;
        s.leases_resumed = leases.resumed;
        s.leases_expired = leases.expired;
        s
    }

    /// The shared lease table (reapable/resumable from other threads;
    /// the model tests drive it directly).
    pub fn lease_table(&self) -> Arc<LeaseTable<LiveCursor>> {
        self.leases.clone()
    }

    /// Live leases currently held.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// One deterministic service step: refresh the view, announce
    /// changes, reap expired leases, then fetch and answer one
    /// admission-bounded batch of requests. Returns the number of
    /// requests consumed from the request topic (answered or shed).
    pub fn step(&mut self) -> usize {
        self.view.refresh(&self.index);
        if self.view.version() != self.announced_version {
            self.announced_version = self.view.version();
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&self.view.version().to_le_bytes());
            payload.extend_from_slice(&self.view.watermark().to_le_bytes());
            self.cluster
                .produce(&self.cfg.events_topic, "version", 0, payload);
        }
        self.reap_expired();
        let batch = self.cluster.fetch(
            &self.cfg.request_topic,
            0,
            self.req_offset,
            self.cfg.max_inflight_global.saturating_mul(2).max(16),
        );
        if batch.is_empty() {
            return 0;
        }
        self.req_offset += batch.len() as u64;
        let mut admitted_total = 0usize;
        let mut admitted_per_client: HashMap<String, usize> = HashMap::new();
        for msg in &batch {
            let env = match RequestEnvelope::decode(&msg.payload) {
                Ok(env) => env,
                Err(_) => {
                    // Undecodable frames carry no routable client or
                    // correlation id: count and drop.
                    self.stats.malformed += 1;
                    continue;
                }
            };
            let per_client = admitted_per_client.entry(env.client.clone()).or_insert(0);
            let body = if admitted_total >= self.cfg.max_inflight_global
                || *per_client >= self.cfg.max_inflight_per_client
            {
                self.stats.busy += 1;
                BrokerResponse::Error(BrokerError::Busy)
            } else {
                admitted_total += 1;
                *per_client += 1;
                self.stats.requests += 1;
                self.handle(&env)
            };
            let reply = ResponseEnvelope {
                req_id: env.req_id,
                index_version: self.view.version(),
                watermark: self.view.watermark(),
                body,
            };
            let topic = format!("{}{}", self.cfg.reply_prefix, env.client);
            self.cluster.produce(&topic, &env.client, 0, reply.encode());
        }
        batch.len()
    }

    fn reap_expired(&mut self) {
        self.leases.reap();
    }

    fn handle(&mut self, env: &RequestEnvelope) -> BrokerResponse {
        match &env.body {
            BrokerRequest::Query {
                query,
                window_start,
                now,
            } => {
                let mut cursor = BrokerCursor {
                    window_start: *window_start,
                };
                let (mut files, exhausted) = self.view.query(query, &mut cursor, *now);
                self.index.rewrite_mirrors(&mut files);
                BrokerResponse::Query {
                    files,
                    exhausted,
                    next_window_start: cursor.window_start,
                }
            }
            BrokerRequest::OpenLive {
                query,
                policy,
                resume,
            } => {
                if let Some(id) = resume {
                    return if self.leases.resume(*id) {
                        BrokerResponse::LiveOpened { lease: *id }
                    } else {
                        BrokerResponse::Error(BrokerError::LeaseExpired)
                    };
                }
                let id =
                    self.leases
                        .open(LiveCursor::new(self.index.clone(), query.clone(), *policy));
                BrokerResponse::LiveOpened { lease: id }
            }
            BrokerRequest::PollLive { lease, now } => {
                match self.leases.with_lease(*lease, |c| c.poll(*now)) {
                    Some(poll) => BrokerResponse::Live(poll),
                    None => BrokerResponse::Error(BrokerError::LeaseExpired),
                }
            }
            BrokerRequest::Renew { lease } => {
                if self.leases.touch(*lease) {
                    BrokerResponse::Renewed
                } else {
                    BrokerResponse::Error(BrokerError::LeaseExpired)
                }
            }
            BrokerRequest::Close { lease } => {
                self.leases.close(*lease);
                BrokerResponse::Closed
            }
        }
    }

    /// Serve until `shutdown` is raised, blocking up to
    /// [`ServiceConfig::tick`] per idle iteration. Returns the final
    /// counters.
    pub fn run(mut self, shutdown: Arc<AtomicBool>) -> ServiceStats {
        while !shutdown.load(Ordering::Relaxed) {
            if self.step() == 0 {
                self.cluster
                    .wait_for(&self.cfg.request_topic, 0, self.req_offset, self.cfg.tick);
            }
        }
        // Drain what's already enqueued so shutdown is not lossy for
        // requests accepted before the flag was observed.
        while self.step() != 0 {}
        self.stats()
    }

    /// Serve on a background thread; the returned handle stops the
    /// service and joins it.
    pub fn spawn(self) -> ServiceHandle {
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = bsync::thread::spawn_named("broker-service", move || self.run(flag));
        ServiceHandle { shutdown, thread }
    }
}

/// Handle over a spawned [`BrokerService`].
pub struct ServiceHandle {
    shutdown: Arc<AtomicBool>,
    thread: bsync::thread::JoinHandle<ServiceStats>,
}

impl ServiceHandle {
    /// Raise the shutdown flag, join the service thread, and return
    /// its final counters.
    pub fn shutdown(self) -> ServiceStats {
        self.shutdown.store(true, Ordering::Relaxed);
        // xcheck:allow(unwrap) — a panicked service thread is a bug; propagate it
        self.thread.join().expect("broker service thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn meta(collector: &str, ty: DumpType, start: u64, dur: u64, avail: u64) -> DumpMeta {
        DumpMeta {
            project: if collector.starts_with("rrc") {
                "ris"
            } else {
                "routeviews"
            }
            .into(),
            collector: collector.into(),
            dump_type: ty,
            interval_start: start,
            duration: dur,
            path: PathBuf::from(format!("/tmp/{collector}-{ty:?}-{start}")),
            available_at: avail,
            size: 1000,
        }
    }

    fn scattered_index(window: u64) -> Arc<Index> {
        let idx = Arc::new(Index::with_window(window));
        for k in 0..24 {
            let s = k * 300;
            idx.register(meta("rrc01", DumpType::Updates, s, 300, s + 400));
        }
        for k in 0..8 {
            let s = k * 900;
            idx.register(meta("rv2", DumpType::Updates, s, 900, s + 1100));
        }
        idx.register(meta("rrc01", DumpType::Rib, 0, 0, 600));
        idx.register(meta("rv2", DumpType::Rib, 0, 0, 600));
        // A far-future straggler to exercise fast-forward.
        idx.register(meta("rrc01", DumpType::Updates, 1_000_000, 300, 1_000_400));
        idx
    }

    /// The view must replicate `Index::query` byte for byte: same
    /// files, same order, same cursor motion, same exhaustion — across
    /// queries, windows, and visibility times.
    #[test]
    fn view_pages_identically_to_index_query() {
        let idx = scattered_index(3600);
        let mut view = IndexView::new(idx.window(), 64);
        view.refresh(&idx);
        let queries = [
            Query {
                start: 0,
                end: Some(2_000_000),
                ..Default::default()
            },
            Query {
                projects: vec!["ris".into()],
                start: 150,
                end: Some(7200),
                ..Default::default()
            },
            Query {
                collectors: vec!["rv2".into()],
                dump_types: vec![DumpType::Updates],
                start: 900,
                end: Some(u64::MAX - 1),
                ..Default::default()
            },
            Query {
                start: 500,
                end: None,
                ..Default::default()
            },
        ];
        for q in &queries {
            for now in [u64::MAX, 1500, 0] {
                let mut ci = BrokerCursor {
                    window_start: q.start,
                };
                let mut cv = ci;
                for _ in 0..64 {
                    let want = idx.query(q, &mut ci, now);
                    let (files, exhausted) = view.query(q, &mut cv, now);
                    assert_eq!(files, want.files, "files diverged (q={q:?}, now={now})");
                    assert_eq!(exhausted, want.exhausted);
                    assert_eq!(cv.window_start, ci.window_start);
                    if want.exhausted {
                        break;
                    }
                    if q.end.is_none() && want.files.is_empty() {
                        break; // live never exhausts; stop on quiet
                    }
                }
            }
        }
    }

    #[test]
    fn view_cache_hits_repeat_queries_and_invalidates_on_change() {
        let idx = scattered_index(3600);
        let mut view = IndexView::new(idx.window(), 64);
        view.refresh(&idx);
        let q = Query {
            start: 0,
            end: Some(7200),
            ..Default::default()
        };
        let page = |view: &mut IndexView| {
            let mut c = BrokerCursor { window_start: 0 };
            view.query(&q, &mut c, u64::MAX)
        };
        let first = page(&mut view);
        let (h0, m0) = view.cache_stats();
        assert_eq!((h0, m0), (0, 1));
        let second = page(&mut view);
        assert_eq!(second, first);
        assert_eq!(view.cache_stats(), (1, 1));
        // Live-visibility queries bypass the cache.
        let mut c = BrokerCursor { window_start: 0 };
        view.query(&q, &mut c, 1234);
        assert_eq!(view.cache_stats(), (1, 1));
        // Registration invalidates: the new file must appear.
        idx.register(meta("rrc09", DumpType::Updates, 60, 300, 0));
        view.refresh(&idx);
        let third = page(&mut view);
        assert_eq!(third.0.len(), first.0.len() + 1);
        // Watermark advance also bumps the version → invalidates.
        let v = view.version();
        idx.advance_watermark(999_999_999);
        view.refresh(&idx);
        assert!(view.version() > v);
        assert_eq!(page(&mut view).0, third.0);
    }

    #[test]
    fn service_step_answers_and_sheds() {
        let cluster = Cluster::shared();
        let idx = scattered_index(3600);
        let cfg = ServiceConfig {
            max_inflight_per_client: 2,
            max_inflight_global: 8,
            ..Default::default()
        };
        let reply_prefix = cfg.reply_prefix.clone();
        let request_topic = cfg.request_topic.clone();
        let mut svc = BrokerService::new(cluster.clone(), idx, cfg);
        // One client floods 5 identical queries: 2 admitted, 3 Busy.
        for i in 0..5u64 {
            let frame = RequestEnvelope {
                client: "flood".into(),
                req_id: i,
                body: BrokerRequest::Query {
                    query: Query {
                        start: 0,
                        end: Some(3600),
                        ..Default::default()
                    },
                    window_start: 0,
                    now: u64::MAX,
                },
            }
            .encode();
            cluster.produce(&request_topic, "flood", 0, frame);
        }
        // Plus garbage that must not take the server down.
        cluster.produce(&request_topic, "x", 0, vec![1, 2, 3]);
        assert_eq!(svc.step(), 6);
        let replies = cluster.fetch(&format!("{reply_prefix}flood"), 0, 0, 16);
        assert_eq!(replies.len(), 5);
        let mut ok = 0;
        let mut busy = 0;
        for msg in replies {
            match ResponseEnvelope::decode(&msg.payload).unwrap().body {
                BrokerResponse::Query { .. } => ok += 1,
                BrokerResponse::Error(BrokerError::Busy) => busy += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!((ok, busy), (2, 3));
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.busy, 3);
        assert_eq!(stats.malformed, 1);
        // Identical admitted queries: first misses, second hits.
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
    }

    #[test]
    fn lease_expiry_is_wall_clock_ttl() {
        let cluster = Cluster::shared();
        let idx = Arc::new(Index::with_window(3600));
        let clock = Clock::manual(0);
        let cfg = ServiceConfig {
            lease_ttl: Duration::from_millis(30),
            clock: clock.clone(),
            ..Default::default()
        };
        let request_topic = cfg.request_topic.clone();
        let reply_prefix = cfg.reply_prefix.clone();
        let mut svc = BrokerService::new(cluster.clone(), idx, cfg);
        let open = RequestEnvelope {
            client: "c".into(),
            req_id: 1,
            body: BrokerRequest::OpenLive {
                query: Query::default(),
                policy: crate::live::ReleasePolicy::Watermark,
                resume: None,
            },
        };
        cluster.produce(&request_topic, "c", 0, open.encode());
        svc.step();
        let lease = match ResponseEnvelope::decode(
            &cluster.fetch(&format!("{reply_prefix}c"), 0, 0, 1)[0].payload,
        )
        .unwrap()
        .body
        {
            BrokerResponse::LiveOpened { lease } => lease,
            other => panic!("{other:?}"),
        };
        assert_eq!(svc.lease_count(), 1);
        clock.advance_millis(60);
        svc.step();
        assert_eq!(svc.lease_count(), 0);
        assert_eq!(svc.stats().leases_expired, 1);
        // Polling the reaped lease reports expiry.
        let poll = RequestEnvelope {
            client: "c".into(),
            req_id: 2,
            body: BrokerRequest::PollLive { lease, now: 0 },
        };
        cluster.produce(&request_topic, "c", 0, poll.encode());
        svc.step();
        let last = cluster.fetch(&format!("{reply_prefix}c"), 0, 1, 1);
        assert_eq!(
            ResponseEnvelope::decode(&last[0].payload).unwrap().body,
            BrokerResponse::Error(BrokerError::LeaseExpired)
        );
    }
}
