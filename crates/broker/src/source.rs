//! Interned dump-source identity.
//!
//! Every record of a BGPStream is annotated with the project,
//! collector and dump type of the dump file it came from. The naive
//! representation — two `String`s per record — puts two heap
//! allocations on the merge hot path for data that has tiny
//! cardinality (a stream rarely mixes more than a few dozen
//! project/collector/type combinations). [`SourceId`] interns each
//! distinct combination once, process-wide, and hands out a `Copy`
//! handle; records, elem annotations and merge-heap tiebreaks all
//! carry the handle instead of owned strings.
//!
//! The table is append-only and never shrinks: entries are leaked into
//! `'static` storage, and the handle *is* the `&'static` reference —
//! so resolving a name ([`SourceId::project`] etc.) touches no lock at
//! all, and probing the table for an already-interned combination
//! allocates nothing.

use std::collections::HashMap;

use bsync::Mutex;

use crate::index::DumpType;

/// The interned metadata of one dump source.
#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SourceMeta {
    /// Collection project ("ris", "routeviews").
    pub project: String,
    /// Collector name ("rrc01", "route-views2"…).
    pub collector: String,
    /// RIB or Updates dump.
    pub dump_type: DumpType,
}

/// Intern table: project → collector → per-dump-type ids. The nested
/// `String` maps are probed with plain `&str` keys (via `Borrow`), so
/// the hit path — every intern call after a combination's first
/// sight — performs no allocation.
type InternTable = HashMap<String, HashMap<String, Vec<(DumpType, SourceId)>>>;

fn table() -> &'static Mutex<InternTable> {
    // xcheck:allow(facade) — OnceLock is one-time init, not a lock; the Mutex inside is bsync's
    static TABLE: std::sync::OnceLock<Mutex<InternTable>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A `Copy` handle to an interned (project, collector, dump type)
/// combination.
///
/// Internally a `&'static SourceMeta`: name lookups are direct field
/// reads with no locking, equality is a pointer comparison (interning
/// guarantees one entry per combination), and ordering is
/// lexicographic by (project, collector, dump type).
#[derive(Clone, Copy, Debug)]
pub struct SourceId(&'static SourceMeta);

impl PartialEq for SourceId {
    fn eq(&self, other: &Self) -> bool {
        // One interned entry per combination, so identity ⇔ equality.
        std::ptr::eq(self.0, other.0)
    }
}
impl Eq for SourceId {}

impl std::hash::Hash for SourceId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0 as *const SourceMeta as usize).hash(state);
    }
}

impl PartialOrd for SourceId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SourceId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl SourceId {
    /// Intern a combination, returning its stable process-wide id.
    ///
    /// Allocation-free once a combination has been seen; the table
    /// lock is held only for the probe/insert, never by readers.
    pub fn intern(project: &str, collector: &str, dump_type: DumpType) -> SourceId {
        let mut t = table().lock();
        if let Some(&(_, id)) = t
            .get(project)
            .and_then(|collectors| collectors.get(collector))
            .and_then(|types| types.iter().find(|(dt, _)| *dt == dump_type))
        {
            return id;
        }
        let meta: &'static SourceMeta = Box::leak(Box::new(SourceMeta {
            project: project.to_string(),
            collector: collector.to_string(),
            dump_type,
        }));
        let id = SourceId(meta);
        t.entry(project.to_string())
            .or_default()
            .entry(collector.to_string())
            .or_default()
            .push((dump_type, id));
        id
    }

    /// The interned metadata.
    pub fn meta(self) -> &'static SourceMeta {
        self.0
    }

    /// Collection project name.
    pub fn project(self) -> &'static str {
        &self.0.project
    }

    /// Collector name.
    pub fn collector(self) -> &'static str {
        &self.0.collector
    }

    /// Dump type.
    pub fn dump_type(self) -> DumpType {
        self.0.dump_type
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.0.project, self.0.collector, self.0.dump_type
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = SourceId::intern("ris", "rrc01", DumpType::Updates);
        let b = SourceId::intern("ris", "rrc01", DumpType::Updates);
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.meta(), b.meta()));
        assert_eq!(a.project(), "ris");
        assert_eq!(a.collector(), "rrc01");
        assert_eq!(a.dump_type(), DumpType::Updates);
    }

    #[test]
    fn distinct_components_distinct_ids() {
        let a = SourceId::intern("ris", "rrc01", DumpType::Updates);
        let b = SourceId::intern("ris", "rrc01", DumpType::Rib);
        let c = SourceId::intern("ris", "rrc02", DumpType::Updates);
        let d = SourceId::intern("routeviews", "rrc01", DumpType::Updates);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let b = SourceId::intern("ris", "zz-last", DumpType::Updates);
        let a = SourceId::intern("ris", "aa-first", DumpType::Updates);
        let c = SourceId::intern("routeviews", "aa-first", DumpType::Updates);
        assert!(a < b, "collector order");
        assert!(a < c, "project order ('ris' < 'routeviews')");
    }

    #[test]
    fn display_joins_components() {
        let a = SourceId::intern("ris", "rrc03", DumpType::Rib);
        assert_eq!(a.to_string(), "ris/rrc03/ribs");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SourceId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| SourceId::intern("ris", "rrc-concurrent", DumpType::Updates)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
