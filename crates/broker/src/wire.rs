//! The broker service's versioned wire protocol.
//!
//! The paper's broker speaks HTTP+JSON; ours speaks a compact binary
//! framing over `mq` messages (one request or response per message
//! payload). The format is deliberately boring: a leading protocol
//! version byte, a kind tag, then little-endian fixed-width integers
//! and `u32`-length-prefixed UTF-8 strings. No self-description — the
//! version byte is the compatibility contract, and a decoder that
//! meets a frame it cannot parse reports [`BrokerError::Malformed`]
//! (or [`BrokerError::Protocol`] for an unknown version) rather than
//! guessing.
//!
//! Layout:
//!
//! ```text
//! request  := ver:u8 kind:u8 client:str req_id:u64 body
//!   kind 0 Query    { query window_start:u64 now:u64 }
//!   kind 1 OpenLive { query policy resume:opt<u64> }
//!   kind 2 PollLive { lease:u64 now:u64 }
//!   kind 3 Renew    { lease:u64 }
//!   kind 4 Close    { lease:u64 }
//!
//! response := ver:u8 req_id:u64 index_version:u64 watermark:u64 kind:u8 body
//!   kind 0 Query      { files:vec<meta> exhausted:u8 next_window_start:u64 }
//!   kind 1 LiveOpened { lease:u64 }
//!   kind 2 Live       { files:vec<meta> late:vec<meta> advanced:u8
//!                       released_through:u64 }
//!   kind 3 Renewed
//!   kind 4 Closed
//!   kind 5 Error      { code:u8 msg:str }
//! ```
//!
//! Every response carries the server's index version and watermark so
//! clients keep a fresh local change detector for free.

use std::path::PathBuf;

use crate::client::LeaseId;
use crate::error::BrokerError;
use crate::index::{DumpMeta, DumpType, Query};
use crate::live::{LivePoll, ReleasePolicy};

/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// One client request frame.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestEnvelope {
    /// Client identity; routes the response to the client's reply
    /// topic and scopes per-client admission control.
    pub client: String,
    /// Client-assigned correlation id, echoed in the response.
    pub req_id: u64,
    /// The operation.
    pub body: BrokerRequest,
}

/// The broker operations.
#[derive(Clone, PartialEq, Debug)]
pub enum BrokerRequest {
    /// One windowed historical query page.
    Query {
        /// Meta-data filters and interval.
        query: Query,
        /// The client's cursor position ([`BrokerCursor.window_start`]).
        ///
        /// [`BrokerCursor.window_start`]: crate::BrokerCursor
        window_start: u64,
        /// Virtual publication-visibility time.
        now: u64,
    },
    /// Open (or resume) a live-cursor lease.
    OpenLive {
        /// Meta-data filters; `end` is ignored (live never exhausts).
        query: Query,
        /// Window release policy for the server-side cursor.
        policy: ReleasePolicy,
        /// Existing lease to re-attach to (exactly-once resume).
        resume: Option<LeaseId>,
    },
    /// Advance a live lease by one poll.
    PollLive {
        /// The lease.
        lease: LeaseId,
        /// Virtual time of the poll.
        now: u64,
    },
    /// Keep a lease alive without polling it.
    Renew {
        /// The lease.
        lease: LeaseId,
    },
    /// Close a lease, freeing its cursor.
    Close {
        /// The lease.
        lease: LeaseId,
    },
}

/// One server response frame.
#[derive(Clone, PartialEq, Debug)]
pub struct ResponseEnvelope {
    /// Correlation id of the request this answers.
    pub req_id: u64,
    /// Server index version at response time (client change detector).
    pub index_version: u64,
    /// Server publication watermark at response time.
    pub watermark: u64,
    /// The payload.
    pub body: BrokerResponse,
}

/// Response payloads, one per [`BrokerRequest`] kind plus errors.
#[derive(Clone, PartialEq, Debug)]
pub enum BrokerResponse {
    /// Historical query page.
    Query {
        /// The window's files.
        files: Vec<DumpMeta>,
        /// Whether the interval is exhausted.
        exhausted: bool,
        /// Cursor position after this page.
        next_window_start: u64,
    },
    /// Lease granted (or resumed).
    LiveOpened {
        /// The lease id to poll with.
        lease: LeaseId,
    },
    /// One live poll's outcome.
    Live(LivePoll),
    /// Lease renewed.
    Renewed,
    /// Lease closed.
    Closed,
    /// The request failed.
    Error(BrokerError),
}

// ---------------------------------------------------------------- encode

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_strs(out: &mut Vec<u8>, v: &[String]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for s in v {
        put_str(out, s);
    }
}

fn dump_type_tag(t: DumpType) -> u8 {
    match t {
        DumpType::Rib => 0,
        DumpType::Updates => 1,
    }
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_strs(out, &q.projects);
    put_strs(out, &q.collectors);
    out.extend_from_slice(&(q.dump_types.len() as u32).to_le_bytes());
    for t in &q.dump_types {
        out.push(dump_type_tag(*t));
    }
    put_u64(out, q.start);
    match q.end {
        Some(e) => {
            out.push(1);
            put_u64(out, e);
        }
        None => out.push(0),
    }
}

fn put_meta(out: &mut Vec<u8>, m: &DumpMeta) {
    put_str(out, &m.project);
    put_str(out, &m.collector);
    out.push(dump_type_tag(m.dump_type));
    put_u64(out, m.interval_start);
    put_u64(out, m.duration);
    put_str(out, &m.path.to_string_lossy());
    put_u64(out, m.available_at);
    put_u64(out, m.size);
}

fn put_metas(out: &mut Vec<u8>, v: &[DumpMeta]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for m in v {
        put_meta(out, m);
    }
}

impl RequestEnvelope {
    /// Serialise to one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(WIRE_VERSION);
        let kind = match &self.body {
            BrokerRequest::Query { .. } => 0u8,
            BrokerRequest::OpenLive { .. } => 1,
            BrokerRequest::PollLive { .. } => 2,
            BrokerRequest::Renew { .. } => 3,
            BrokerRequest::Close { .. } => 4,
        };
        out.push(kind);
        put_str(&mut out, &self.client);
        put_u64(&mut out, self.req_id);
        match &self.body {
            BrokerRequest::Query {
                query,
                window_start,
                now,
            } => {
                put_query(&mut out, query);
                put_u64(&mut out, *window_start);
                put_u64(&mut out, *now);
            }
            BrokerRequest::OpenLive {
                query,
                policy,
                resume,
            } => {
                put_query(&mut out, query);
                match policy {
                    ReleasePolicy::Grace(g) => {
                        out.push(0);
                        put_u64(&mut out, *g);
                    }
                    ReleasePolicy::Watermark => out.push(1),
                }
                match resume {
                    Some(id) => {
                        out.push(1);
                        put_u64(&mut out, *id);
                    }
                    None => out.push(0),
                }
            }
            BrokerRequest::PollLive { lease, now } => {
                put_u64(&mut out, *lease);
                put_u64(&mut out, *now);
            }
            BrokerRequest::Renew { lease } | BrokerRequest::Close { lease } => {
                put_u64(&mut out, *lease);
            }
        }
        out
    }
}

fn error_code(e: &BrokerError) -> (u8, &str) {
    match e {
        BrokerError::Io(m) => (0, m.as_str()),
        BrokerError::Malformed(m) => (1, m.as_str()),
        BrokerError::LeaseExpired => (2, ""),
        BrokerError::Busy => (3, ""),
        BrokerError::Protocol(m) => (4, m.as_str()),
    }
}

impl ResponseEnvelope {
    /// Serialise to one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(WIRE_VERSION);
        put_u64(&mut out, self.req_id);
        put_u64(&mut out, self.index_version);
        put_u64(&mut out, self.watermark);
        match &self.body {
            BrokerResponse::Query {
                files,
                exhausted,
                next_window_start,
            } => {
                out.push(0);
                put_metas(&mut out, files);
                out.push(u8::from(*exhausted));
                put_u64(&mut out, *next_window_start);
            }
            BrokerResponse::LiveOpened { lease } => {
                out.push(1);
                put_u64(&mut out, *lease);
            }
            BrokerResponse::Live(poll) => {
                out.push(2);
                put_metas(&mut out, &poll.files);
                put_metas(&mut out, &poll.late);
                out.push(u8::from(poll.advanced));
                put_u64(&mut out, poll.released_through);
            }
            BrokerResponse::Renewed => out.push(3),
            BrokerResponse::Closed => out.push(4),
            BrokerResponse::Error(e) => {
                out.push(5);
                let (code, msg) = error_code(e);
                out.push(code);
                put_str(&mut out, msg);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BrokerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| BrokerError::Malformed("truncated wire frame".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BrokerError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BrokerError> {
        // xcheck:allow(unwrap) — take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, BrokerError> {
        // xcheck:allow(unwrap) — take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, BrokerError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| BrokerError::Malformed("non-UTF-8 string on the wire".into()))
    }

    fn strs(&mut self) -> Result<Vec<String>, BrokerError> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.str()).collect()
    }

    fn dump_type(&mut self) -> Result<DumpType, BrokerError> {
        match self.u8()? {
            0 => Ok(DumpType::Rib),
            1 => Ok(DumpType::Updates),
            t => Err(BrokerError::Malformed(format!("unknown dump type tag {t}"))),
        }
    }

    fn query(&mut self) -> Result<Query, BrokerError> {
        let projects = self.strs()?;
        let collectors = self.strs()?;
        let n = self.u32()? as usize;
        let dump_types = (0..n)
            .map(|_| self.dump_type())
            .collect::<Result<Vec<_>, _>>()?;
        let start = self.u64()?;
        let end = match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        };
        Ok(Query {
            projects,
            collectors,
            dump_types,
            start,
            end,
        })
    }

    fn meta(&mut self) -> Result<DumpMeta, BrokerError> {
        Ok(DumpMeta {
            project: self.str()?,
            collector: self.str()?,
            dump_type: self.dump_type()?,
            interval_start: self.u64()?,
            duration: self.u64()?,
            path: PathBuf::from(self.str()?),
            available_at: self.u64()?,
            size: self.u64()?,
        })
    }

    fn metas(&mut self) -> Result<Vec<DumpMeta>, BrokerError> {
        let n = self.u32()? as usize;
        // Cap pre-allocation by the frame length: a corrupt count must
        // not trigger a huge allocation before `take` fails.
        let mut out = Vec::with_capacity(n.min(self.buf.len() / 8 + 1));
        for _ in 0..n {
            out.push(self.meta()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), BrokerError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(BrokerError::Malformed(format!(
                "{} trailing bytes on wire frame",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn check_version(r: &mut Reader<'_>) -> Result<(), BrokerError> {
    match r.u8()? {
        WIRE_VERSION => Ok(()),
        v => Err(BrokerError::Protocol(format!(
            "unknown wire version {v} (this build speaks {WIRE_VERSION})"
        ))),
    }
}

impl RequestEnvelope {
    /// Parse one wire frame.
    pub fn decode(buf: &[u8]) -> Result<Self, BrokerError> {
        let mut r = Reader::new(buf);
        check_version(&mut r)?;
        let kind = r.u8()?;
        let client = r.str()?;
        let req_id = r.u64()?;
        let body = match kind {
            0 => BrokerRequest::Query {
                query: r.query()?,
                window_start: r.u64()?,
                now: r.u64()?,
            },
            1 => {
                let query = r.query()?;
                let policy = match r.u8()? {
                    0 => ReleasePolicy::Grace(r.u64()?),
                    1 => ReleasePolicy::Watermark,
                    t => {
                        return Err(BrokerError::Malformed(format!(
                            "unknown release policy tag {t}"
                        )))
                    }
                };
                let resume = match r.u8()? {
                    0 => None,
                    _ => Some(r.u64()?),
                };
                BrokerRequest::OpenLive {
                    query,
                    policy,
                    resume,
                }
            }
            2 => BrokerRequest::PollLive {
                lease: r.u64()?,
                now: r.u64()?,
            },
            3 => BrokerRequest::Renew { lease: r.u64()? },
            4 => BrokerRequest::Close { lease: r.u64()? },
            k => return Err(BrokerError::Malformed(format!("unknown request kind {k}"))),
        };
        r.done()?;
        Ok(RequestEnvelope {
            client,
            req_id,
            body,
        })
    }
}

impl ResponseEnvelope {
    /// Parse one wire frame.
    pub fn decode(buf: &[u8]) -> Result<Self, BrokerError> {
        let mut r = Reader::new(buf);
        check_version(&mut r)?;
        let req_id = r.u64()?;
        let index_version = r.u64()?;
        let watermark = r.u64()?;
        let body = match r.u8()? {
            0 => BrokerResponse::Query {
                files: r.metas()?,
                exhausted: r.u8()? != 0,
                next_window_start: r.u64()?,
            },
            1 => BrokerResponse::LiveOpened { lease: r.u64()? },
            2 => BrokerResponse::Live(LivePoll {
                files: r.metas()?,
                late: r.metas()?,
                advanced: r.u8()? != 0,
                released_through: r.u64()?,
            }),
            3 => BrokerResponse::Renewed,
            4 => BrokerResponse::Closed,
            5 => {
                let code = r.u8()?;
                let msg = r.str()?;
                BrokerResponse::Error(match code {
                    0 => BrokerError::Io(msg),
                    1 => BrokerError::Malformed(msg),
                    2 => BrokerError::LeaseExpired,
                    3 => BrokerError::Busy,
                    4 => BrokerError::Protocol(msg),
                    c => {
                        return Err(BrokerError::Malformed(format!("unknown error code {c}")));
                    }
                })
            }
            k => {
                return Err(BrokerError::Malformed(format!("unknown response kind {k}")));
            }
        };
        r.done()?;
        Ok(ResponseEnvelope {
            req_id,
            index_version,
            watermark,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta(start: u64) -> DumpMeta {
        DumpMeta {
            project: "ris".into(),
            collector: "rrc01".into(),
            dump_type: DumpType::Updates,
            interval_start: start,
            duration: 300,
            path: PathBuf::from(format!("/tmp/rrc01-{start}.mrt")),
            available_at: start + 90,
            size: 1234,
        }
    }

    fn sample_query() -> Query {
        Query {
            projects: vec!["ris".into(), "routeviews".into()],
            collectors: vec!["rrc01".into()],
            dump_types: vec![DumpType::Rib, DumpType::Updates],
            start: 100,
            end: Some(7200),
        }
    }

    #[test]
    fn request_roundtrip_all_kinds() {
        let bodies = vec![
            BrokerRequest::Query {
                query: sample_query(),
                window_start: 3600,
                now: 5000,
            },
            BrokerRequest::OpenLive {
                query: Query {
                    end: None,
                    ..sample_query()
                },
                policy: ReleasePolicy::Grace(300),
                resume: None,
            },
            BrokerRequest::OpenLive {
                query: Query::default(),
                policy: ReleasePolicy::Watermark,
                resume: Some(77),
            },
            BrokerRequest::PollLive { lease: 9, now: 42 },
            BrokerRequest::Renew { lease: 9 },
            BrokerRequest::Close { lease: 9 },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let env = RequestEnvelope {
                client: format!("client-{i}"),
                req_id: i as u64 * 31 + 1,
                body,
            };
            let back = RequestEnvelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn response_roundtrip_all_kinds() {
        let bodies = vec![
            BrokerResponse::Query {
                files: vec![sample_meta(0), sample_meta(300)],
                exhausted: true,
                next_window_start: 7201,
            },
            BrokerResponse::LiveOpened { lease: 5 },
            BrokerResponse::Live(LivePoll {
                files: vec![sample_meta(0)],
                late: vec![sample_meta(300)],
                advanced: true,
                released_through: 3600,
            }),
            BrokerResponse::Renewed,
            BrokerResponse::Closed,
            BrokerResponse::Error(BrokerError::Io("disk on fire".into())),
            BrokerResponse::Error(BrokerError::LeaseExpired),
            BrokerResponse::Error(BrokerError::Busy),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let env = ResponseEnvelope {
                req_id: i as u64,
                index_version: 12,
                watermark: 3600,
                body,
            };
            let back = ResponseEnvelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            RequestEnvelope::decode(&[]),
            Err(BrokerError::Malformed(_))
        ));
        // Unknown version is a protocol error, not a parse error.
        assert!(matches!(
            RequestEnvelope::decode(&[99, 0, 0, 0]),
            Err(BrokerError::Protocol(_))
        ));
        // Truncated mid-frame.
        let good = RequestEnvelope {
            client: "c".into(),
            req_id: 1,
            body: BrokerRequest::Renew { lease: 3 },
        }
        .encode();
        assert!(matches!(
            RequestEnvelope::decode(&good[..good.len() - 1]),
            Err(BrokerError::Malformed(_))
        ));
        // Trailing bytes are rejected too.
        let mut padded = good;
        padded.push(0);
        assert!(matches!(
            RequestEnvelope::decode(&padded),
            Err(BrokerError::Malformed(_))
        ));
        assert!(matches!(
            ResponseEnvelope::decode(&[1, 0]),
            Err(BrokerError::Malformed(_))
        ));
    }
}
