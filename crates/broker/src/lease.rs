//! [`LeaseTable`]: the shared, clock-driven lease store behind both
//! broker front-ends.
//!
//! A lease is server-side session state (a [`LiveCursor`] in
//! practice) that must survive client reconnects but not client
//! death: any access within the TTL renews it, and a lease untouched
//! past the TTL is expired. Expiry is enforced **atomically with
//! access** — `resume`/`touch`/`with_lease` on an entry already past
//! its TTL remove it and report failure rather than resurrecting it —
//! so "no lease older than the TTL is ever served" holds even when a
//! reaper thread races the serving thread. That invariant is what the
//! `loom-lite` model tests in `tests/loom_lease.rs` check.
//!
//! Time comes from a [`Clock`], not the wall: production uses
//! [`Clock::system`], tests use [`Clock::manual`] so expiry is
//! deterministic (and schedulable under the model checker).
//!
//! [`LiveCursor`]: crate::live::LiveCursor

use std::collections::HashMap;
use std::time::Duration;

use bsync::time::Clock;
use bsync::Mutex;

use crate::client::LeaseId;

/// Lifetime counters of one [`LeaseTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseCounters {
    /// Leases created by [`LeaseTable::open`].
    pub opened: u64,
    /// Successful re-attachments via [`LeaseTable::resume`].
    pub resumed: u64,
    /// Leases removed by TTL expiry (reaped or caught at access).
    pub expired: u64,
}

struct Entry<T> {
    value: T,
    last_active_ms: u64,
}

struct Inner<T> {
    leases: HashMap<LeaseId, Entry<T>>,
    next: LeaseId,
    counters: LeaseCounters,
}

/// A concurrent lease table with TTL expiry on a pluggable clock.
pub struct LeaseTable<T> {
    clock: Clock,
    ttl_ms: u64,
    inner: Mutex<Inner<T>>,
}

impl<T> LeaseTable<T> {
    /// A table whose leases expire `ttl` after their last access,
    /// measured on `clock`.
    pub fn new(clock: Clock, ttl: Duration) -> Self {
        LeaseTable {
            clock,
            ttl_ms: u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX),
            inner: Mutex::new(Inner {
                leases: HashMap::new(),
                next: 1,
                counters: LeaseCounters::default(),
            }),
        }
    }

    /// A table whose leases never expire (in-process brokers: the
    /// "server" cannot outlive its only client).
    pub fn immortal(clock: Clock) -> Self {
        Self::new(clock, Duration::from_millis(u64::MAX))
    }

    /// Create a lease over `value`, active as of now.
    pub fn open(&self, value: T) -> LeaseId {
        let now = self.clock.now_millis();
        let mut inner = self.inner.lock();
        let id = inner.next;
        inner.next += 1;
        inner.leases.insert(
            id,
            Entry {
                value,
                last_active_ms: now,
            },
        );
        inner.counters.opened += 1;
        id
    }

    /// Re-attach to `id`: renews and returns true iff the lease is
    /// still within its TTL. An entry already past the TTL is removed
    /// (counted as expired), exactly as if the reaper had won.
    pub fn resume(&self, id: LeaseId) -> bool {
        if self.access(id, |_| ()).is_some() {
            self.inner.lock().counters.resumed += 1;
            true
        } else {
            false
        }
    }

    /// Renew `id` without touching its value; true iff still live.
    pub fn touch(&self, id: LeaseId) -> bool {
        self.access(id, |_| ()).is_some()
    }

    /// Run `f` over the lease's value, renewing it. `None` when the
    /// lease is unknown or expired.
    pub fn with_lease<R>(&self, id: LeaseId, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        self.access(id, f)
    }

    fn access<R>(&self, id: LeaseId, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let now = self.clock.now_millis();
        let mut inner = self.inner.lock();
        match inner.leases.get_mut(&id) {
            Some(e) if now.saturating_sub(e.last_active_ms) < self.ttl_ms => {
                e.last_active_ms = now;
                Some(f(&mut e.value))
            }
            Some(_) => {
                // Past TTL but not yet reaped: expiry wins over access.
                inner.leases.remove(&id);
                inner.counters.expired += 1;
                None
            }
            None => None,
        }
    }

    /// Drop `id` explicitly; true when it was present.
    pub fn close(&self, id: LeaseId) -> bool {
        self.inner.lock().leases.remove(&id).is_some()
    }

    /// Remove every lease past its TTL; returns how many were reaped.
    pub fn reap(&self) -> u64 {
        let now = self.clock.now_millis();
        let mut inner = self.inner.lock();
        let before = inner.leases.len();
        let ttl = self.ttl_ms;
        inner
            .leases
            .retain(|_, e| now.saturating_sub(e.last_active_ms) < ttl);
        let reaped = (before - inner.leases.len()) as u64;
        inner.counters.expired += reaped;
        reaped
    }

    /// Live leases currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().leases.len()
    }

    /// True when no leases are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn counters(&self) -> LeaseCounters {
        self.inner.lock().counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_access_close_roundtrip() {
        let t = LeaseTable::new(Clock::manual(0), Duration::from_millis(100));
        let id = t.open(7u64);
        assert_eq!(t.with_lease(id, |v| *v * 2), Some(14));
        assert!(t.touch(id));
        assert!(t.close(id));
        assert!(!t.close(id));
        assert_eq!(t.with_lease(id, |v| *v), None);
    }

    #[test]
    fn reap_expires_only_stale_leases() {
        let clock = Clock::manual(0);
        let t = LeaseTable::new(clock.clone(), Duration::from_millis(100));
        let old = t.open(1u64);
        clock.advance_millis(60);
        let young = t.open(2u64);
        clock.advance_millis(60); // old: 120ms idle, young: 60ms idle
        assert_eq!(t.reap(), 1);
        assert_eq!(t.with_lease(old, |v| *v), None);
        assert_eq!(t.with_lease(young, |v| *v), Some(2));
        assert_eq!(t.counters().expired, 1);
    }

    #[test]
    fn access_renews_and_expiry_beats_late_access() {
        let clock = Clock::manual(0);
        let t = LeaseTable::new(clock.clone(), Duration::from_millis(100));
        let id = t.open(0u64);
        clock.advance_millis(90);
        assert!(t.touch(id), "within TTL: renewed");
        clock.advance_millis(90);
        assert!(t.touch(id), "renewal restarted the TTL");
        clock.advance_millis(100);
        assert!(!t.resume(id), "past TTL: access must not resurrect");
        assert_eq!(t.counters().expired, 1);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn immortal_table_never_expires() {
        let clock = Clock::manual(0);
        let t = LeaseTable::immortal(clock.clone());
        let id = t.open(());
        clock.advance_millis(u64::MAX / 2);
        assert!(t.touch(id));
        assert_eq!(t.reap(), 0);
    }
}
