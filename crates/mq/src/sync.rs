//! Per-application data synchronization (§6.2.3).
//!
//! Different collectors publish data with variable delay; consumers
//! need a policy for when a time bin is "ready". The paper describes
//! sync servers that watch lightweight meta-data in Kafka and inject
//! readiness markers per application:
//!
//! * hijack detection uses a short **timeout** ("a time-out of a few
//!   minutes to execute traceroutes as soon as a suspicious event is
//!   detected");
//! * IODA relaxes latency for completeness (30-minute timeout yields
//!   tables from all VPs for 99 % of bins).
//!
//! [`SyncServer`] is the pure decision core: feed it per-(producer,
//! bin) arrival observations and a virtual `now`, and it emits
//! [`SyncDecision`]s according to its [`SyncPolicy`].

use std::collections::{BTreeMap, HashSet};

/// When is a bin ready?
#[derive(Clone, Debug, PartialEq)]
pub enum SyncPolicy {
    /// Ready only when *all* expected producers delivered the bin.
    Completeness,
    /// Ready when all producers delivered, or `timeout` seconds after
    /// the bin's first arrival, whichever is earlier.
    Timeout(u64),
    /// Ready as soon as `frac` (0..=1) of producers delivered.
    Fraction(f64),
}

/// A readiness decision for one bin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncDecision {
    /// The bin's start time.
    pub bin: u64,
    /// Producers whose data made it in time.
    pub producers: Vec<String>,
    /// True when every expected producer delivered.
    pub complete: bool,
}

#[derive(Debug, Default)]
struct BinState {
    arrived: HashSet<String>,
    first_arrival: u64,
}

/// The sync-server decision core.
pub struct SyncServer {
    policy: SyncPolicy,
    expected: Vec<String>,
    bins: BTreeMap<u64, BinState>,
    decided: HashSet<u64>,
}

impl SyncServer {
    /// A server expecting one delivery per `expected` producer per
    /// bin.
    pub fn new(policy: SyncPolicy, expected: Vec<String>) -> Self {
        SyncServer {
            policy,
            expected,
            bins: BTreeMap::new(),
            decided: HashSet::new(),
        }
    }

    /// Record that `producer` delivered its data for `bin` at `now`.
    pub fn observe(&mut self, producer: &str, bin: u64, now: u64) {
        if self.decided.contains(&bin) {
            return; // late arrival, bin already released
        }
        let st = self.bins.entry(bin).or_insert_with(|| BinState {
            arrived: HashSet::new(),
            first_arrival: now,
        });
        st.arrived.insert(producer.to_string());
        st.first_arrival = st.first_arrival.min(now);
    }

    /// Bins pending a decision.
    pub fn pending(&self) -> usize {
        self.bins.len()
    }

    /// Evaluate the policy at virtual time `now`, returning newly
    /// ready bins in time order.
    pub fn poll(&mut self, now: u64) -> Vec<SyncDecision> {
        let mut out = Vec::new();
        let ready_bins: Vec<u64> = self
            .bins
            .iter()
            .filter(|(_, st)| {
                let complete = st.arrived.len() >= self.expected.len();
                match self.policy {
                    SyncPolicy::Completeness => complete,
                    SyncPolicy::Timeout(t) => complete || now >= st.first_arrival + t,
                    SyncPolicy::Fraction(f) => {
                        st.arrived.len() as f64 >= f * self.expected.len() as f64
                    }
                }
            })
            .map(|(b, _)| *b)
            .collect();
        for bin in ready_bins {
            // xcheck:allow(unwrap) — bin keys collected from this map just above
            let st = self.bins.remove(&bin).expect("bin present");
            self.decided.insert(bin);
            let mut producers: Vec<String> = st.arrived.into_iter().collect();
            producers.sort();
            let complete = producers.len() >= self.expected.len();
            out.push(SyncDecision {
                bin,
                producers,
                complete,
            });
        }
        out.sort_by_key(|d| d.bin);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(policy: SyncPolicy) -> SyncServer {
        SyncServer::new(policy, vec!["rrc00".into(), "rrc01".into(), "rv2".into()])
    }

    #[test]
    fn completeness_waits_for_all() {
        let mut s = server(SyncPolicy::Completeness);
        s.observe("rrc00", 100, 110);
        s.observe("rrc01", 100, 115);
        assert!(s.poll(10_000).is_empty());
        s.observe("rv2", 100, 130);
        let d = s.poll(130);
        assert_eq!(d.len(), 1);
        assert!(d[0].complete);
        assert_eq!(d[0].producers.len(), 3);
    }

    #[test]
    fn timeout_releases_partial_bins() {
        let mut s = server(SyncPolicy::Timeout(1800));
        s.observe("rrc00", 100, 110);
        assert!(s.poll(1000).is_empty());
        let d = s.poll(110 + 1800);
        assert_eq!(d.len(), 1);
        assert!(!d[0].complete);
        assert_eq!(d[0].producers, vec!["rrc00".to_string()]);
    }

    #[test]
    fn timeout_releases_early_when_complete() {
        let mut s = server(SyncPolicy::Timeout(1800));
        s.observe("rrc00", 100, 110);
        s.observe("rrc01", 100, 112);
        s.observe("rv2", 100, 115);
        let d = s.poll(116);
        assert_eq!(d.len(), 1);
        assert!(d[0].complete);
    }

    #[test]
    fn fraction_policy() {
        let mut s = server(SyncPolicy::Fraction(0.66));
        s.observe("rrc00", 100, 1);
        assert!(s.poll(2).is_empty());
        s.observe("rrc01", 100, 3);
        let d = s.poll(4);
        assert_eq!(d.len(), 1);
        assert!(!d[0].complete);
    }

    #[test]
    fn late_arrivals_after_decision_are_dropped() {
        let mut s = server(SyncPolicy::Timeout(10));
        s.observe("rrc00", 100, 0);
        assert_eq!(s.poll(50).len(), 1);
        // rv2 arrives after the bin was released.
        s.observe("rv2", 100, 60);
        assert!(s.poll(1000).is_empty());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn bins_release_in_time_order() {
        let mut s = server(SyncPolicy::Timeout(10));
        s.observe("rrc00", 200, 0);
        s.observe("rrc00", 100, 0);
        let d = s.poll(100);
        assert_eq!(d.len(), 2);
        assert!(d[0].bin < d[1].bin);
    }
}
