//! Partitioned append-only message logs with offsets.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bsync::{Condvar, Mutex, RwLock};

/// One message in a partition log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Position in the partition (dense, starting at 0).
    pub offset: u64,
    /// Producer-assigned key (used for partition routing).
    pub key: String,
    /// Producer-assigned timestamp (virtual seconds).
    pub timestamp: u64,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Per-topic statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopicStats {
    /// Messages across all partitions.
    pub messages: u64,
    /// Payload bytes across all partitions.
    pub bytes: u64,
}

struct Partition {
    log: Mutex<Vec<Message>>,
    cond: Condvar,
}

struct Topic {
    partitions: Vec<Partition>,
}

/// The in-process "cluster": topics, partitions, consumer-group
/// offsets.
pub struct Cluster {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    commits: Mutex<HashMap<(String, String, usize), u64>>,
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Cluster {
            topics: RwLock::new(HashMap::new()),
            commits: Mutex::new(HashMap::new()),
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Create a topic with `partitions` partitions (idempotent; an
    /// existing topic keeps its partition count).
    pub fn create_topic(&self, name: &str, partitions: usize) {
        let mut topics = self.topics.write();
        topics.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Topic {
                partitions: (0..partitions.max(1))
                    .map(|_| Partition {
                        log: Mutex::new(Vec::new()),
                        cond: Condvar::new(),
                    })
                    .collect(),
            })
        });
    }

    fn topic(&self, name: &str) -> Option<Arc<Topic>> {
        self.topics.read().get(name).cloned()
    }

    /// Number of partitions of a topic (0 if absent).
    pub fn partitions(&self, topic: &str) -> usize {
        self.topic(topic).map(|t| t.partitions.len()).unwrap_or(0)
    }

    /// Produce a message, routing by `key` hash. Creates the topic
    /// (1 partition) if needed. Returns (partition, offset).
    pub fn produce(
        &self,
        topic: &str,
        key: &str,
        timestamp: u64,
        payload: Vec<u8>,
    ) -> (usize, u64) {
        if self.topic(topic).is_none() {
            self.create_topic(topic, 1);
        }
        // xcheck:allow(unwrap) — created above when absent
        let t = self.topic(topic).expect("topic just created");
        let part = hash_key(key) as usize % t.partitions.len();
        let p = &t.partitions[part];
        let mut log = p.log.lock();
        let offset = log.len() as u64;
        log.push(Message {
            offset,
            key: key.to_string(),
            timestamp,
            payload,
        });
        drop(log);
        p.cond.notify_all();
        (part, offset)
    }

    /// Fetch up to `max` messages from `offset` (non-blocking).
    pub fn fetch(&self, topic: &str, partition: usize, offset: u64, max: usize) -> Vec<Message> {
        let Some(t) = self.topic(topic) else {
            return Vec::new();
        };
        let Some(p) = t.partitions.get(partition) else {
            return Vec::new();
        };
        let log = p.log.lock();
        let start = (offset as usize).min(log.len());
        let end = (start + max).min(log.len());
        log[start..end].to_vec()
    }

    /// Next offset to be assigned in the partition (= current length).
    pub fn latest_offset(&self, topic: &str, partition: usize) -> u64 {
        self.topic(topic)
            .and_then(|t| {
                t.partitions
                    .get(partition)
                    .map(|p| p.log.lock().len() as u64)
            })
            .unwrap_or(0)
    }

    /// Block until the partition grows beyond `offset` or `timeout`
    /// elapses; returns true when data is available.
    pub fn wait_for(&self, topic: &str, partition: usize, offset: u64, timeout: Duration) -> bool {
        let Some(t) = self.topic(topic) else {
            return false;
        };
        let Some(p) = t.partitions.get(partition) else {
            return false;
        };
        let mut log = p.log.lock();
        if log.len() as u64 > offset {
            return true;
        }
        p.cond.wait_for(&mut log, timeout);
        log.len() as u64 > offset
    }

    /// Commit a consumer-group offset (next offset to read).
    pub fn commit(&self, group: &str, topic: &str, partition: usize, offset: u64) {
        self.commits
            .lock()
            .insert((group.to_string(), topic.to_string(), partition), offset);
    }

    /// Last committed offset for the group (0 if none).
    pub fn committed(&self, group: &str, topic: &str, partition: usize) -> u64 {
        self.commits
            .lock()
            .get(&(group.to_string(), topic.to_string(), partition))
            .copied()
            .unwrap_or(0)
    }

    /// Topic statistics.
    pub fn stats(&self, topic: &str) -> TopicStats {
        let Some(t) = self.topic(topic) else {
            return TopicStats::default();
        };
        let mut s = TopicStats::default();
        for p in &t.partitions {
            let log = p.log.lock();
            s.messages += log.len() as u64;
            s.bytes += log.iter().map(|m| m.payload.len() as u64).sum::<u64>();
        }
        s
    }

    /// All topic names.
    pub fn topic_names(&self) -> Vec<String> {
        self.topics.read().keys().cloned().collect()
    }
}

fn hash_key(key: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_fetch_roundtrip() {
        let c = Cluster::new();
        c.create_topic("rt", 1);
        let (p0, o0) = c.produce("rt", "rrc00", 10, b"a".to_vec());
        let (_, o1) = c.produce("rt", "rrc00", 11, b"b".to_vec());
        assert_eq!((p0, o0, o1), (0, 0, 1));
        let msgs = c.fetch("rt", 0, 0, 10);
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].payload, b"a");
        assert_eq!(msgs[1].offset, 1);
        assert_eq!(c.latest_offset("rt", 0), 2);
    }

    #[test]
    fn fetch_from_offset_and_cap() {
        let c = Cluster::new();
        for k in 0..10u8 {
            c.produce("t", "k", k as u64, vec![k]);
        }
        let msgs = c.fetch("t", 0, 4, 3);
        assert_eq!(msgs.len(), 3);
        assert_eq!(msgs[0].offset, 4);
        assert!(c.fetch("t", 0, 100, 3).is_empty());
        assert!(c.fetch("absent", 0, 0, 3).is_empty());
    }

    #[test]
    fn key_routing_is_stable_across_partitions() {
        let c = Cluster::new();
        c.create_topic("t", 4);
        let (p1, _) = c.produce("t", "rrc00", 0, vec![1]);
        let (p2, _) = c.produce("t", "rrc00", 0, vec![2]);
        assert_eq!(p1, p2, "same key must route to same partition");
        let per_key: Vec<usize> = (0..20)
            .map(|k| c.produce("t", &format!("c{k}"), 0, vec![]).0)
            .collect();
        let distinct: std::collections::HashSet<_> = per_key.iter().collect();
        assert!(distinct.len() > 1, "keys all hashed to one partition");
    }

    #[test]
    fn auto_topic_creation() {
        let c = Cluster::new();
        c.produce("fresh", "k", 0, vec![]);
        assert_eq!(c.partitions("fresh"), 1);
    }

    #[test]
    fn consumer_group_commits() {
        let c = Cluster::new();
        assert_eq!(c.committed("g", "t", 0), 0);
        c.commit("g", "t", 0, 5);
        assert_eq!(c.committed("g", "t", 0), 5);
        c.commit("g", "t", 0, 9);
        assert_eq!(c.committed("g", "t", 0), 9);
        assert_eq!(c.committed("other", "t", 0), 0);
    }

    #[test]
    fn blocking_wait_wakes_on_produce() {
        let c = Cluster::shared();
        c.create_topic("t", 1);
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.wait_for("t", 0, 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        c.produce("t", "k", 0, vec![1]);
        assert!(h.join().unwrap());
        // Already satisfied: returns immediately.
        assert!(c.wait_for("t", 0, 0, Duration::from_millis(1)));
        // Timeout path.
        assert!(!c.wait_for("t", 0, 5, Duration::from_millis(5)));
    }

    #[test]
    fn stats_accumulate() {
        let c = Cluster::new();
        c.produce("t", "k", 0, vec![0; 10]);
        c.produce("t", "k", 0, vec![0; 5]);
        let s = c.stats("t");
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 15);
    }
}
