//! A Kafka-like message queue (substitute for Apache Kafka, §6.2).
//!
//! The paper's continuous global monitoring architecture stores RT
//! plugin output in a Kafka cluster and coordinates consumers through
//! per-application *sync servers* that watch lightweight meta-data and
//! mark time bins ready for consumption. This crate reproduces those
//! semantics in-process:
//!
//! * [`Cluster`] — named topics of partitioned, append-only message
//!   logs with monotonically increasing offsets, blocking fetch, and
//!   consumer-group offset commits;
//! * [`sync::SyncServer`] — the §6.2.3 synchronization policies:
//!   *completeness* (wait for all producers of a bin) and *timeout*
//!   (mark the bin ready at most `T` after its first arrival), both
//!   driven by virtual time.

#![forbid(unsafe_code)]

pub mod log;
pub mod sync;

pub use log::{Cluster, Message, TopicStats};
pub use sync::{SyncDecision, SyncPolicy, SyncServer};
