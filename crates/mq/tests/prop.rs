//! Property tests on the message queue: offsets are dense and stable,
//! fetch windows tile the log exactly, and the sync server releases
//! every bin exactly once under any interleaving.

use mq::{Cluster, SyncPolicy, SyncServer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn offsets_are_dense_and_fetch_tiles_the_log(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..80),
        chunk in 1usize..17,
    ) {
        let c = Cluster::new();
        c.create_topic("t", 1);
        for (k, p) in payloads.iter().enumerate() {
            let (part, off) = c.produce("t", "key", k as u64, p.clone());
            prop_assert_eq!(part, 0);
            prop_assert_eq!(off, k as u64);
        }
        // Fetch in chunks; concatenation equals the original sequence.
        let mut all = Vec::new();
        let mut off = 0u64;
        loop {
            let batch = c.fetch("t", 0, off, chunk);
            if batch.is_empty() {
                break;
            }
            prop_assert!(batch.len() <= chunk);
            for m in &batch {
                prop_assert_eq!(m.offset, off + (all.len() as u64 - off));
                all.push(m.payload.clone());
            }
            off = all.len() as u64;
        }
        prop_assert_eq!(all, payloads);
    }

    #[test]
    fn keyed_routing_is_a_function(keys in proptest::collection::vec("[a-z]{1,8}", 1..40)) {
        let c = Cluster::new();
        c.create_topic("t", 5);
        let mut seen: std::collections::HashMap<String, usize> = Default::default();
        for k in &keys {
            let (part, _) = c.produce("t", k, 0, vec![]);
            if let Some(prev) = seen.insert(k.clone(), part) {
                prop_assert_eq!(prev, part, "key {} moved partitions", k);
            }
        }
    }

    #[test]
    fn sync_server_releases_each_bin_once(
        arrivals in proptest::collection::vec((0u64..5, 0usize..3, 0u64..1000), 0..60),
        timeout in 1u64..500,
    ) {
        let producers = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let mut s = SyncServer::new(SyncPolicy::Timeout(timeout), producers.clone());
        let mut released: Vec<u64> = Vec::new();
        let mut now = 0;
        for (bin, producer, dt) in arrivals {
            now += dt;
            s.observe(&producers[producer], bin * 100, now);
            for d in s.poll(now) {
                released.push(d.bin);
            }
        }
        // Flush everything.
        for d in s.poll(u64::MAX) {
            released.push(d.bin);
        }
        let mut dedup = released.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), released.len(), "a bin was released twice");
        prop_assert_eq!(s.pending(), 0, "bins left pending after final poll");
    }
}
