//! loom-lite model tests: `Cluster::wait_for` racing `produce`.
//!
//! Run with `cargo test -p mq --features loom-lite`.
#![cfg(feature = "loom-lite")]
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use bsync::model::{explore, Builder};
use bsync::{Condvar, Mutex};
use mq::Cluster;

fn budget() -> Builder {
    Builder {
        max_preemptions: 2,
        max_iters: 50_000,
        max_steps: 20_000,
        schedule: None,
    }
}

/// A producer races a blocking consumer. The timed wait may win or
/// lose the race (the model explores both the notify and the timeout
/// path), but a positive `wait_for` must always mean data is visible,
/// and once the producer finished, `wait_for` must never block again.
#[test]
fn wait_for_racing_produce_never_reports_phantom_data() {
    let report = explore(&budget(), || {
        let cluster = Cluster::shared();
        cluster.create_topic("t", 1);
        let producer = {
            let cluster = cluster.clone();
            bsync::thread::spawn_named("producer", move || {
                cluster.produce("t", "k", 0, vec![1]);
            })
        };
        let woke = cluster.wait_for("t", 0, 0, Duration::from_millis(10));
        if woke {
            assert!(
                cluster.latest_offset("t", 0) > 0,
                "wait_for returned true with no data visible"
            );
        }
        producer.join().expect("producer ran");
        assert!(
            cluster.wait_for("t", 0, 0, Duration::from_millis(10)),
            "data already produced: wait_for must return immediately"
        );
    })
    .expect("no interleaving may break wait_for");
    assert!(report.iterations > 1, "must explore multiple interleavings");
}

/// Canary: the classic lost wakeup — the readiness check and the
/// condvar wait live in two separate critical sections, so a signal
/// landing between them is missed and the waiter blocks forever. The
/// checker must report the deadlock and reproduce it from the seed.
#[test]
fn canary_split_check_and_wait_loses_the_wakeup() {
    let racy = || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let state = state.clone();
            bsync::thread::spawn_named("producer", move || {
                *state.0.lock() = true;
                state.1.notify_all();
            })
        };
        // BUG: the check releases the lock before the wait re-takes
        // it; a notify in between is lost and the wait is forever.
        let ready = { *state.0.lock() };
        if !ready {
            let mut guard = state.0.lock();
            state.1.wait(&mut guard);
        }
        producer.join().expect("producer ran");
    };
    let failure = explore(&budget(), racy).expect_err("checker must catch the lost wakeup");
    assert!(
        failure.kind.contains("deadlock"),
        "unexpected failure kind: {}",
        failure.kind
    );
    let replay = Builder {
        schedule: Some(failure.schedule.clone()),
        ..budget()
    };
    let again = explore(&replay, racy).expect_err("replay must reproduce the lost wakeup");
    assert!(again.kind.contains("deadlock"));
}
