//! The control-plane event vocabulary used by case-study scenarios.
//!
//! Events are the simulator's substitute for "things happening on the
//! Internet": routine announcements/withdrawals, MOAS-creating hijacks
//! (Figure 6), country-scale outages (Figure 10), remotely triggered
//! black-holing (Section 4.3), and prefix flapping (the update-burst
//! source in Figure 9).

use bgp_types::{Asn, Prefix};

/// What happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// `origin` (re-)announces one of its prefixes (or a new one).
    Announce {
        /// The announcing AS.
        origin: Asn,
        /// The announced prefix.
        prefix: Prefix,
    },
    /// `origin` withdraws a prefix.
    Withdraw {
        /// The withdrawing AS.
        origin: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
    /// `attacker` starts announcing `prefix` (same- or more-specific
    /// hijack; MOAS when the prefix is also legitimately announced).
    StartHijack {
        /// The hijacking AS.
        attacker: Asn,
        /// The hijacked prefix.
        prefix: Prefix,
    },
    /// The hijack announcement stops.
    EndHijack {
        /// The hijacking AS.
        attacker: Asn,
        /// The hijacked prefix.
        prefix: Prefix,
    },
    /// The AS goes down entirely: its prefixes disappear and it stops
    /// providing transit (single-homed customers lose reachability).
    StartOutage {
        /// The AS going down.
        asn: Asn,
    },
    /// The AS comes back.
    EndOutage {
        /// The AS coming back.
        asn: Asn,
    },
    /// The AS starts violating valley-free export: routes learned from
    /// its providers/peers are re-exported to its other providers and
    /// peers (an RFC 7908 route leak, typically a multi-homed
    /// customer's filter misconfiguration).
    StartLeak {
        /// The mis-exporting AS.
        leaker: Asn,
    },
    /// The leak is fixed.
    EndLeak {
        /// The mis-exporting AS.
        leaker: Asn,
    },
    /// `origin` requests black-holing of `prefix` (usually a /32):
    /// announces it to its transit providers tagged with each
    /// provider's black-holing community.
    StartRtbh {
        /// The AS under attack requesting black-holing.
        origin: Asn,
        /// The black-holed prefix.
        prefix: Prefix,
    },
    /// The black-holed prefix is withdrawn / re-advertised clean.
    EndRtbh {
        /// The AS that requested black-holing.
        origin: Asn,
        /// The prefix being restored.
        prefix: Prefix,
    },
}

/// A timestamped event (virtual seconds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Virtual time in seconds.
    pub time: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// Shorthand constructor.
    pub fn at(time: u64, kind: EventKind) -> Self {
        Event { time, kind }
    }
}

/// An ordered script of events.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    events: Vec<Event>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Add one event.
    pub fn push(&mut self, ev: Event) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Add a hijack lasting `duration` seconds.
    pub fn hijack(&mut self, time: u64, duration: u64, attacker: Asn, prefix: Prefix) -> &mut Self {
        self.push(Event::at(time, EventKind::StartHijack { attacker, prefix }));
        self.push(Event::at(
            time + duration,
            EventKind::EndHijack { attacker, prefix },
        ));
        self
    }

    /// Add an outage lasting `duration` seconds.
    pub fn outage(&mut self, time: u64, duration: u64, asn: Asn) -> &mut Self {
        self.push(Event::at(time, EventKind::StartOutage { asn }));
        self.push(Event::at(time + duration, EventKind::EndOutage { asn }));
        self
    }

    /// Add a route-leak episode lasting `duration` seconds.
    pub fn leak(&mut self, time: u64, duration: u64, leaker: Asn) -> &mut Self {
        self.push(Event::at(time, EventKind::StartLeak { leaker }));
        self.push(Event::at(time + duration, EventKind::EndLeak { leaker }));
        self
    }

    /// Add an RTBH episode lasting `duration` seconds.
    pub fn rtbh(&mut self, time: u64, duration: u64, origin: Asn, prefix: Prefix) -> &mut Self {
        self.push(Event::at(time, EventKind::StartRtbh { origin, prefix }));
        self.push(Event::at(
            time + duration,
            EventKind::EndRtbh { origin, prefix },
        ));
        self
    }

    /// Add `times` withdraw/announce flaps of `prefix` starting at
    /// `time`, one full cycle every `period` seconds.
    pub fn flap(
        &mut self,
        time: u64,
        times: u32,
        period: u64,
        origin: Asn,
        prefix: Prefix,
    ) -> &mut Self {
        for k in 0..times as u64 {
            let t = time + k * period;
            self.push(Event::at(t, EventKind::Withdraw { origin, prefix }));
            self.push(Event::at(
                t + period / 2,
                EventKind::Announce { origin, prefix },
            ));
        }
        self
    }

    /// Events sorted by time (stable for equal timestamps).
    pub fn sorted(&self) -> Vec<Event> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.time);
        evs
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn hijack_creates_paired_events() {
        let mut s = Scenario::new();
        s.hijack(100, 3600, Asn(666), p("193.0.0.0/24"));
        let evs = s.sorted();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time, 100);
        assert_eq!(evs[1].time, 3700);
        assert!(matches!(evs[0].kind, EventKind::StartHijack { .. }));
        assert!(matches!(evs[1].kind, EventKind::EndHijack { .. }));
    }

    #[test]
    fn flap_alternates() {
        let mut s = Scenario::new();
        s.flap(0, 3, 60, Asn(1), p("10.0.0.0/24"));
        let evs = s.sorted();
        assert_eq!(evs.len(), 6);
        assert!(matches!(evs[0].kind, EventKind::Withdraw { .. }));
        assert!(matches!(evs[1].kind, EventKind::Announce { .. }));
        assert_eq!(evs[1].time, 30);
        assert_eq!(evs[2].time, 60);
    }

    #[test]
    fn sorted_orders_interleaved_scripts() {
        let mut s = Scenario::new();
        s.outage(500, 100, Asn(2));
        s.hijack(10, 50, Asn(3), p("10.0.0.0/8"));
        let evs = s.sorted();
        let times: Vec<u64> = evs.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 60, 500, 600]);
    }
}
