//! The static AS-level topology model.

use std::collections::HashMap;

use bgp_types::{Asn, Prefix};

/// The role of an AS in the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tier {
    /// Transit-free core; a full peering clique.
    Tier1,
    /// Regional/national transit provider: has both providers and
    /// customers.
    Transit,
    /// Stub/edge network: customers only of others.
    Edge,
}

/// Business relationship on a link, from the perspective of the first
/// AS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Relationship {
    /// The first AS buys transit from the second.
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

/// A prefix owned by an AS, with the virtual month it is first
/// announced (for longitudinal growth analyses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OwnedPrefix {
    /// The prefix.
    pub prefix: Prefix,
    /// First month (inclusive) the prefix is announced.
    pub born_month: u32,
    /// Optional second origin (sibling organisation) making this a
    /// legitimate MOAS prefix; index into [`Topology::nodes`].
    pub second_origin: Option<u32>,
}

/// One autonomous system.
#[derive(Clone, Debug)]
pub struct AsNode {
    /// The AS number (kept < 64512 so the 16-bit community AS field can
    /// carry it).
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// ISO-3166-alpha-2-style country code.
    pub country: [u8; 2],
    /// Month this AS first appears (0 = start of the simulation).
    pub born_month: u32,
    /// Month this AS first announces IPv6 prefixes; `u32::MAX` = never.
    pub v6_born_month: u32,
    /// Indexes of provider ASes (this AS is their customer).
    pub providers: Vec<u32>,
    /// Indexes of customer ASes.
    pub customers: Vec<u32>,
    /// Indexes of settlement-free peers.
    pub peers: Vec<u32>,
    /// IPv4 prefixes originated by this AS.
    pub prefixes_v4: Vec<OwnedPrefix>,
    /// IPv6 prefixes originated by this AS.
    pub prefixes_v6: Vec<OwnedPrefix>,
    /// Whether this AS removes community attributes when exporting
    /// routes (the paper finds communities visible through only ~83 %
    /// of VPs).
    pub strips_communities: bool,
    /// Whether this AS attaches an informational ingress community when
    /// propagating a route.
    pub tags_communities: bool,
    /// Whether this AS re-exports black-holed /32s beyond its own
    /// network (the misconfiguration §4.3 observes in the wild).
    pub leaks_blackholes: bool,
}

impl AsNode {
    /// Country code as a string.
    pub fn country_str(&self) -> String {
        String::from_utf8_lossy(&self.country).into_owned()
    }

    /// Whether the AS exists at `month`.
    pub fn alive_at(&self, month: u32) -> bool {
        self.born_month <= month
    }
}

/// The complete (final-state) topology; time-dependent views are taken
/// with an explicit `month` parameter.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// All ASes, index-addressed.
    pub nodes: Vec<AsNode>,
    /// ASN → node index.
    pub by_asn: HashMap<Asn, u32>,
    /// Total number of growth months modelled.
    pub months: u32,
}

impl Topology {
    /// Look up a node index by ASN.
    pub fn index_of(&self, asn: Asn) -> Option<u32> {
        self.by_asn.get(&asn).copied()
    }

    /// The node for an ASN.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.index_of(asn).map(|i| &self.nodes[i as usize])
    }

    /// Number of ASes alive at `month`.
    pub fn alive_count(&self, month: u32) -> usize {
        self.nodes.iter().filter(|n| n.alive_at(month)).count()
    }

    /// Indexes of ASes alive at `month`.
    pub fn alive_indexes(&self, month: u32) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].alive_at(month))
            .collect()
    }

    /// All `(origin index, owned prefix)` pairs announced at `month`
    /// for the given family.
    pub fn announced_prefixes(&self, month: u32, v4: bool) -> Vec<(u32, OwnedPrefix)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive_at(month) {
                continue;
            }
            if !v4 && n.v6_born_month > month {
                continue;
            }
            let list = if v4 { &n.prefixes_v4 } else { &n.prefixes_v6 };
            for p in list {
                if p.born_month <= month {
                    out.push((i as u32, *p));
                }
            }
        }
        out
    }

    /// Sanity-check structural invariants; used by tests and the
    /// generator.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let i = i as u32;
            for &p in &n.providers {
                let pn = &self.nodes[p as usize];
                if !pn.customers.contains(&i) {
                    return Err(format!("{}: provider edge not mirrored", n.asn));
                }
                if pn.born_month > n.born_month {
                    return Err(format!("{}: provider born after customer", n.asn));
                }
            }
            for &c in &n.customers {
                if !self.nodes[c as usize].providers.contains(&i) {
                    return Err(format!("{}: customer edge not mirrored", n.asn));
                }
            }
            for &q in &n.peers {
                if !self.nodes[q as usize].peers.contains(&i) {
                    return Err(format!("{}: peer edge not mirrored", n.asn));
                }
            }
            if n.tier == Tier::Edge && !n.customers.is_empty() {
                return Err(format!("{}: edge AS with customers", n.asn));
            }
            if n.tier == Tier::Tier1 && !n.providers.is_empty() {
                return Err(format!("{}: tier-1 with providers", n.asn));
            }
            if n.tier != Tier::Tier1 && n.providers.is_empty() {
                return Err(format!("{}: non-tier-1 without providers", n.asn));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // 1 (tier1) provider of 2 (edge).
        let mut t = Topology {
            nodes: vec![
                AsNode {
                    asn: Asn(10),
                    tier: Tier::Tier1,
                    country: *b"US",
                    born_month: 0,
                    v6_born_month: 0,
                    providers: vec![],
                    customers: vec![1],
                    peers: vec![],
                    prefixes_v4: vec![OwnedPrefix {
                        prefix: "10.0.0.0/16".parse().unwrap(),
                        born_month: 0,
                        second_origin: None,
                    }],
                    prefixes_v6: vec![],
                    strips_communities: false,
                    tags_communities: true,
                    leaks_blackholes: false,
                },
                AsNode {
                    asn: Asn(20),
                    tier: Tier::Edge,
                    country: *b"IT",
                    born_month: 3,
                    v6_born_month: u32::MAX,
                    providers: vec![0],
                    customers: vec![],
                    peers: vec![],
                    prefixes_v4: vec![OwnedPrefix {
                        prefix: "20.0.0.0/16".parse().unwrap(),
                        born_month: 5,
                        second_origin: None,
                    }],
                    prefixes_v6: vec![],
                    strips_communities: true,
                    tags_communities: false,
                    leaks_blackholes: false,
                },
            ],
            by_asn: HashMap::new(),
            months: 12,
        };
        t.by_asn.insert(Asn(10), 0);
        t.by_asn.insert(Asn(20), 1);
        t
    }

    #[test]
    fn validates_ok() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_catches_unmirrored_edge() {
        let mut t = tiny();
        t.nodes[0].customers.clear();
        assert!(t.validate().is_err());
    }

    #[test]
    fn alive_counts_respect_birth() {
        let t = tiny();
        assert_eq!(t.alive_count(0), 1);
        assert_eq!(t.alive_count(3), 2);
        assert_eq!(t.alive_indexes(0), vec![0]);
    }

    #[test]
    fn announced_prefixes_respect_birth_and_family() {
        let t = tiny();
        assert_eq!(t.announced_prefixes(0, true).len(), 1);
        assert_eq!(t.announced_prefixes(5, true).len(), 2);
        assert_eq!(t.announced_prefixes(4, true).len(), 1);
        assert!(t.announced_prefixes(5, false).is_empty());
    }

    #[test]
    fn lookup_by_asn() {
        let t = tiny();
        assert_eq!(t.index_of(Asn(20)), Some(1));
        assert_eq!(t.node(Asn(10)).unwrap().country_str(), "US");
        assert!(t.index_of(Asn(999)).is_none());
    }
}
