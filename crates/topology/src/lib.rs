//! Synthetic AS-level Internet substrate.
//!
//! The paper consumes measurement data collected from the *real*
//! Internet via RouteViews and RIPE RIS. Offline, we substitute a
//! faithful simulation (see DESIGN.md): this crate generates an
//! AS-level topology with business relationships, computes the routes
//! every AS selects under the standard Gao–Rexford policy model, and
//! evolves reachability over virtual time through an event model
//! (announcements, withdrawals, hijacks, outages, remotely-triggered
//! black-holing, flapping).
//!
//! Layering:
//!
//! * [`model`] — ASes, tiers, relationships, countries, prefix
//!   ownership, birth dates (for longitudinal growth);
//! * [`gen`] — seeded random topology generation with a growth model
//!   tuned to reproduce the *shapes* of the paper's Figure 5;
//! * [`routing`] — per-origin route computation (customer > peer >
//!   provider preference, shortest AS path, deterministic tiebreaks)
//!   with parent pointers for AS-path reconstruction;
//! * [`control`] — the control-plane state: which prefixes are
//!   announced by whom, with which extra communities; event
//!   application; per-VP route queries (the input to the collector
//!   simulator);
//! * [`events`] — the scenario vocabulary used by case studies;
//! * [`dataplane`] — hop-by-hop forwarding and traceroute emulation
//!   honouring RTBH null-routes (substitute for RIPE Atlas, §4.3).

#![forbid(unsafe_code)]

pub mod control;
pub mod dataplane;
pub mod events;
pub mod gen;
pub mod model;
pub mod routing;

pub use control::{ControlPlane, Route};
pub use events::{Event, EventKind};
pub use gen::TopologyConfig;
pub use model::{AsNode, Relationship, Tier, Topology};
pub use routing::{RouteClass, RoutingTree};
