//! Per-origin route computation under the Gao–Rexford policy model.
//!
//! Every AS prefers routes learned from customers over routes learned
//! from peers over routes learned from providers; within a class it
//! prefers the shortest AS path, breaking ties on the lowest next-hop
//! ASN (deterministic). Export follows the valley-free rule: customer
//! routes are exported to everyone, peer/provider routes only to
//! customers.
//!
//! Because routes depend only on the origin AS (all prefixes of one
//! origin share the same tree), we compute one [`RoutingTree`] per
//! origin with a three-phase breadth-first propagation and reconstruct
//! AS paths by following parent pointers. A [`RoutingCache`] memoises
//! trees per (origin, month).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use bgp_types::AsPath;

use crate::model::Topology;

/// How a route was learned, in preference order (lower = preferred).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RouteClass {
    /// The AS originates the prefix itself.
    Origin = 0,
    /// Learned from a customer.
    Customer = 1,
    /// Learned from a peer.
    Peer = 2,
    /// Learned from a provider.
    Provider = 3,
}

/// One AS's best route toward the tree's origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeEntry {
    /// How the route was learned.
    pub class: RouteClass,
    /// AS-path length to the origin (origin itself = 0).
    pub dist: u16,
    /// Next hop toward the origin (node index); the origin points at
    /// itself.
    pub parent: u32,
}

/// The best route of every AS toward one origin, at one topology
/// snapshot.
#[derive(Clone, Debug)]
pub struct RoutingTree {
    /// Origin node index.
    pub origin: u32,
    /// Per-node best route; `None` if unreachable (not alive, or
    /// disconnected).
    pub entries: Vec<Option<TreeEntry>>,
    /// Full per-node paths (self first, origin last), populated only by
    /// the worklist variant (leak scenarios): leaked routes can
    /// re-import a node's own old route, so — exactly as in the real
    /// path-vector protocol — the advertised path must travel with the
    /// route rather than be reconstructed from parent pointers.
    stored_paths: Vec<Option<Vec<u32>>>,
}

impl RoutingTree {
    /// The route entry for node `idx`.
    pub fn entry(&self, idx: u32) -> Option<TreeEntry> {
        self.entries.get(idx as usize).copied().flatten()
    }

    /// Reconstruct the AS path from `from` to the origin, inclusive of
    /// both ends. `None` when `from` has no route.
    pub fn as_path(&self, topo: &Topology, from: u32) -> Option<AsPath> {
        let hops = self.path_indexes(from)?;
        Some(AsPath::from_sequence(
            hops.into_iter().map(|i| topo.nodes[i as usize].asn.0),
        ))
    }

    /// Node indexes along the path from `from` to the origin.
    pub fn path_indexes(&self, from: u32) -> Option<Vec<u32>> {
        if !self.stored_paths.is_empty() {
            return self.stored_paths.get(from as usize)?.clone();
        }
        let mut hops = Vec::new();
        let mut cur = from;
        loop {
            hops.push(cur);
            let e = self.entries[cur as usize]?;
            if e.parent == cur {
                return Some(hops);
            }
            cur = e.parent;
            if hops.len() > self.entries.len() {
                unreachable!("routing tree contains a cycle");
            }
        }
    }
}

/// Candidate comparison: smaller wins. Deterministic by (class, dist,
/// parent ASN).
fn better(topo: &Topology, cand: TreeEntry, incumbent: Option<TreeEntry>) -> bool {
    match incumbent {
        None => true,
        Some(inc) => {
            let ck = (cand.class, cand.dist, topo.nodes[cand.parent as usize].asn);
            let ik = (inc.class, inc.dist, topo.nodes[inc.parent as usize].asn);
            ck < ik
        }
    }
}

/// Options controlling tree computation beyond plain Gao–Rexford.
#[derive(Default)]
pub struct TreeOpts<'a> {
    /// Node indexes that are administratively down (outages).
    pub disabled: Option<&'a std::collections::HashSet<u32>>,
    /// When set, a node (other than the origin) may *relay* the route
    /// onward only if this returns true. Used for RTBH propagation:
    /// providers that do not leak black-holed prefixes keep them local.
    pub relay: Option<&'a dyn Fn(u32) -> bool>,
    /// When true the origin announces only to its providers (the RTBH
    /// pattern), not to peers or customers.
    pub origin_to_providers_only: bool,
    /// Nodes that violate the valley-free export rule by re-exporting
    /// peer/provider-learned routes to their providers and peers — the
    /// RFC 7908 route-leak model. Non-empty sets switch tree
    /// computation to a generic worklist propagation.
    pub leakers: Option<&'a std::collections::HashSet<u32>>,
}

/// Compute the routing tree for `origin` over the ASes alive at
/// `month`.
pub fn compute_tree(topo: &Topology, origin: u32, month: u32) -> RoutingTree {
    compute_tree_opts(topo, origin, month, &TreeOpts::default())
}

/// [`compute_tree`] with extra constraints.
pub fn compute_tree_opts(
    topo: &Topology,
    origin: u32,
    month: u32,
    opts: &TreeOpts<'_>,
) -> RoutingTree {
    if opts.leakers.is_some_and(|l| !l.is_empty()) {
        return compute_tree_worklist(topo, origin, month, opts);
    }
    let n = topo.nodes.len();
    let mut entries: Vec<Option<TreeEntry>> = vec![None; n];
    let alive = |i: u32| {
        topo.nodes[i as usize].alive_at(month) && opts.disabled.is_none_or(|d| !d.contains(&i))
    };
    let may_relay = |i: u32| i == origin || opts.relay.is_none_or(|f| f(i));
    if !alive(origin) {
        return RoutingTree {
            origin,
            entries,
            stored_paths: Vec::new(),
        };
    }

    entries[origin as usize] = Some(TreeEntry {
        class: RouteClass::Origin,
        dist: 0,
        parent: origin,
    });

    // Phase 1: customer routes climb provider edges (BFS by distance).
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(origin);
    while let Some(u) = queue.pop_front() {
        if !may_relay(u) {
            continue;
        }
        let du = entries[u as usize].unwrap().dist;
        for &p in &topo.nodes[u as usize].providers {
            if !alive(p) {
                continue;
            }
            let cand = TreeEntry {
                class: RouteClass::Customer,
                dist: du + 1,
                parent: u,
            };
            if better(topo, cand, entries[p as usize]) {
                let first = entries[p as usize].is_none();
                entries[p as usize] = Some(cand);
                if first {
                    queue.push_back(p);
                }
            }
        }
    }

    // Phase 2: nodes holding origin/customer routes export to peers.
    let customer_holders: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            matches!(
                entries[i as usize],
                Some(TreeEntry {
                    class: RouteClass::Origin | RouteClass::Customer,
                    ..
                })
            )
        })
        .collect();
    for &u in &customer_holders {
        if !may_relay(u) || (u == origin && opts.origin_to_providers_only) {
            continue;
        }
        let du = entries[u as usize].unwrap().dist;
        for &q in &topo.nodes[u as usize].peers {
            if !alive(q) {
                continue;
            }
            let cand = TreeEntry {
                class: RouteClass::Peer,
                dist: du + 1,
                parent: u,
            };
            if better(topo, cand, entries[q as usize]) {
                entries[q as usize] = Some(cand);
            }
        }
    }

    // Phase 3: everything routed so far exports to customers,
    // transitively (BFS by distance for shortest provider routes).
    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| entries[i as usize].is_some())
        .collect();
    order.sort_by_key(|&i| entries[i as usize].unwrap().dist);
    let mut queue: VecDeque<u32> = order.into();
    while let Some(u) = queue.pop_front() {
        if !may_relay(u) || (u == origin && opts.origin_to_providers_only) {
            continue;
        }
        let du = entries[u as usize].unwrap().dist;
        for &c in &topo.nodes[u as usize].customers {
            if !alive(c) {
                continue;
            }
            let cand = TreeEntry {
                class: RouteClass::Provider,
                dist: du + 1,
                parent: u,
            };
            if better(topo, cand, entries[c as usize]) {
                entries[c as usize] = Some(cand);
                queue.push_back(c);
            }
        }
    }

    RoutingTree {
        origin,
        entries,
        stored_paths: Vec::new(),
    }
}

/// Generic worklist propagation: the same Gao–Rexford preference and
/// export rules as the three-phase BFS, except that nodes in
/// `opts.leakers` also export peer/provider-learned routes to their
/// providers and peers.
///
/// Propagation is monotone — an improvement to a node's best route
/// never shrinks the set of neighbors it exports to (Origin < Customer
/// < Peer < Provider, and exportability only grows along that order) —
/// so relaxing to a fixpoint yields the unique stable solution
/// regardless of processing order.
/// One node's Adj-RIBs-In in the worklist propagation: advertising
/// neighbor → (class at this node, distance, advertised path).
type AdjRibIn = HashMap<u32, (RouteClass, u16, Vec<u32>)>;

fn compute_tree_worklist(
    topo: &Topology,
    origin: u32,
    month: u32,
    opts: &TreeOpts<'_>,
) -> RoutingTree {
    let n = topo.nodes.len();
    let mut entries: Vec<Option<TreeEntry>> = vec![None; n];
    let mut paths: Vec<Option<Vec<u32>>> = vec![None; n];
    // Per-node Adj-RIBs-In: neighbor → (class, dist, path). A fresh
    // advertisement from a neighbor *replaces* that neighbor's earlier
    // one (implicit withdraw), then the best route is re-selected —
    // the real path-vector discipline, needed because leaks make
    // routes flow against the three-phase order.
    let mut ribs: Vec<AdjRibIn> = vec![HashMap::new(); n];
    let alive = |i: u32| {
        topo.nodes[i as usize].alive_at(month) && opts.disabled.is_none_or(|d| !d.contains(&i))
    };
    let may_relay = |i: u32| i == origin || opts.relay.is_none_or(|f| f(i));
    let leaks = |i: u32| opts.leakers.is_some_and(|l| l.contains(&i));
    if !alive(origin) {
        return RoutingTree {
            origin,
            entries,
            stored_paths: paths,
        };
    }
    entries[origin as usize] = Some(TreeEntry {
        class: RouteClass::Origin,
        dist: 0,
        parent: origin,
    });
    paths[origin as usize] = Some(vec![origin]);

    // Re-select v's best from its Adj-RIBs-In; returns whether the
    // selected route changed.
    let reselect = |v: u32,
                    entries: &mut Vec<Option<TreeEntry>>,
                    paths: &mut Vec<Option<Vec<u32>>>,
                    ribs: &Vec<AdjRibIn>|
     -> bool {
        let best = ribs[v as usize]
            .iter()
            .min_by_key(|(nbr, (class, dist, _))| (*class, *dist, topo.nodes[**nbr as usize].asn))
            .map(|(nbr, (class, dist, path))| {
                (
                    TreeEntry {
                        class: *class,
                        dist: *dist,
                        parent: *nbr,
                    },
                    path.clone(),
                )
            });
        match best {
            Some((e, path)) => {
                let mut vpath = Vec::with_capacity(path.len() + 1);
                vpath.push(v);
                vpath.extend_from_slice(&path);
                let changed = entries[v as usize] != Some(e)
                    || paths[v as usize].as_deref() != Some(&vpath[..]);
                entries[v as usize] = Some(e);
                paths[v as usize] = Some(vpath);
                changed
            }
            None => {
                let changed = entries[v as usize].is_some();
                entries[v as usize] = None;
                paths[v as usize] = None;
                changed
            }
        }
    };

    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(origin);
    queued[origin as usize] = true;
    // Safety valve: leaky policy systems are not guaranteed to be
    // dispute-free in general; our (class, dist) preference converges,
    // but bound the work defensively rather than risk livelock.
    let mut budget = (n as u64 + 1) * (n as u64 + 1) * 8;
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let entry = entries[u as usize];
        let relay_ok = may_relay(u);
        let exportable_up = entry.is_some_and(|e| {
            matches!(e.class, RouteClass::Origin | RouteClass::Customer) || leaks(u)
        });
        let du = entry.map(|e| e.dist).unwrap_or(0);
        let upath = paths[u as usize].clone();
        // Advertise or implicitly withdraw at v: a fresh advertisement
        // replaces u's earlier one in v's Adj-RIBs-In; a None offer (no
        // route, export not allowed, or AS-path loop — RFC 4271
        // §9.1.2's loop prevention, which is what stops a leaked route
        // from re-importing through itself) removes it.
        let update = |v: u32,
                      class: Option<RouteClass>,
                      entries: &mut Vec<Option<TreeEntry>>,
                      paths: &mut Vec<Option<Vec<u32>>>,
                      ribs: &mut Vec<AdjRibIn>,
                      queue: &mut VecDeque<u32>,
                      queued: &mut Vec<bool>| {
            if !alive(v) {
                return;
            }
            let advert = match (class, &upath) {
                (Some(c), Some(up)) if !up.contains(&v) => Some((c, up)),
                _ => None,
            };
            let changed = match advert {
                Some((c, up)) => {
                    ribs[v as usize].insert(u, (c, du + 1, up.clone()));
                    reselect(v, entries, paths, ribs)
                }
                None => ribs[v as usize].remove(&u).is_some() && reselect(v, entries, paths, ribs),
            };
            if changed && !queued[v as usize] {
                queued[v as usize] = true;
                queue.push_back(v);
            }
        };
        let up_class = (relay_ok && exportable_up).then_some(RouteClass::Customer);
        for &p in &topo.nodes[u as usize].providers.clone() {
            update(
                p,
                up_class,
                &mut entries,
                &mut paths,
                &mut ribs,
                &mut queue,
                &mut queued,
            );
        }
        let peer_class =
            (relay_ok && exportable_up && !(u == origin && opts.origin_to_providers_only))
                .then_some(RouteClass::Peer);
        for &q in &topo.nodes[u as usize].peers.clone() {
            update(
                q,
                peer_class,
                &mut entries,
                &mut paths,
                &mut ribs,
                &mut queue,
                &mut queued,
            );
        }
        let down_class =
            (relay_ok && entry.is_some() && !(u == origin && opts.origin_to_providers_only))
                .then_some(RouteClass::Provider);
        for &c in &topo.nodes[u as usize].customers.clone() {
            update(
                c,
                down_class,
                &mut entries,
                &mut paths,
                &mut ribs,
                &mut queue,
                &mut queued,
            );
        }
    }
    RoutingTree {
        origin,
        entries,
        stored_paths: paths,
    }
}

/// Memoises routing trees per `(origin, month)`.
#[derive(Default)]
pub struct RoutingCache {
    trees: HashMap<(u32, u32), Arc<RoutingTree>>,
}

impl RoutingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tree for `origin` at `month`, computing it on first use.
    pub fn tree(&mut self, topo: &Topology, origin: u32, month: u32) -> Arc<RoutingTree> {
        self.trees
            .entry((origin, month))
            .or_insert_with(|| Arc::new(compute_tree(topo, origin, month)))
            .clone()
    }

    /// Number of cached trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Drop every cached tree (topology changed).
    pub fn clear(&mut self) {
        self.trees.clear();
    }
}

/// Compare two tree entries *at the same node* for different origins —
/// which origin's route does the node select? Smaller = selected.
/// MOAS visibility analyses use this.
pub fn select_between(
    topo: &Topology,
    a: Option<TreeEntry>,
    b: Option<TreeEntry>,
) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let kx = (x.class, x.dist, topo.nodes[x.parent as usize].asn);
            let ky = (y.class, y.dist, topo.nodes[y.parent as usize].asn);
            kx.cmp(&ky)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AsNode, Tier};
    use bgp_types::Asn;
    use std::collections::HashMap;

    /// Build a topology from explicit edges.
    /// providers[i] lists the providers of node i; peers undirected.
    fn build(
        tiers: &[Tier],
        provider_edges: &[(u32, u32)], // (customer, provider)
        peer_edges: &[(u32, u32)],
    ) -> Topology {
        let mut nodes: Vec<AsNode> = tiers
            .iter()
            .enumerate()
            .map(|(i, &tier)| AsNode {
                asn: Asn((i as u32 + 1) * 10),
                tier,
                country: *b"US",
                born_month: 0,
                v6_born_month: u32::MAX,
                providers: vec![],
                customers: vec![],
                peers: vec![],
                prefixes_v4: vec![],
                prefixes_v6: vec![],
                strips_communities: false,
                tags_communities: false,
                leaks_blackholes: false,
            })
            .collect();
        for &(c, p) in provider_edges {
            nodes[c as usize].providers.push(p);
            nodes[p as usize].customers.push(c);
        }
        for &(a, b) in peer_edges {
            nodes[a as usize].peers.push(b);
            nodes[b as usize].peers.push(a);
        }
        let by_asn: HashMap<Asn, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.asn, i as u32))
            .collect();
        Topology {
            nodes,
            by_asn,
            months: 1,
        }
    }

    /// The classic "shark fin": two tier-1s peering, each with one
    /// customer; customers reach each other through the peering link.
    ///
    /// ```text
    ///   0 ===== 1     (peers)
    ///   |       |
    ///   2       3     (customers)
    /// ```
    fn sharkfin() -> Topology {
        build(
            &[Tier::Tier1, Tier::Tier1, Tier::Edge, Tier::Edge],
            &[(2, 0), (3, 1)],
            &[(0, 1)],
        )
    }

    #[test]
    fn origin_entry_is_zero() {
        let t = sharkfin();
        let tree = compute_tree(&t, 2, 0);
        let e = tree.entry(2).unwrap();
        assert_eq!(e.class, RouteClass::Origin);
        assert_eq!(e.dist, 0);
        assert_eq!(e.parent, 2);
    }

    #[test]
    fn provider_gets_customer_route() {
        let t = sharkfin();
        let tree = compute_tree(&t, 2, 0);
        let e = tree.entry(0).unwrap();
        assert_eq!(e.class, RouteClass::Customer);
        assert_eq!(e.dist, 1);
    }

    #[test]
    fn peer_route_crosses_clique() {
        let t = sharkfin();
        let tree = compute_tree(&t, 2, 0);
        let e = tree.entry(1).unwrap();
        assert_eq!(e.class, RouteClass::Peer);
        assert_eq!(e.dist, 2);
    }

    #[test]
    fn far_edge_reaches_via_provider() {
        let t = sharkfin();
        let tree = compute_tree(&t, 2, 0);
        let e = tree.entry(3).unwrap();
        assert_eq!(e.class, RouteClass::Provider);
        assert_eq!(e.dist, 3);
        let path = tree.as_path(&t, 3).unwrap();
        assert_eq!(path.to_string(), "40 20 10 30");
    }

    #[test]
    fn valley_free_blocks_peer_to_peer_transit() {
        // 0 -- 1 -- 2 all peers; origin at 2's customer 3.
        // Node 0 must NOT reach: route would go peer(1)→peer(0).
        //
        //   0 === 1 === 2
        //               |
        //               3
        let t = build(
            &[Tier::Tier1, Tier::Tier1, Tier::Tier1, Tier::Edge],
            &[(3, 2)],
            &[(0, 1), (1, 2)],
        );
        let tree = compute_tree(&t, 3, 0);
        assert!(tree.entry(1).is_some()); // peer of 2: gets peer route
        assert!(tree.entry(0).is_none()); // would need peer→peer export
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // Node 1 peers with origin 0 (dist 1), but also has a customer
        // chain 0→2→1 (dist 2). Gao–Rexford says prefer the customer
        // route despite being longer.
        //
        //   1 ==== 0     (peer edge)
        //   |      |
        //   2------+     (2 is customer of 1, 0 is customer of 2)
        let t = build(
            &[Tier::Edge, Tier::Tier1, Tier::Transit],
            &[(0, 2), (2, 1)],
            &[(0, 1)],
        );
        let tree = compute_tree(&t, 0, 0);
        let e = tree.entry(1).unwrap();
        assert_eq!(e.class, RouteClass::Customer);
        assert_eq!(e.dist, 2);
        assert_eq!(tree.as_path(&t, 1).unwrap().to_string(), "20 30 10");
    }

    #[test]
    fn shortest_within_class_wins() {
        // Origin 0 has two providers 1, 2; 3 is provider of both.
        // 3's customer routes: via 1 (dist 2) or via 2 (dist 2) — tie
        // broken on lower parent ASN (node 1, ASN 20).
        let t = build(
            &[Tier::Edge, Tier::Transit, Tier::Transit, Tier::Tier1],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[],
        );
        let tree = compute_tree(&t, 0, 0);
        let e = tree.entry(3).unwrap();
        assert_eq!(e.dist, 2);
        assert_eq!(e.parent, 1); // ASN 20 < ASN 30
    }

    #[test]
    fn dead_nodes_have_no_route() {
        let mut t = sharkfin();
        t.nodes[3].born_month = 5;
        let tree = compute_tree(&t, 2, 0);
        assert!(tree.entry(3).is_none());
        let tree_later = compute_tree(&t, 2, 5);
        assert!(tree_later.entry(3).is_some());
    }

    #[test]
    fn dead_origin_empty_tree() {
        let mut t = sharkfin();
        t.nodes[2].born_month = 9;
        let tree = compute_tree(&t, 2, 0);
        assert!(tree.entries.iter().all(|e| e.is_none()));
    }

    #[test]
    fn cache_reuses_trees() {
        let t = sharkfin();
        let mut cache = RoutingCache::new();
        let a = cache.tree(&t, 2, 0);
        let b = cache.tree(&t, 2, 0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        cache.tree(&t, 3, 0);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn select_between_prefers_better_class() {
        let t = sharkfin();
        // At node 0: origin-2 tree gives a Customer route; origin-3
        // tree gives... 0 reaches 3 via peer 1 (class Peer).
        let t2 = compute_tree(&t, 2, 0);
        let t3 = compute_tree(&t, 3, 0);
        let ord = select_between(&t, t2.entry(0), t3.entry(0));
        assert_eq!(ord, std::cmp::Ordering::Less);
    }

    #[test]
    fn path_indexes_match_as_path() {
        let t = sharkfin();
        let tree = compute_tree(&t, 2, 0);
        let idx = tree.path_indexes(3).unwrap();
        assert_eq!(idx, vec![3, 1, 0, 2]);
    }

    /// A multi-homed customer between two providers, one of which has
    /// its own customer to observe from:
    ///
    /// ```text
    ///   0 ===== 1      (tier-1 peers)
    ///   |  \   /|
    ///   2   3   4      (3 multihomed: customer of 0 AND 1)
    /// ```
    fn multihomed() -> Topology {
        build(
            &[Tier::Tier1, Tier::Tier1, Tier::Edge, Tier::Edge, Tier::Edge],
            &[(2, 0), (3, 0), (3, 1), (4, 1)],
            &[(0, 1)],
        )
    }

    #[test]
    fn worklist_equals_three_phase_without_leakers() {
        for topo in [sharkfin(), multihomed()] {
            for origin in 0..topo.nodes.len() as u32 {
                let reference = compute_tree(&topo, origin, 0);
                let leakers = std::collections::HashSet::new();
                let tree = compute_tree_worklist(
                    &topo,
                    origin,
                    0,
                    &TreeOpts {
                        leakers: Some(&leakers),
                        ..TreeOpts::default()
                    },
                );
                assert_eq!(tree.entries, reference.entries, "origin {origin}");
            }
        }
    }

    #[test]
    fn leaker_redistributes_provider_routes() {
        let t = multihomed();
        // Origin at node 2 (customer of 0). Without a leak, node 1
        // reaches 2 over the peering (class Peer), node 4 under it.
        let clean = compute_tree(&t, 2, 0);
        assert_eq!(clean.entry(1).unwrap().class, RouteClass::Peer);
        // Node 3 leaks: it learned 2's route from provider 0 and
        // re-exports it to provider 1. Node 1 now has a *customer*
        // route via 3 and prefers it over the peer route.
        let leakers: std::collections::HashSet<u32> = [3].into_iter().collect();
        let leaked = compute_tree_opts(
            &t,
            2,
            0,
            &TreeOpts {
                leakers: Some(&leakers),
                ..TreeOpts::default()
            },
        );
        let e1 = leaked.entry(1).unwrap();
        assert_eq!(e1.class, RouteClass::Customer);
        assert_eq!(e1.parent, 3);
        // The leaked path is visible downstream at node 4 and violates
        // valley-freeness: 1 ← 3 ← 0 ← 2 descends then ascends.
        let path = leaked.as_path(&t, 4).unwrap().to_string();
        assert_eq!(path, "50 20 40 10 30");
    }

    #[test]
    fn leak_does_not_affect_other_directions() {
        let t = multihomed();
        // Origin at 4 (customer of 1). Leaker 3 only matters for routes
        // it actually carries upward; 0's route to 4 improves too (via
        // leaked customer path) — but 2, single-homed under 0, simply
        // follows 0.
        let leakers: std::collections::HashSet<u32> = [3].into_iter().collect();
        let leaked = compute_tree_opts(
            &t,
            4,
            0,
            &TreeOpts {
                leakers: Some(&leakers),
                ..TreeOpts::default()
            },
        );
        let e0 = leaked.entry(0).unwrap();
        // 0 prefers the customer route through the leaker 3 over its
        // peer route through 1.
        assert_eq!(e0.class, RouteClass::Customer);
        assert_eq!(e0.parent, 3);
        assert!(leaked.entry(2).is_some());
    }

    #[test]
    fn leaker_with_no_route_changes_nothing() {
        let t = multihomed();
        // Node 2 as leaker cannot leak routes to origin 2's own tree
        // beyond what it already exports as origin.
        let leakers: std::collections::HashSet<u32> = [2].into_iter().collect();
        let leaked = compute_tree_opts(
            &t,
            2,
            0,
            &TreeOpts {
                leakers: Some(&leakers),
                ..TreeOpts::default()
            },
        );
        let clean = compute_tree(&t, 2, 0);
        assert_eq!(leaked.entries, clean.entries);
    }
}
