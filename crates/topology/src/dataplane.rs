//! Data-plane emulation: hop-by-hop forwarding and traceroute.
//!
//! Substitute for the RIPE Atlas measurements of Section 4.3: instead
//! of real probes, we forward a virtual packet AS-by-AS along each
//! hop's *own* selected route, dropping it at any AS that null-routes
//! the destination (RTBH). The two metrics of Figure 4 — fraction of
//! probes reaching the destination and fraction reaching the origin
//! AS — fall out of [`traceroute`].

use bgp_types::{Asn, Prefix};

use crate::control::ControlPlane;

/// The outcome of one emulated traceroute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceResult {
    /// AS-level hops traversed, probe AS first.
    pub hops: Vec<Asn>,
    /// Whether the packet entered the origin AS of the covering
    /// prefix.
    pub reached_origin: bool,
    /// Whether the packet reached the destination host (origin AS
    /// entered and not null-routed anywhere en route).
    pub reached_dest: bool,
    /// The AS that dropped the packet, if any.
    pub dropped_at: Option<Asn>,
}

/// Emulate a packet from `src` toward the host address `dst` (a /32
/// or /128 prefix). Returns `None` when `src` is unknown or no
/// announced prefix covers `dst`.
pub fn traceroute(cp: &mut ControlPlane, src: Asn, dst: &Prefix) -> Option<TraceResult> {
    let mut cur = cp.topology().index_of(src)?;
    // Per-hop FIB fallback chain: most specific covering prefix first.
    let chain = cp.lpm_chain(dst);
    let most_specific = *chain.first()?;
    // The set of ASes null-routing this destination (empty unless the
    // most specific covering prefix is black-holed).
    let blackholers: Vec<u32> = cp.rtbh_blackholers(&most_specific);
    let is_rtbh = cp.is_rtbh(&most_specific);
    // During RTBH the destination host lives in the black-holing
    // origin's network; a packet delivered to a different origin of a
    // MOAS covering prefix went to the wrong network.
    let expected_origin: Option<Asn> = if is_rtbh {
        cp.origins_of(&most_specific)
            .first()
            .map(|&i| cp.topology().nodes[i as usize].asn)
    } else {
        None
    };

    let mut hops = Vec::new();
    let n = cp.topology().nodes.len();
    for _ in 0..=n {
        let asn = cp.topology().nodes[cur as usize].asn;
        hops.push(asn);

        // Null-route check: a blackholing AS drops traffic for the
        // black-holed destination the moment it arrives.
        if is_rtbh && blackholers.contains(&cur) {
            return Some(TraceResult {
                hops,
                reached_origin: false,
                reached_dest: false,
                dropped_at: Some(asn),
            });
        }

        // Each hop consults its own FIB: the most specific covering
        // prefix it has a route for.
        let route = match chain.iter().find_map(|p| cp.route_at(cur, p)) {
            Some(r) => r,
            None => {
                return Some(TraceResult {
                    hops,
                    reached_origin: false,
                    reached_dest: false,
                    dropped_at: Some(asn),
                })
            }
        };
        if route.origin == asn {
            let right_network = expected_origin.is_none_or(|e| e == asn);
            return Some(TraceResult {
                hops,
                reached_origin: right_network,
                reached_dest: right_network,
                dropped_at: None,
            });
        }
        // Step one AS toward the selected origin.
        let next = route.as_path.hops_dedup().get(1).copied();
        match next.and_then(|a| cp.topology().index_of(a)) {
            Some(nx) if nx != cur => cur = nx,
            _ => {
                return Some(TraceResult {
                    hops,
                    reached_origin: false,
                    reached_dest: false,
                    dropped_at: Some(asn),
                })
            }
        }
    }
    // Forwarding loop (can only arise from inconsistent MOAS winners);
    // report as a drop at the last hop.
    let last = *hops.last().expect("at least the source hop");
    Some(TraceResult {
        hops,
        reached_origin: false,
        reached_dest: false,
        dropped_at: Some(last),
    })
}

/// Pick up to `n` probe ASes for measuring reachability of `origin`'s
/// prefixes, mimicking the probe-selection of §4.3: direct neighbours
/// first, then ASes in the same country, then anything else.
pub fn select_probes(cp: &ControlPlane, origin: Asn, n: usize) -> Vec<Asn> {
    let topo = cp.topology();
    let Some(oidx) = topo.index_of(origin) else {
        return Vec::new();
    };
    let onode = &topo.nodes[oidx as usize];
    let mut out: Vec<Asn> = Vec::new();
    let push = |asn: Asn, out: &mut Vec<Asn>| {
        if asn != origin && !out.contains(&asn) {
            out.push(asn);
        }
    };
    for &i in onode
        .providers
        .iter()
        .chain(&onode.peers)
        .chain(&onode.customers)
    {
        push(topo.nodes[i as usize].asn, &mut out);
    }
    for node in &topo.nodes {
        if out.len() >= n {
            break;
        }
        if node.country == onode.country && node.alive_at(cp.month()) {
            push(node.asn, &mut out);
        }
    }
    for node in &topo.nodes {
        if out.len() >= n {
            break;
        }
        if node.alive_at(cp.month()) {
            push(node.asn, &mut out);
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, EventKind};
    use crate::gen::{generate, TopologyConfig};
    use crate::model::Tier;
    use std::sync::Arc;

    fn cp() -> ControlPlane {
        ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(21))), u64::MAX)
    }

    #[test]
    fn traceroute_reaches_everyone_in_steady_state() {
        let mut c = cp();
        let topo = c.topology().clone();
        let dst_node = &topo.nodes[15];
        let dst = dst_node.prefixes_v4[0].prefix.host(1);
        for src in topo.nodes.iter().take(8) {
            let r = traceroute(&mut c, src.asn, &dst).unwrap();
            assert!(r.reached_dest, "{} cannot reach {}", src.asn, dst);
            assert_eq!(*r.hops.last().unwrap(), dst_node.asn);
            assert_eq!(r.hops[0], src.asn);
        }
    }

    #[test]
    fn traceroute_from_origin_is_one_hop() {
        let mut c = cp();
        let node = &c.topology().nodes[10];
        let asn = node.asn;
        let dst = node.prefixes_v4[0].prefix.host(3);
        let r = traceroute(&mut c, asn, &dst).unwrap();
        assert!(r.reached_dest);
        assert_eq!(r.hops, vec![asn]);
    }

    #[test]
    fn rtbh_drops_at_provider_but_not_from_customers() {
        let mut c = cp();
        let topo = c.topology().clone();
        // Edge AS with a provider; black-hole one of its hosts.
        let (edge_idx, _) = topo
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.tier == Tier::Edge && !n.providers.is_empty())
            .map(|(i, n)| (i as u32, n))
            .unwrap();
        let origin = topo.nodes[edge_idx as usize].asn;
        let host = topo.nodes[edge_idx as usize].prefixes_v4[0].prefix.host(9);
        c.apply(&Event::at(
            5,
            EventKind::StartRtbh {
                origin,
                prefix: host,
            },
        ));

        // A probe far away (tier-1 that is not a direct provider)
        // must be dropped at a black-holing provider.
        let providers = &topo.nodes[edge_idx as usize].providers;
        let far = topo
            .nodes
            .iter()
            .enumerate()
            .find(|(i, n)| n.tier == Tier::Tier1 && !providers.contains(&(*i as u32)))
            .map(|(_, n)| n.asn)
            .unwrap();
        let r = traceroute(&mut c, far, &host).unwrap();
        assert!(!r.reached_dest, "far probe reached during RTBH: {:?}", r);
        // Either null-routed en route, or misdelivered to another
        // origin of a MOAS covering prefix — in both cases the
        // black-holed host was not reached.
        assert!(r.dropped_at.is_some() || !r.reached_origin);

        // After RTBH ends, the same probe succeeds.
        c.apply(&Event::at(
            50,
            EventKind::EndRtbh {
                origin,
                prefix: host,
            },
        ));
        let r2 = traceroute(&mut c, far, &host).unwrap();
        assert!(r2.reached_dest, "far probe failed after RTBH: {:?}", r2);
    }

    #[test]
    fn unknown_destination_returns_none() {
        let mut c = cp();
        let src = c.topology().nodes[0].asn;
        let dst: Prefix = "198.18.0.1/32".parse().unwrap();
        assert!(traceroute(&mut c, src, &dst).is_none());
    }

    #[test]
    fn probe_selection_prefers_neighbours() {
        let c = cp();
        let topo = c.topology().clone();
        let (idx, node) = topo
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| !n.providers.is_empty())
            .unwrap();
        let _ = idx;
        let probes = select_probes(&c, node.asn, 10);
        assert!(!probes.is_empty());
        assert!(probes.len() <= 10);
        let first_provider = topo.nodes[node.providers[0] as usize].asn;
        assert_eq!(probes[0], first_provider);
        assert!(!probes.contains(&node.asn));
    }
}
