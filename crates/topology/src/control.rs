//! The control-plane state machine: which prefixes are announced by
//! whom at the current virtual time, and which route each vantage
//! point selects.
//!
//! [`ControlPlane`] is the oracle the collector simulator queries. It
//! owns the topology, applies [`Event`]s, memoises per-origin routing
//! trees, and answers `route(vp, prefix)` with the AS path and
//! communities the VP would export to a collector.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use bgp_types::{AsPath, Asn, Community, CommunitySet, Prefix, PrefixTrie};

use crate::events::{Event, EventKind};
use crate::model::{Tier, Topology};
use crate::routing::{compute_tree_opts, RouteClass, RoutingTree, TreeOpts};

/// The community value our simulated ASes use for "origin-attached"
/// informational communities.
pub const TAG_ORIGIN: u16 = 1000;
/// The community value for ingress ("learned here") tags.
pub const TAG_INGRESS: u16 = 2001;

/// The route a VP selects for a prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    /// The origin AS the VP routes toward.
    pub origin: Asn,
    /// Full AS path, VP first, origin last.
    pub as_path: AsPath,
    /// How the VP learned the route (partial-feed VPs only export
    /// `Origin`/`Customer` routes).
    pub class: RouteClass,
    /// Communities as visible at the VP (after en-route stripping).
    pub communities: CommunitySet,
}

#[derive(Clone, Copy, Debug)]
struct StaticAnn {
    origin: u32,
    born: u32,
    second: Option<u32>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TreeKey {
    origin: u32,
    month: u32,
    epoch: u32,
    rtbh: bool,
}

/// Control-plane oracle over a topology plus dynamic events.
pub struct ControlPlane {
    topo: Arc<Topology>,
    /// Virtual seconds per growth month.
    pub seconds_per_month: u64,
    time: u64,
    month: u32,
    /// Bumped whenever the disabled set changes (invalidates trees).
    epoch: u32,
    disabled: HashSet<u32>,
    /// Nodes currently violating valley-free export (route leaks).
    leakers: HashSet<u32>,
    withdrawn: HashSet<(u32, Prefix)>,
    hijacks: HashMap<Prefix, BTreeSet<u32>>,
    rtbh: HashMap<Prefix, u32>,
    static_index: HashMap<Prefix, Vec<StaticAnn>>,
    trees: HashMap<TreeKey, Arc<RoutingTree>>,
    /// Lazily rebuilt LPM trie of announced prefixes (for the data
    /// plane); `lpm_stale` marks it dirty.
    lpm_trie: PrefixTrie<()>,
    lpm_stale: bool,
}

impl ControlPlane {
    /// Build over a topology. `seconds_per_month` maps event time to
    /// the growth timeline (use a large value for static scenarios).
    pub fn new(topo: Arc<Topology>, seconds_per_month: u64) -> Self {
        let mut static_index: HashMap<Prefix, Vec<StaticAnn>> = HashMap::new();
        for (i, n) in topo.nodes.iter().enumerate() {
            for op in n.prefixes_v4.iter().chain(n.prefixes_v6.iter()) {
                static_index.entry(op.prefix).or_default().push(StaticAnn {
                    origin: i as u32,
                    born: op.born_month,
                    second: op.second_origin,
                });
            }
        }
        ControlPlane {
            topo,
            seconds_per_month: seconds_per_month.max(1),
            time: 0,
            month: 0,
            epoch: 0,
            disabled: HashSet::new(),
            leakers: HashSet::new(),
            withdrawn: HashSet::new(),
            hijacks: HashMap::new(),
            rtbh: HashMap::new(),
            static_index,
            trees: HashMap::new(),
            lpm_trie: PrefixTrie::new(),
            lpm_stale: true,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time in seconds.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current growth month.
    pub fn month(&self) -> u32 {
        self.month
    }

    /// Move time forward (never backward); returns prefixes that became
    /// newly announced because their birth month was crossed.
    pub fn advance_to(&mut self, t: u64) -> Vec<Prefix> {
        if t <= self.time {
            return Vec::new();
        }
        self.time = t;
        let new_month = ((t / self.seconds_per_month) as u32).min(self.topo.months);
        let mut born = Vec::new();
        if new_month != self.month {
            let (lo, hi) = (self.month, new_month);
            for (prefix, anns) in &self.static_index {
                for a in anns {
                    let node = &self.topo.nodes[a.origin as usize];
                    let eff_born = if prefix.is_ipv4() {
                        a.born.max(node.born_month)
                    } else {
                        a.born.max(node.v6_born_month)
                    };
                    if eff_born > lo && eff_born <= hi {
                        born.push(*prefix);
                        break;
                    }
                }
            }
            self.month = new_month;
            self.lpm_stale = true;
        }
        born
    }

    fn effective_born(&self, prefix: &Prefix, ann: &StaticAnn) -> u32 {
        let node = &self.topo.nodes[ann.origin as usize];
        if prefix.is_ipv4() {
            ann.born.max(node.born_month)
        } else {
            ann.born.max(node.v6_born_month)
        }
    }

    fn origin_active(&self, idx: u32) -> bool {
        self.topo.nodes[idx as usize].alive_at(self.month) && !self.disabled.contains(&idx)
    }

    /// Node indexes currently announcing `prefix`.
    pub fn origins_of(&self, prefix: &Prefix) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        if let Some(anns) = self.static_index.get(prefix) {
            for a in anns {
                if self.effective_born(prefix, a) <= self.month
                    && self.origin_active(a.origin)
                    && !self.withdrawn.contains(&(a.origin, *prefix))
                {
                    out.push(a.origin);
                }
                if let Some(second) = a.second {
                    if self.effective_born(prefix, a) <= self.month
                        && self.origin_active(second)
                        && !self.withdrawn.contains(&(second, *prefix))
                    {
                        out.push(second);
                    }
                }
            }
        }
        if let Some(hj) = self.hijacks.get(prefix) {
            out.extend(hj.iter().copied().filter(|&i| self.origin_active(i)));
        }
        if let Some(&o) = self.rtbh.get(prefix) {
            if self.origin_active(o) {
                out.push(o);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every prefix with at least one active origin right now.
    pub fn announced_prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = Vec::new();
        for prefix in self.static_index.keys() {
            if !self.origins_of(prefix).is_empty() {
                out.push(*prefix);
            }
        }
        for prefix in self.hijacks.keys() {
            if !self.origins_of(prefix).is_empty() {
                out.push(*prefix);
            }
        }
        for prefix in self.rtbh.keys() {
            if !self.origins_of(prefix).is_empty() {
                out.push(*prefix);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Apply one event; time advances to the event's timestamp first.
    /// Returns the prefixes whose VP-visible routes may have changed.
    pub fn apply(&mut self, ev: &Event) -> Vec<Prefix> {
        let mut affected = self.advance_to(ev.time);
        self.lpm_stale = true;
        match ev.kind {
            EventKind::Announce { origin, prefix } => {
                if let Some(idx) = self.topo.index_of(origin) {
                    self.withdrawn.remove(&(idx, prefix));
                    let known = self
                        .static_index
                        .get(&prefix)
                        .is_some_and(|anns| anns.iter().any(|a| a.origin == idx));
                    if !known {
                        self.static_index
                            .entry(prefix)
                            .or_default()
                            .push(StaticAnn {
                                origin: idx,
                                born: self.month,
                                second: None,
                            });
                    }
                    affected.push(prefix);
                }
            }
            EventKind::Withdraw { origin, prefix } => {
                if let Some(idx) = self.topo.index_of(origin) {
                    self.withdrawn.insert((idx, prefix));
                    affected.push(prefix);
                }
            }
            EventKind::StartHijack { attacker, prefix } => {
                if let Some(idx) = self.topo.index_of(attacker) {
                    self.hijacks.entry(prefix).or_default().insert(idx);
                    affected.push(prefix);
                }
            }
            EventKind::EndHijack { attacker, prefix } => {
                if let Some(idx) = self.topo.index_of(attacker) {
                    if let Some(set) = self.hijacks.get_mut(&prefix) {
                        set.remove(&idx);
                        if set.is_empty() {
                            self.hijacks.remove(&prefix);
                        }
                    }
                    affected.push(prefix);
                }
            }
            EventKind::StartOutage { asn } => {
                if let Some(idx) = self.topo.index_of(asn) {
                    let before = self.announced_prefixes();
                    self.disabled.insert(idx);
                    self.epoch += 1;
                    self.trees.clear();
                    affected.extend(before);
                }
            }
            EventKind::EndOutage { asn } => {
                if let Some(idx) = self.topo.index_of(asn) {
                    self.disabled.remove(&idx);
                    self.epoch += 1;
                    self.trees.clear();
                    affected.extend(self.announced_prefixes());
                }
            }
            EventKind::StartLeak { leaker } => {
                if let Some(idx) = self.topo.index_of(leaker) {
                    if self.leakers.insert(idx) {
                        self.epoch += 1;
                        self.trees.clear();
                        affected.extend(self.announced_prefixes());
                    }
                }
            }
            EventKind::EndLeak { leaker } => {
                if let Some(idx) = self.topo.index_of(leaker) {
                    if self.leakers.remove(&idx) {
                        self.epoch += 1;
                        self.trees.clear();
                        affected.extend(self.announced_prefixes());
                    }
                }
            }
            EventKind::StartRtbh { origin, prefix } => {
                if let Some(idx) = self.topo.index_of(origin) {
                    self.rtbh.insert(prefix, idx);
                    affected.push(prefix);
                }
            }
            EventKind::EndRtbh { origin: _, prefix } => {
                self.rtbh.remove(&prefix);
                affected.push(prefix);
            }
        }
        affected.sort_unstable();
        affected.dedup();
        affected
    }

    /// The routing tree for `origin_idx` under current conditions.
    /// `rtbh` selects the restricted-propagation tree.
    pub fn tree(&mut self, origin_idx: u32, rtbh: bool) -> Arc<RoutingTree> {
        let key = TreeKey {
            origin: origin_idx,
            month: self.month,
            epoch: self.epoch,
            rtbh,
        };
        if let Some(t) = self.trees.get(&key) {
            return t.clone();
        }
        let topo = self.topo.clone();
        let tree = if rtbh {
            let providers: HashSet<u32> = topo.nodes[origin_idx as usize]
                .providers
                .iter()
                .copied()
                .collect();
            let relay = |i: u32| -> bool {
                !providers.contains(&i) || topo.nodes[i as usize].leaks_blackholes
            };
            let opts = TreeOpts {
                disabled: Some(&self.disabled),
                relay: Some(&relay),
                origin_to_providers_only: true,
                leakers: Some(&self.leakers),
            };
            compute_tree_opts(&topo, origin_idx, self.month, &opts)
        } else {
            let opts = TreeOpts {
                disabled: Some(&self.disabled),
                relay: None,
                origin_to_providers_only: false,
                leakers: Some(&self.leakers),
            };
            compute_tree_opts(&topo, origin_idx, self.month, &opts)
        };
        let tree = Arc::new(tree);
        self.trees.insert(key, tree.clone());
        tree
    }

    /// Whether `prefix` is currently black-holed.
    pub fn is_rtbh(&self, prefix: &Prefix) -> bool {
        self.rtbh.contains_key(prefix)
    }

    /// ASes that null-route traffic to `prefix` during RTBH (the
    /// origin's transit providers).
    pub fn rtbh_blackholers(&self, prefix: &Prefix) -> Vec<u32> {
        match self.rtbh.get(prefix) {
            Some(&o) => self.topo.nodes[o as usize].providers.clone(),
            None => Vec::new(),
        }
    }

    /// The route the VP with node index `vp_idx` selects for `prefix`.
    pub fn route_at(&mut self, vp_idx: u32, prefix: &Prefix) -> Option<Route> {
        if self.disabled.contains(&vp_idx) {
            return None;
        }
        let cands = self.origins_of(prefix);
        let rtbh_origin = self.rtbh.get(prefix).copied();
        let mut best: Option<(Arc<RoutingTree>, u32, crate::routing::TreeEntry)> = None;
        for o in cands {
            let rtbh = rtbh_origin == Some(o);
            let tree = self.tree(o, rtbh);
            if let Some(e) = tree.entry(vp_idx) {
                let replace = match &best {
                    None => true,
                    Some((_, bo, be)) => {
                        let topo = &self.topo;
                        let ck = (
                            e.class,
                            e.dist,
                            topo.nodes[e.parent as usize].asn,
                            topo.nodes[o as usize].asn,
                        );
                        let bk = (
                            be.class,
                            be.dist,
                            topo.nodes[be.parent as usize].asn,
                            topo.nodes[*bo as usize].asn,
                        );
                        ck < bk
                    }
                };
                if replace {
                    best = Some((tree, o, e));
                }
            }
        }
        let (tree, origin_idx, entry) = best?;
        let path = tree.path_indexes(vp_idx)?;
        let as_path = tree.as_path(&self.topo, vp_idx)?;
        let communities = self.communities_for(&path, rtbh_origin.filter(|&o| o == origin_idx));
        Some(Route {
            origin: self.topo.nodes[origin_idx as usize].asn,
            as_path,
            class: entry.class,
            communities,
        })
    }

    /// The route selected by the VP with AS number `vp`.
    pub fn route(&mut self, vp: Asn, prefix: &Prefix) -> Option<Route> {
        let idx = self.topo.index_of(vp)?;
        self.route_at(idx, prefix)
    }

    /// Communities visible at the head of `path` (VP first, origin
    /// last): origin tags, RTBH black-holing tags, per-hop ingress
    /// tagging, and en-route stripping.
    fn communities_for(&self, path: &[u32], rtbh_origin: Option<u32>) -> CommunitySet {
        let mut acc = CommunitySet::new();
        let origin = *path.last().expect("path never empty");
        let onode = &self.topo.nodes[origin as usize];
        if let Some(ro) = rtbh_origin {
            for &prov in &self.topo.nodes[ro as usize].providers {
                acc.insert(Community::blackhole(
                    self.topo.nodes[prov as usize].asn.0 as u16,
                ));
            }
        }
        if onode.tags_communities {
            acc.insert(Community::new(onode.asn.0 as u16, TAG_ORIGIN));
        }
        for &hop in path.iter().rev().skip(1) {
            let n = &self.topo.nodes[hop as usize];
            if n.strips_communities {
                acc = CommunitySet::new();
            }
            if n.tags_communities {
                acc.insert(Community::new(n.asn.0 as u16, TAG_INGRESS));
            }
        }
        acc
    }

    fn refresh_lpm(&mut self) {
        if self.lpm_stale {
            self.lpm_trie = PrefixTrie::new();
            for p in self.announced_prefixes() {
                self.lpm_trie.insert(p, ());
            }
            self.lpm_stale = false;
        }
    }

    /// Longest announced prefix covering `addr` (a host prefix), for
    /// data-plane forwarding.
    pub fn lpm(&mut self, addr: &Prefix) -> Option<Prefix> {
        self.refresh_lpm();
        self.lpm_trie.longest_match(addr).map(|(p, _)| *p)
    }

    /// Every announced prefix covering `addr`, most specific first —
    /// the per-hop FIB fallback chain (a router without the /32 route
    /// still forwards along the covering aggregate).
    pub fn lpm_chain(&mut self, addr: &Prefix) -> Vec<Prefix> {
        self.refresh_lpm();
        let mut chain: Vec<Prefix> = self
            .lpm_trie
            .covering(addr)
            .into_iter()
            .map(|(p, _)| *p)
            .collect();
        chain.reverse();
        chain
    }

    /// All ASes suitable as vantage points at the current month: alive,
    /// not disabled.
    pub fn vp_candidates(&self) -> Vec<Asn> {
        self.topo
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| n.alive_at(self.month) && !self.disabled.contains(&(*i as u32)))
            .map(|(_, n)| n.asn)
            .collect()
    }

    /// Transit-capable VP candidates (richer tables; used to pick
    /// full-feed VPs).
    pub fn transit_vp_candidates(&self) -> Vec<Asn> {
        self.topo
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                n.alive_at(self.month)
                    && !self.disabled.contains(&(*i as u32))
                    && n.tier != Tier::Edge
            })
            .map(|(_, n)| n.asn)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TopologyConfig};

    fn cp() -> ControlPlane {
        let topo = Arc::new(generate(&TopologyConfig::tiny(11)));
        ControlPlane::new(topo, u64::MAX)
    }

    fn first_prefix_of(cp: &ControlPlane, idx: usize) -> Prefix {
        cp.topology().nodes[idx].prefixes_v4[0].prefix
    }

    #[test]
    fn every_vp_routes_every_announced_prefix_when_static() {
        let mut c = cp();
        let prefixes = c.announced_prefixes();
        assert!(!prefixes.is_empty());
        let vps = c.vp_candidates();
        for vp in vps.iter().take(5) {
            for p in prefixes.iter().take(20) {
                assert!(c.route(*vp, p).is_some(), "vp {vp} prefix {p}");
            }
        }
    }

    #[test]
    fn route_path_starts_at_vp_ends_at_origin() {
        let mut c = cp();
        let p = first_prefix_of(&c, 20);
        let vp = c.topology().nodes[5].asn;
        let r = c.route(vp, &p).unwrap();
        let hops = r.as_path.hops_dedup();
        assert_eq!(hops[0], vp);
        assert_eq!(*hops.last().unwrap(), r.origin);
    }

    #[test]
    fn withdraw_removes_route_announce_restores() {
        let mut c = cp();
        let origin_node = &c.topology().nodes[20];
        let origin = origin_node.asn;
        let p = first_prefix_of(&c, 20);
        let vp = c.topology().nodes[3].asn;
        assert!(c.route(vp, &p).is_some());
        c.apply(&Event::at(10, EventKind::Withdraw { origin, prefix: p }));
        assert!(c.route(vp, &p).is_none());
        c.apply(&Event::at(20, EventKind::Announce { origin, prefix: p }));
        assert!(c.route(vp, &p).is_some());
    }

    #[test]
    fn hijack_creates_moas() {
        let mut c = cp();
        let p = first_prefix_of(&c, 25);
        let attacker = c.topology().nodes[30].asn;
        c.apply(&Event::at(
            5,
            EventKind::StartHijack {
                attacker,
                prefix: p,
            },
        ));
        let origins = c.origins_of(&p);
        assert_eq!(origins.len(), 2);
        // Somewhere in the topology, at least one AS should route to
        // the attacker (it is topologically closer to someone).
        let vps = c.vp_candidates();
        let mut saw_attacker = false;
        for vp in vps {
            if let Some(r) = c.route(vp, &p) {
                if r.origin == attacker {
                    saw_attacker = true;
                    break;
                }
            }
        }
        assert!(saw_attacker, "no VP routed to the hijacker");
        c.apply(&Event::at(
            6,
            EventKind::EndHijack {
                attacker,
                prefix: p,
            },
        ));
        assert_eq!(c.origins_of(&p).len(), 1);
    }

    #[test]
    fn more_specific_hijack_attracts_everyone() {
        let mut c = cp();
        let victim_pfx = first_prefix_of(&c, 25);
        let sub = victim_pfx.children().unwrap().0; // more specific
        let attacker = c.topology().nodes[30].asn;
        c.apply(&Event::at(
            5,
            EventKind::StartHijack {
                attacker,
                prefix: sub,
            },
        ));
        let vp = c.topology().nodes[4].asn;
        let r = c.route(vp, &sub).unwrap();
        assert_eq!(r.origin, attacker);
        // LPM prefers the hijacked more-specific.
        let host = sub.host(1);
        assert_eq!(c.lpm(&host), Some(sub));
    }

    #[test]
    fn outage_kills_own_prefixes_and_transit() {
        let mut c = cp();
        // Find an edge AS with a single provider; killing the provider
        // must make the edge's prefix unreachable from elsewhere.
        let topo = c.topology().clone();
        let (edge_idx, provider_idx) = topo
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| {
                if n.tier == Tier::Edge && n.providers.len() == 1 {
                    Some((i as u32, n.providers[0]))
                } else {
                    None
                }
            })
            .expect("no single-homed edge in tiny topology");
        let edge_prefix = topo.nodes[edge_idx as usize].prefixes_v4[0].prefix;
        let provider_asn = topo.nodes[provider_idx as usize].asn;
        let provider_prefix = topo.nodes[provider_idx as usize].prefixes_v4[0].prefix;
        // Pick a VP that is neither the edge nor the provider.
        let vp = topo
            .nodes
            .iter()
            .enumerate()
            .find(|(i, _)| *i as u32 != edge_idx && *i as u32 != provider_idx)
            .map(|(_, n)| n.asn)
            .unwrap();
        assert!(c.route(vp, &edge_prefix).is_some());
        c.apply(&Event::at(5, EventKind::StartOutage { asn: provider_asn }));
        assert!(
            c.route(vp, &provider_prefix).is_none(),
            "provider prefix still up"
        );
        assert!(
            c.route(vp, &edge_prefix).is_none(),
            "single-homed customer still up"
        );
        c.apply(&Event::at(6, EventKind::EndOutage { asn: provider_asn }));
        assert!(c.route(vp, &edge_prefix).is_some());
    }

    #[test]
    fn rtbh_visible_at_providers_with_blackhole_community() {
        let mut c = cp();
        // Choose an edge AS with a provider.
        let topo = c.topology().clone();
        let (edge_idx, provider_idx) = topo
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| {
                if n.tier == Tier::Edge && !n.providers.is_empty() {
                    Some((i as u32, n.providers[0]))
                } else {
                    None
                }
            })
            .unwrap();
        let origin = topo.nodes[edge_idx as usize].asn;
        let host = topo.nodes[edge_idx as usize].prefixes_v4[0].prefix.host(7);
        c.apply(&Event::at(
            5,
            EventKind::StartRtbh {
                origin,
                prefix: host,
            },
        ));
        assert!(c.is_rtbh(&host));
        // The provider must see the /32 with a black-holing community.
        let provider_asn = topo.nodes[provider_idx as usize].asn;
        let r = c
            .route(provider_asn, &host)
            .expect("provider sees RTBH route");
        assert!(
            r.communities.has_blackhole(),
            "communities: {}",
            r.communities
        );
        c.apply(&Event::at(
            9,
            EventKind::EndRtbh {
                origin,
                prefix: host,
            },
        ));
        assert!(c.route(provider_asn, &host).is_none());
    }

    #[test]
    fn rtbh_propagation_requires_leaky_provider() {
        let mut c = cp();
        let topo = c.topology().clone();
        // Edge whose providers all do NOT leak: nobody beyond providers
        // sees the /32.
        let found = topo.nodes.iter().enumerate().find_map(|(i, n)| {
            if n.tier == Tier::Edge
                && !n.providers.is_empty()
                && n.providers
                    .iter()
                    .all(|&p| !topo.nodes[p as usize].leaks_blackholes)
            {
                Some(i as u32)
            } else {
                None
            }
        });
        if let Some(edge_idx) = found {
            let origin = topo.nodes[edge_idx as usize].asn;
            let host = topo.nodes[edge_idx as usize].prefixes_v4[0].prefix.host(1);
            c.apply(&Event::at(
                5,
                EventKind::StartRtbh {
                    origin,
                    prefix: host,
                },
            ));
            let providers: HashSet<u32> = topo.nodes[edge_idx as usize]
                .providers
                .iter()
                .copied()
                .collect();
            for (j, n) in topo.nodes.iter().enumerate() {
                let j = j as u32;
                if j == edge_idx || providers.contains(&j) {
                    continue;
                }
                assert!(
                    c.route(n.asn, &host).is_none(),
                    "AS {} sees non-leaked RTBH prefix",
                    n.asn
                );
            }
        }
    }

    #[test]
    fn leak_event_redirects_routes_through_leaker() {
        let mut c = cp();
        let topo = c.topology().clone();
        // Find a multi-homed edge AS (two providers).
        let (leaker_idx, prov_a, prov_b) = topo
            .nodes
            .iter()
            .enumerate()
            .find_map(|(i, n)| {
                if n.tier == Tier::Edge && n.providers.len() >= 2 {
                    Some((i as u32, n.providers[0], n.providers[1]))
                } else {
                    None
                }
            })
            .expect("no multi-homed edge in tiny topology");
        let leaker = topo.nodes[leaker_idx as usize].asn;
        // A prefix of provider A: before the leak, provider B does not
        // route to it through the leaker.
        let p = topo.nodes[prov_a as usize].prefixes_v4[0].prefix;
        let vp_b = topo.nodes[prov_b as usize].asn;
        let before = c.route(vp_b, &p).expect("B routes to A's prefix");
        assert!(
            !before.as_path.hops_dedup().contains(&leaker),
            "pre-leak path already via leaker"
        );
        c.apply(&Event::at(10, EventKind::StartLeak { leaker }));
        let during = c.route(vp_b, &p).expect("B still routes during leak");
        assert!(
            during.as_path.hops_dedup().contains(&leaker),
            "leak did not attract B: path {}",
            during.as_path
        );
        assert_eq!(
            during.class,
            RouteClass::Customer,
            "leaked route looks customer-learned"
        );
        c.apply(&Event::at(20, EventKind::EndLeak { leaker }));
        let after = c.route(vp_b, &p).unwrap();
        assert_eq!(after.as_path, before.as_path, "route heals after leak ends");
    }

    #[test]
    fn advance_reports_prefix_births() {
        let topo = Arc::new(generate(&TopologyConfig {
            months: 24,
            ..TopologyConfig::tiny(5)
        }));
        let mut c = ControlPlane::new(topo, 100);
        let before = c.announced_prefixes().len();
        let born = c.advance_to(24 * 100);
        assert!(!born.is_empty(), "no prefixes born over two years");
        let after = c.announced_prefixes().len();
        assert!(after > before);
        assert!(after - before >= born.len());
    }

    #[test]
    fn moas_from_second_origin() {
        // Force a config with high MOAS fraction to guarantee presence.
        let topo = Arc::new(generate(&TopologyConfig {
            moas_frac: 0.5,
            ..TopologyConfig::tiny(9)
        }));
        let mut c = ControlPlane::new(topo, u64::MAX);
        let moas: Vec<Prefix> = c
            .announced_prefixes()
            .into_iter()
            .filter(|p| c.origins_of(p).len() > 1)
            .collect();
        assert!(!moas.is_empty());
        // VPs can disagree about the origin of a MOAS prefix.
        let p = moas[0];
        let mut seen: HashSet<Asn> = HashSet::new();
        for vp in c.vp_candidates() {
            if let Some(r) = c.route(vp, &p) {
                seen.insert(r.origin);
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn communities_strip_and_tag() {
        let mut c = cp();
        let prefixes = c.announced_prefixes();
        let vps = c.vp_candidates();
        let mut any_tagged = false;
        for vp in &vps {
            for p in prefixes.iter().take(10) {
                if let Some(r) = c.route(*vp, p) {
                    if !r.communities.is_empty() {
                        any_tagged = true;
                    }
                }
            }
        }
        assert!(any_tagged, "no communities observed anywhere");
    }
}
