//! Seeded random topology generation with a longitudinal growth model.
//!
//! The generator produces the *final* topology; every AS and prefix
//! carries a birth month so earlier snapshots are subsets. The shape
//! parameters default to values that reproduce the qualitative features
//! the paper measures on the real Internet (Figure 5): near-linear AS
//! and routing-table growth, a constant IPv4 transit fraction, IPv6
//! adoption led by transit ASes, skewed community visibility, and a
//! slowly growing population of legitimately multi-origin prefixes.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use bgp_types::{Asn, Prefix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::model::{AsNode, OwnedPrefix, Tier, Topology};

/// Country codes used for geolocation analyses, ordered by assignment
/// weight (Zipf-like).
pub const COUNTRIES: [&[u8; 2]; 24] = [
    b"US", b"DE", b"GB", b"RU", b"BR", b"JP", b"FR", b"IT", b"NL", b"CN", b"IN", b"AU", b"CA",
    b"PL", b"ES", b"SE", b"UA", b"IQ", b"ZA", b"KR", b"TR", b"AR", b"ID", b"EG",
];

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// RNG seed: identical configs generate identical topologies.
    pub seed: u64,
    /// Growth span in virtual months (0 = static topology).
    pub months: u32,
    /// Number of tier-1 (clique) ASes.
    pub n_tier1: usize,
    /// Final number of transit ASes.
    pub n_transit: usize,
    /// Final number of edge ASes.
    pub n_edge: usize,
    /// Fraction of non-tier-1 ASes already present at month 0.
    pub initial_fraction: f64,
    /// Probability an edge AS has a second provider.
    pub multihome_prob: f64,
    /// Mean number of peer links per transit AS.
    pub transit_peer_mean: f64,
    /// Mean number of *extra* IPv4 prefixes per AS beyond the first
    /// (transit ASes get 4x this).
    pub extra_prefix_mean: f64,
    /// Final fraction of edge ASes announcing IPv6.
    pub v6_edge_adoption: f64,
    /// Fraction of prefixes with a legitimate second origin (MOAS).
    pub moas_frac: f64,
    /// Probability a transit AS strips communities on export.
    pub strip_prob: f64,
    /// Probability a transit AS tags routes with ingress communities.
    pub tag_prob: f64,
    /// Probability a transit AS re-exports black-holed prefixes.
    pub leak_blackhole_prob: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 42,
            months: 0,
            n_tier1: 8,
            n_transit: 60,
            n_edge: 300,
            initial_fraction: 0.3,
            multihome_prob: 0.35,
            transit_peer_mean: 1.5,
            extra_prefix_mean: 1.2,
            v6_edge_adoption: 0.5,
            moas_frac: 0.02,
            strip_prob: 0.25,
            tag_prob: 0.55,
            leak_blackhole_prob: 0.3,
        }
    }
}

impl TopologyConfig {
    /// A small config for unit tests (fast to route over).
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            months: 0,
            n_tier1: 3,
            n_transit: 8,
            n_edge: 30,
            ..Default::default()
        }
    }
}

/// Zipf-ish country pick.
fn pick_country(rng: &mut SmallRng) -> [u8; 2] {
    // Weight country k by 1/(k+2).
    let weights: Vec<f64> = (0..COUNTRIES.len())
        .map(|k| 1.0 / (k as f64 + 2.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (k, w) in weights.iter().enumerate() {
        if x < *w {
            return *COUNTRIES[k];
        }
        x -= *w;
    }
    *COUNTRIES[0]
}

/// Geometric-ish small count with the given mean.
fn geometric(rng: &mut SmallRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut n = 0;
    while rng.gen::<f64>() > p && n < 64 {
        n += 1;
    }
    n
}

/// Allocates globally disjoint prefixes: each allocation takes a fresh
/// /16 (IPv4) or /32 (IPv6) block, carving the requested length from
/// its start.
struct PrefixAllocator {
    next_v4_block: u32,
    next_v6_block: u32,
}

impl PrefixAllocator {
    fn new() -> Self {
        // Start at 11.0.0.0 to keep documentation ranges free for
        // tests and case-study target prefixes.
        PrefixAllocator {
            next_v4_block: 11 << 8,
            next_v6_block: 1,
        }
    }

    fn alloc_v4(&mut self, len: u8) -> Prefix {
        assert!((16..=24).contains(&len));
        let block = self.next_v4_block;
        self.next_v4_block += 1;
        let addr = std::net::Ipv4Addr::from(block << 16);
        Prefix::v4(addr, len)
    }

    fn alloc_v6(&mut self, len: u8) -> Prefix {
        assert!((32..=48).contains(&len));
        let block = self.next_v6_block as u128;
        self.next_v6_block += 1;
        // 2400::/12 region, /32 blocks.
        let bits: u128 = (0x2400u128 << 112) | (block << 96);
        Prefix::v6(Ipv6Addr::from(bits), len)
    }
}

/// Generate a topology from `cfg`. Deterministic in `cfg`.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut alloc = PrefixAllocator::new();
    let total = cfg.n_tier1 + cfg.n_transit + cfg.n_edge;
    let mut nodes: Vec<AsNode> = Vec::with_capacity(total);

    // Interleave transit and edge births so both populations grow
    // together (constant transit fraction — Figure 5c IPv4).
    #[derive(Clone, Copy)]
    enum Kind {
        T1,
        Transit,
        Edge,
    }
    let mut kinds: Vec<Kind> = Vec::with_capacity(total);
    kinds.extend(std::iter::repeat_n(Kind::T1, cfg.n_tier1));
    {
        // Deterministic interleave by ratio.
        let (mut t, mut e) = (0usize, 0usize);
        while t < cfg.n_transit || e < cfg.n_edge {
            let want_t = (t as f64 + 1.0) / cfg.n_transit.max(1) as f64;
            let want_e = (e as f64 + 1.0) / cfg.n_edge.max(1) as f64;
            if t < cfg.n_transit && (e >= cfg.n_edge || want_t <= want_e) {
                kinds.push(Kind::Transit);
                t += 1;
            } else {
                kinds.push(Kind::Edge);
                e += 1;
            }
        }
    }

    let non_t1_total = (total - cfg.n_tier1).max(1);
    let mut non_t1_seen = 0usize;
    for (i, kind) in kinds.iter().enumerate() {
        let asn = Asn(100 + i as u32 * 3);
        let (tier, born_month) = match kind {
            Kind::T1 => (Tier::Tier1, 0),
            k => {
                let tier = if matches!(k, Kind::Transit) {
                    Tier::Transit
                } else {
                    Tier::Edge
                };
                // Linear growth after the initial population.
                let pos = non_t1_seen as f64 / non_t1_total as f64;
                non_t1_seen += 1;
                let born = if pos < cfg.initial_fraction {
                    0
                } else {
                    let frac = (pos - cfg.initial_fraction) / (1.0 - cfg.initial_fraction);
                    (frac * cfg.months as f64).floor() as u32
                };
                (tier, born.min(cfg.months))
            }
        };

        // IPv6 adoption: transit adopts early, edge later and only a
        // fraction — yielding the Figure 5c IPv6 decay-then-flatten.
        let v6_born_month = match tier {
            Tier::Tier1 => born_month,
            Tier::Transit => {
                let lo = 0.05 * cfg.months as f64;
                let hi = 0.6 * cfg.months as f64;
                (born_month as f64).max(lo + rng.gen::<f64>() * (hi - lo)) as u32
            }
            Tier::Edge => {
                if rng.gen::<f64>() < cfg.v6_edge_adoption {
                    let lo = 0.35 * cfg.months as f64;
                    let hi = 1.0 * cfg.months as f64;
                    (born_month as f64).max(lo + rng.gen::<f64>() * (hi - lo)) as u32
                } else {
                    u32::MAX
                }
            }
        };

        let is_transit_like = tier != Tier::Edge;
        nodes.push(AsNode {
            asn,
            tier,
            country: if matches!(tier, Tier::Tier1) {
                *COUNTRIES[i % 5]
            } else {
                pick_country(&mut rng)
            },
            born_month,
            v6_born_month,
            providers: vec![],
            customers: vec![],
            peers: vec![],
            prefixes_v4: vec![],
            prefixes_v6: vec![],
            strips_communities: is_transit_like && rng.gen::<f64>() < cfg.strip_prob,
            tags_communities: is_transit_like && rng.gen::<f64>() < cfg.tag_prob,
            leaks_blackholes: is_transit_like && rng.gen::<f64>() < cfg.leak_blackhole_prob,
        });
    }

    // Tier-1 full peering clique.
    for a in 0..cfg.n_tier1 as u32 {
        for b in (a + 1)..cfg.n_tier1 as u32 {
            nodes[a as usize].peers.push(b);
            nodes[b as usize].peers.push(a);
        }
    }

    // Providers: preferential attachment among transit-capable ASes
    // already born.
    let idx_of: Vec<u32> = (0..total as u32).collect();
    for &i in idx_of.iter().skip(cfg.n_tier1) {
        let me_born = nodes[i as usize].born_month;
        let me_tier = nodes[i as usize].tier;
        let candidates: Vec<u32> = (0..i)
            .filter(|&j| {
                let n = &nodes[j as usize];
                n.tier != Tier::Edge && n.born_month <= me_born
            })
            .collect();
        if candidates.is_empty() {
            // Shouldn't happen (tier-1s are born at 0), but guard.
            continue;
        }
        let n_providers = match me_tier {
            Tier::Transit => 2,
            Tier::Edge => {
                if rng.gen::<f64>() < cfg.multihome_prob {
                    2
                } else {
                    1
                }
            }
            Tier::Tier1 => 0,
        };
        let mut chosen: Vec<u32> = Vec::new();
        for _ in 0..n_providers {
            // Preferential attachment: weight by customer degree + 1.
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&j| {
                    if chosen.contains(&j) {
                        0.0
                    } else {
                        nodes[j as usize].customers.len() as f64 + 1.0
                    }
                })
                .collect();
            let totalw: f64 = weights.iter().sum();
            if totalw <= 0.0 {
                break;
            }
            let mut x = rng.gen::<f64>() * totalw;
            let mut pick = candidates[0];
            for (k, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = candidates[k];
                    break;
                }
                x -= *w;
            }
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for p in chosen {
            nodes[i as usize].providers.push(p);
            nodes[p as usize].customers.push(i);
        }
    }

    // Transit peering (beyond the tier-1 clique).
    let transit_idx: Vec<u32> = (0..total as u32)
        .filter(|&i| nodes[i as usize].tier == Tier::Transit)
        .collect();
    for &i in &transit_idx {
        let n_peers = geometric(&mut rng, cfg.transit_peer_mean);
        for _ in 0..n_peers {
            let j = transit_idx[rng.gen_range(0..transit_idx.len())];
            if j == i
                || nodes[i as usize].peers.contains(&j)
                || nodes[i as usize].providers.contains(&j)
                || nodes[i as usize].customers.contains(&j)
            {
                continue;
            }
            nodes[i as usize].peers.push(j);
            nodes[j as usize].peers.push(i);
        }
    }

    // Prefixes.
    let total_u32 = total as u32;
    #[allow(clippy::needless_range_loop)]
    for i in 0..total {
        let born = nodes[i].born_month;
        let tier = nodes[i].tier;
        let extra_mean = match tier {
            Tier::Edge => cfg.extra_prefix_mean,
            _ => cfg.extra_prefix_mean * 4.0,
        };
        let count = 1 + geometric(&mut rng, extra_mean);
        let mut v4 = Vec::with_capacity(count as usize);
        for k in 0..count {
            let len = match rng.gen_range(0..10) {
                0 => 16,
                1..=3 => 20,
                _ => 24,
            };
            let p_born = if k == 0 {
                born
            } else {
                born + ((cfg.months.saturating_sub(born)) as f64 * rng.gen::<f64>()) as u32
            };
            let second_origin = if rng.gen::<f64>() < cfg.moas_frac {
                Some(rng.gen_range(0..total_u32))
            } else {
                None
            };
            v4.push(OwnedPrefix {
                prefix: alloc.alloc_v4(len),
                born_month: p_born,
                second_origin,
            });
        }
        nodes[i].prefixes_v4 = v4;

        if nodes[i].v6_born_month != u32::MAX {
            let count6 = 1 + geometric(&mut rng, 0.4);
            let mut v6 = Vec::with_capacity(count6 as usize);
            for k in 0..count6 {
                let len = if rng.gen_bool(0.4) { 32 } else { 48 };
                let p_born = if k == 0 {
                    nodes[i].v6_born_month
                } else {
                    nodes[i].v6_born_month
                        + ((cfg.months.saturating_sub(nodes[i].v6_born_month)) as f64
                            * rng.gen::<f64>()) as u32
                };
                v6.push(OwnedPrefix {
                    prefix: alloc.alloc_v6(len),
                    born_month: p_born,
                    second_origin: None,
                });
            }
            nodes[i].prefixes_v6 = v6;
        }
    }

    let by_asn: HashMap<Asn, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.asn, i as u32))
        .collect();
    let topo = Topology {
        nodes,
        by_asn,
        months: cfg.months,
    };
    debug_assert!(topo.validate().is_ok(), "{:?}", topo.validate());
    topo
}

/// Transit ASes located in `country` at `month`, largest (by customer
/// count) first — used to pick the "top ISPs" of the Figure 10 case
/// study.
pub fn top_isps_of_country(topo: &Topology, country: [u8; 2], month: u32) -> Vec<Asn> {
    let mut isps: Vec<&AsNode> = topo
        .nodes
        .iter()
        .filter(|n| n.country == country && n.tier == Tier::Transit && n.alive_at(month))
        .collect();
    isps.sort_by_key(|n| std::cmp::Reverse(n.customers.len()));
    isps.iter().map(|n| n.asn).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::compute_tree;

    #[test]
    fn generate_is_deterministic() {
        let a = generate(&TopologyConfig::tiny(7));
        let b = generate(&TopologyConfig::tiny(7));
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(b.nodes.iter()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.providers, y.providers);
            assert_eq!(x.prefixes_v4.len(), y.prefixes_v4.len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::tiny(1));
        let b = generate(&TopologyConfig::tiny(2));
        let pa: Vec<_> = a.nodes.iter().map(|n| n.providers.clone()).collect();
        let pb: Vec<_> = b.nodes.iter().map(|n| n.providers.clone()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn structure_is_valid() {
        let t = generate(&TopologyConfig::default());
        t.validate().unwrap();
    }

    #[test]
    fn prefixes_are_disjoint() {
        let t = generate(&TopologyConfig::tiny(3));
        let all: Vec<_> = t
            .nodes
            .iter()
            .flat_map(|n| n.prefixes_v4.iter().map(|p| p.prefix))
            .collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn every_as_reaches_every_origin_when_static() {
        let t = generate(&TopologyConfig::tiny(4));
        // Static topology (months=0): the graph must be fully routed.
        for origin in 0..t.nodes.len() as u32 {
            let tree = compute_tree(&t, origin, 0);
            for i in 0..t.nodes.len() as u32 {
                assert!(
                    tree.entry(i).is_some(),
                    "AS {} cannot reach origin {}",
                    t.nodes[i as usize].asn,
                    t.nodes[origin as usize].asn
                );
            }
        }
    }

    #[test]
    fn growth_is_monotonic() {
        let cfg = TopologyConfig {
            months: 60,
            ..TopologyConfig::default()
        };
        let t = generate(&cfg);
        let mut last = 0;
        for m in (0..=60).step_by(12) {
            let now = t.alive_count(m);
            assert!(now >= last, "shrunk at month {m}");
            last = now;
        }
        assert!(t.alive_count(0) >= cfg.n_tier1);
        assert_eq!(t.alive_count(60), t.nodes.len());
        // Meaningful growth overall.
        assert!(t.alive_count(60) > t.alive_count(0) * 2);
    }

    #[test]
    fn v6_lags_v4() {
        let cfg = TopologyConfig {
            months: 60,
            ..TopologyConfig::default()
        };
        let t = generate(&cfg);
        let v4_origins_early = t.announced_prefixes(6, true).len();
        let v6_origins_early = t.announced_prefixes(6, false).len();
        assert!(v6_origins_early < v4_origins_early / 4);
    }

    #[test]
    fn providers_are_born_before_customers() {
        let cfg = TopologyConfig {
            months: 48,
            ..TopologyConfig::default()
        };
        let t = generate(&cfg);
        for n in &t.nodes {
            for &p in &n.providers {
                assert!(t.nodes[p as usize].born_month <= n.born_month);
            }
        }
    }

    #[test]
    fn country_helper_orders_by_size() {
        let t = generate(&TopologyConfig::default());
        let us = top_isps_of_country(&t, *b"US", 0);
        if us.len() >= 2 {
            let a = t.node(us[0]).unwrap().customers.len();
            let b = t.node(us[1]).unwrap().customers.len();
            assert!(a >= b);
        }
    }

    #[test]
    fn asns_fit_in_community_field() {
        let t = generate(&TopologyConfig::default());
        for n in &t.nodes {
            assert!(n.asn.0 < 64512, "ASN {} too large", n.asn);
        }
    }
}
