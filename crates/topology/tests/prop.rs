//! Property tests on the routing substrate: generated topologies must
//! produce valley-free, loop-free, consistent routes for any seed.

use std::sync::Arc;

use proptest::prelude::*;
use topology::control::ControlPlane;
use topology::gen::{generate, TopologyConfig};
use topology::routing::{compute_tree, RouteClass};
use topology::{Tier, Topology};

fn relationship(topo: &Topology, a: u32, b: u32) -> &'static str {
    let na = &topo.nodes[a as usize];
    if na.providers.contains(&b) {
        "up" // a pays b
    } else if na.customers.contains(&b) {
        "down"
    } else if na.peers.contains(&b) {
        "peer"
    } else {
        "none"
    }
}

/// A stored path runs `[receiver, ..., origin]`; the announcement
/// travelled the reverse. Valley-free means the announcement's export
/// sequence is `up* peer? down*`: it climbs customer→provider links,
/// crosses at most one peer link, then only descends.
fn is_valley_free(topo: &Topology, path: &[u32]) -> bool {
    let mut climbing = true;
    let mut peer_crossings = 0;
    // Walk in announcement direction: origin → receiver.
    for w in path.windows(2).rev() {
        let (from, to) = (w[1], w[0]);
        match relationship(topo, from, to) {
            "up" => {
                // Export to a provider: only legal while climbing.
                if !climbing {
                    return false;
                }
            }
            "peer" => {
                if !climbing {
                    return false;
                }
                peer_crossings += 1;
                if peer_crossings > 1 {
                    return false;
                }
                climbing = false;
            }
            "down" => climbing = false,
            _ => return false, // non-adjacent hop
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_routes_are_valley_free_and_loop_free(seed in 0u64..1000) {
        let topo = generate(&TopologyConfig::tiny(seed));
        for origin in (0..topo.nodes.len() as u32).step_by(5) {
            let tree = compute_tree(&topo, origin, 0);
            for from in 0..topo.nodes.len() as u32 {
                if let Some(path) = tree.path_indexes(from) {
                    // Loop-free.
                    let mut dedup = path.clone();
                    dedup.sort_unstable();
                    dedup.dedup();
                    prop_assert_eq!(dedup.len(), path.len(), "loop in path {:?}", path);
                    // Ends at the origin.
                    prop_assert_eq!(*path.last().unwrap(), origin);
                    // Valley-free.
                    prop_assert!(
                        is_valley_free(&topo, &path),
                        "valley in path {:?} (origin {})",
                        path,
                        origin
                    );
                }
            }
        }
    }

    #[test]
    fn route_class_matches_first_edge(seed in 0u64..500) {
        let topo = generate(&TopologyConfig::tiny(seed));
        let tree = compute_tree(&topo, 0, 0);
        for from in 1..topo.nodes.len() as u32 {
            if let Some(entry) = tree.entry(from) {
                let rel = relationship(&topo, from, entry.parent);
                let expected = match entry.class {
                    RouteClass::Origin => continue,
                    RouteClass::Customer => "down", // learned from customer below
                    RouteClass::Peer => "peer",
                    RouteClass::Provider => "up",
                };
                prop_assert_eq!(rel, expected, "node {} parent {}", from, entry.parent);
            }
        }
    }

    #[test]
    fn dist_equals_path_length(seed in 0u64..500) {
        let topo = generate(&TopologyConfig::tiny(seed));
        let tree = compute_tree(&topo, 3, 0);
        for from in 0..topo.nodes.len() as u32 {
            if let (Some(entry), Some(path)) = (tree.entry(from), tree.path_indexes(from)) {
                prop_assert_eq!(entry.dist as usize, path.len() - 1);
            }
        }
    }

    #[test]
    fn customers_prefer_their_customer_routes(seed in 0u64..200) {
        // Gao-Rexford economic sanity: if a node has any route through
        // a customer, its selected class is Customer (or Origin).
        let topo = generate(&TopologyConfig::tiny(seed));
        let tree = compute_tree(&topo, 1, 0);
        for from in 0..topo.nodes.len() as u32 {
            let Some(entry) = tree.entry(from) else { continue };
            if entry.class == RouteClass::Origin {
                continue;
            }
            let has_customer_route = topo.nodes[from as usize]
                .customers
                .iter()
                .any(|&c| tree.entry(c).is_some_and(|e| e.parent != from
                    && matches!(e.class, RouteClass::Origin | RouteClass::Customer)));
            if has_customer_route {
                prop_assert_eq!(
                    entry.class,
                    RouteClass::Customer,
                    "node {} ignored an available customer route",
                    from
                );
            }
        }
    }

    #[test]
    fn moas_selection_is_deterministic(seed in 0u64..200) {
        let topo = Arc::new(generate(&TopologyConfig {
            moas_frac: 0.3,
            ..TopologyConfig::tiny(seed)
        }));
        let mut cp1 = ControlPlane::new(topo.clone(), u64::MAX);
        let mut cp2 = ControlPlane::new(topo.clone(), u64::MAX);
        let prefixes = cp1.announced_prefixes();
        for p in prefixes.iter().take(20) {
            for vp_idx in (0..topo.nodes.len() as u32).step_by(7) {
                let a = cp1.route_at(vp_idx, p);
                let b = cp2.route_at(vp_idx, p);
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn edge_as_never_provides_transit(seed in 0u64..200) {
        // No route's interior may cross an Edge-tier AS.
        let topo = generate(&TopologyConfig::tiny(seed));
        let tree = compute_tree(&topo, 2, 0);
        for from in 0..topo.nodes.len() as u32 {
            if let Some(path) = tree.path_indexes(from) {
                if path.len() < 3 {
                    continue;
                }
                for &mid in &path[1..path.len() - 1] {
                    prop_assert_ne!(
                        topo.nodes[mid as usize].tier,
                        Tier::Edge,
                        "edge AS {} used as transit in {:?}",
                        topo.nodes[mid as usize].asn,
                        path
                    );
                }
            }
        }
    }
}

proptest! {
    /// The generic worklist propagation (used for leak scenarios) is
    /// extensionally equal to the optimized three-phase BFS when no
    /// node actually leaks — pinned over generated topologies by
    /// passing a leaker set that matches no real node (non-empty, so
    /// the worklist engine runs).
    #[test]
    fn worklist_matches_three_phase_on_generated_topologies(seed in 0u64..40) {
        let topo = generate(&TopologyConfig::tiny(seed));
        let phantom_leakers: std::collections::HashSet<u32> =
            [u32::MAX].into_iter().collect();
        for origin in (0..topo.nodes.len() as u32).step_by(7) {
            let reference = compute_tree(&topo, origin, 0);
            let opts = topology::routing::TreeOpts {
                leakers: Some(&phantom_leakers),
                ..Default::default()
            };
            let worklist =
                topology::routing::compute_tree_opts(&topo, origin, 0, &opts);
            prop_assert_eq!(
                &worklist.entries, &reference.entries,
                "origin {} seed {}", origin, seed
            );
            // Stored paths agree with parent-pointer reconstruction.
            for v in 0..topo.nodes.len() as u32 {
                prop_assert_eq!(
                    worklist.path_indexes(v),
                    reference.path_indexes(v),
                    "path at {} origin {}", v, origin
                );
            }
        }
    }

    /// With real leakers, worklist routes remain loop-free and
    /// internally consistent (dist = hops, parent = next hop), and
    /// only valley violations that traverse a leaker exist.
    #[test]
    fn leaky_routes_are_loop_free_and_attributable(
        seed in 0u64..25,
        leaker_pick in 0usize..8,
    ) {
        let topo = generate(&TopologyConfig::tiny(seed));
        // Pick a multi-homed edge as leaker (most interesting case).
        let multihomed: Vec<u32> = topo
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tier == Tier::Edge && n.providers.len() >= 2)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assume!(!multihomed.is_empty());
        let leaker = multihomed[leaker_pick % multihomed.len()];
        let leakers: std::collections::HashSet<u32> = [leaker].into_iter().collect();
        let opts = topology::routing::TreeOpts {
            leakers: Some(&leakers),
            ..Default::default()
        };
        for origin in (0..topo.nodes.len() as u32).step_by(11) {
            let tree = topology::routing::compute_tree_opts(&topo, origin, 0, &opts);
            for v in 0..topo.nodes.len() as u32 {
                let Some(path) = tree.path_indexes(v) else { continue };
                // Loop-free.
                let unique: std::collections::HashSet<&u32> = path.iter().collect();
                prop_assert_eq!(unique.len(), path.len(), "loop in {:?}", path);
                // Entry consistency.
                let e = tree.entry(v).unwrap();
                prop_assert_eq!(e.dist as usize, path.len() - 1);
                if path.len() > 1 {
                    prop_assert_eq!(e.parent, path[1]);
                }
                prop_assert_eq!(*path.first().unwrap(), v);
                prop_assert_eq!(*path.last().unwrap(), origin);
                // Any valley violation must pass through the leaker.
                if !is_valley_free(&topo, &path) {
                    prop_assert!(
                        path.contains(&leaker),
                        "valley without leaker: {:?}", path
                    );
                }
            }
        }
    }
}
