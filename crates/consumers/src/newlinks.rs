//! New-AS-link detection — "spotting new (suspicious) AS links
//! appearing in the AS-graph" (§6.2).
//!
//! Man-in-the-middle hijacks \[19,20\] and some leaks manifest as AS
//! adjacencies never seen before in any path. The detector learns the
//! link universe over a configurable warm-up period, then alarms on
//! every adjacency absent from it, recording the full evidence path.
//! Links are tracked with last-seen bins so stale links can be expired
//! (an adjacency resurfacing after a long silence is also suspicious).

use std::collections::HashMap;

use bgp_types::{AsPath, Asn, Prefix};
use corsaro::codec::RtMessage;
use mq::Cluster;

/// An undirected AS adjacency (stored with the smaller ASN first).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AsLink(pub Asn, pub Asn);

impl AsLink {
    /// Canonical (order-independent) link.
    pub fn new(a: Asn, b: Asn) -> Self {
        if a.0 <= b.0 {
            AsLink(a, b)
        } else {
            AsLink(b, a)
        }
    }
}

/// One new-link alarm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NewLinkAlarm {
    /// The never-before-seen adjacency.
    pub link: AsLink,
    /// Collector whose data exposed it.
    pub collector: String,
    /// Time bin of the exposing diff.
    pub bin: u64,
    /// Prefix whose path carried the link.
    pub prefix: Prefix,
    /// The full evidence path.
    pub path: AsPath,
}

/// Rolling new-AS-link detector.
pub struct NewLinkDetector {
    /// link → last bin it was observed in.
    known: HashMap<AsLink, u64>,
    /// Bins at or before this value are the learning phase: links are
    /// absorbed silently.
    warmup_until: u64,
    /// Links unseen for this many bins are forgotten (0 = never).
    expire_after: u64,
    alarms: Vec<NewLinkAlarm>,
}

impl NewLinkDetector {
    /// Learn silently through bin `warmup_until`; alarm afterwards.
    /// `expire_after = 0` disables expiry.
    pub fn new(warmup_until: u64, expire_after: u64) -> Self {
        NewLinkDetector {
            known: HashMap::new(),
            warmup_until,
            expire_after,
            alarms: Vec::new(),
        }
    }

    /// Number of links currently known.
    pub fn known_links(&self) -> usize {
        self.known.len()
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[NewLinkAlarm] {
        &self.alarms
    }

    /// Apply one RT message.
    pub fn apply(&mut self, msg: &RtMessage) {
        let (collector, bin, cells) = match msg {
            RtMessage::Full {
                collector,
                bin,
                cells,
            }
            | RtMessage::Diff {
                collector,
                bin,
                cells,
            } => (collector, *bin, cells),
        };
        if self.expire_after > 0 {
            let horizon = bin.saturating_sub(self.expire_after);
            self.known.retain(|_, last| *last >= horizon);
        }
        for cell in cells {
            let Some(path) = &cell.path else { continue };
            let hops: Vec<Asn> = path.asns().collect();
            for w in hops.windows(2) {
                if w[0] == w[1] {
                    continue; // prepending is not an adjacency
                }
                let link = AsLink::new(w[0], w[1]);
                let is_new = self.known.insert(link, bin).is_none();
                if is_new && bin > self.warmup_until {
                    self.alarms.push(NewLinkAlarm {
                        link,
                        collector: collector.clone(),
                        bin,
                        prefix: cell.prefix,
                        path: path.clone(),
                    });
                }
            }
        }
    }

    /// Drain the `rt.tables` topic for `group`.
    pub fn consume(&mut self, mq: &Cluster, group: &str) -> u64 {
        crate::drain_rt(mq, group, |msg| self.apply(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corsaro::codec::DiffCell;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn msg(bin: u64, path: &[u32]) -> RtMessage {
        RtMessage::Diff {
            collector: "rrc00".into(),
            bin,
            cells: vec![DiffCell {
                vp: Asn(path[0]),
                prefix: p("10.0.0.0/8"),
                path: Some(AsPath::from_sequence(path.iter().copied())),
            }],
        }
    }

    #[test]
    fn canonical_link_ordering() {
        assert_eq!(AsLink::new(Asn(2), Asn(1)), AsLink::new(Asn(1), Asn(2)));
    }

    #[test]
    fn warmup_absorbs_then_alarms() {
        let mut d = NewLinkDetector::new(100, 0);
        d.apply(&msg(50, &[1, 2, 3]));
        assert!(d.alarms().is_empty());
        assert_eq!(d.known_links(), 2);
        // Known links stay silent after warm-up.
        d.apply(&msg(150, &[1, 2, 3]));
        assert!(d.alarms().is_empty());
        // A new adjacency (2,9) alarms.
        d.apply(&msg(160, &[1, 2, 9]));
        assert_eq!(d.alarms().len(), 1);
        assert_eq!(d.alarms()[0].link, AsLink::new(Asn(2), Asn(9)));
        assert_eq!(d.alarms()[0].bin, 160);
        // And is then known: no duplicate alarm.
        d.apply(&msg(170, &[1, 2, 9]));
        assert_eq!(d.alarms().len(), 1);
    }

    #[test]
    fn prepending_is_not_a_link() {
        let mut d = NewLinkDetector::new(0, 0);
        d.apply(&msg(10, &[1, 1, 1]));
        assert_eq!(d.known_links(), 0);
        assert!(d.alarms().is_empty());
    }

    #[test]
    fn expiry_rearms_old_links() {
        let mut d = NewLinkDetector::new(0, 100);
        d.apply(&msg(10, &[1, 2]));
        assert_eq!(d.alarms().len(), 1);
        // Seen again within the horizon: refreshed, no alarm.
        d.apply(&msg(60, &[1, 2]));
        assert_eq!(d.alarms().len(), 1);
        // Silent for >100 bins: expired, resurfacing alarms again.
        d.apply(&msg(300, &[1, 2]));
        assert_eq!(d.alarms().len(), 2);
    }

    #[test]
    fn consume_via_queue() {
        let mq = Cluster::shared();
        mq.produce("rt.tables", "rrc00", 0, msg(10, &[1, 2, 3]).encode());
        let mut d = NewLinkDetector::new(0, 0);
        assert_eq!(d.consume(&mq, "newlink-test"), 1);
        assert_eq!(d.alarms().len(), 2);
    }
}
