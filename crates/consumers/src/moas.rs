//! MOAS (Multiple-Origin AS) tracking.
//!
//! A prefix is MOAS when different VPs observe different origin ASes
//! for it. The paper shows (Figure 5b) that the number of unique MOAS
//! *sets* identified overall is always significantly larger than what
//! any single collector sees — aggregating across collectors matters.

use std::collections::BTreeSet;

use bgp_types::Asn;

use crate::view::GlobalView;

/// Accumulates unique MOAS sets, overall and per collector.
#[derive(Default)]
pub struct MoasTracker {
    /// Every distinct origin set (|set| ≥ 2) seen so far, overall.
    pub overall: BTreeSet<Vec<Asn>>,
    /// Per collector.
    pub per_collector: std::collections::BTreeMap<String, BTreeSet<Vec<Asn>>>,
}

impl MoasTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in the current view.
    pub fn observe(&mut self, view: &GlobalView) {
        for (_, _, origins) in view.visible_prefixes() {
            if origins.len() >= 2 {
                self.overall.insert(origins.iter().copied().collect());
            }
        }
        for collector in view.collectors() {
            let per = view.collector_prefix_origins(&collector);
            let bucket = self.per_collector.entry(collector).or_default();
            for (_, origins) in per {
                if origins.len() >= 2 {
                    bucket.insert(origins.into_iter().collect());
                }
            }
        }
    }

    /// Unique MOAS sets overall.
    pub fn overall_count(&self) -> usize {
        self.overall.len()
    }

    /// Largest per-collector count.
    pub fn max_single_collector(&self) -> usize {
        self.per_collector
            .values()
            .map(|s| s.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Prefix};
    use corsaro::codec::{DiffCell, RtMessage};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cell(vp: u32, prefix: &str, origin: u32) -> DiffCell {
        DiffCell {
            vp: Asn(vp),
            prefix: p(prefix),
            path: Some(AsPath::from_sequence([vp, origin])),
        }
    }

    #[test]
    fn detects_moas_across_collectors_only() {
        let mut v = GlobalView::new();
        // rrc00's VPs all see origin 50; rv2's all see origin 60: no
        // single collector sees the MOAS, but overall does.
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", 50), cell(2, "10.0.0.0/8", 50)],
        });
        v.apply(&RtMessage::Full {
            collector: "rv2".into(),
            bin: 0,
            cells: vec![cell(3, "10.0.0.0/8", 60)],
        });
        let mut t = MoasTracker::new();
        t.observe(&v);
        assert_eq!(t.overall_count(), 1);
        assert_eq!(t.max_single_collector(), 0);
        assert!(t.overall_count() > t.max_single_collector());
    }

    #[test]
    fn same_origin_everywhere_is_not_moas() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", 50), cell(2, "10.0.0.0/8", 50)],
        });
        let mut t = MoasTracker::new();
        t.observe(&v);
        assert_eq!(t.overall_count(), 0);
    }

    #[test]
    fn moas_sets_deduplicate() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", 50), cell(2, "10.0.0.0/8", 60)],
        });
        let mut t = MoasTracker::new();
        t.observe(&v);
        t.observe(&v); // same sets again
        assert_eq!(t.overall_count(), 1);
        assert_eq!(t.max_single_collector(), 1);
    }
}
