//! Per-country and per-AS outage detection (§6.2.4, Figure 10).
//!
//! "Both consumers select the prefixes observed by full-feed VPs and
//! monitor the visibility of these prefixes by computing the number of
//! prefixes geo-located to each country and announced by each AS."
//! Prefix-to-country geolocation (NetAcuity in the paper's
//! deployment) is substituted by the simulation's ground truth: a
//! prefix geolocates to its owner AS's country.

use std::collections::{BTreeMap, HashMap};

use bgp_types::{Asn, Prefix};
use topology::Topology;

use crate::view::GlobalView;

/// Prefix → country geolocation database.
#[derive(Clone, Default)]
pub struct GeoMap {
    map: HashMap<Prefix, [u8; 2]>,
    asn_country: HashMap<Asn, [u8; 2]>,
}

impl GeoMap {
    /// Build from simulation ground truth.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut map = HashMap::new();
        let mut asn_country = HashMap::new();
        for node in &topo.nodes {
            asn_country.insert(node.asn, node.country);
            for op in node.prefixes_v4.iter().chain(node.prefixes_v6.iter()) {
                map.insert(op.prefix, node.country);
            }
        }
        GeoMap { map, asn_country }
    }

    /// Country of a prefix, falling back to the origin AS's country
    /// for prefixes not in the database (e.g. hijacked
    /// more-specifics).
    pub fn country_of(&self, prefix: &Prefix, origin: Option<Asn>) -> Option<[u8; 2]> {
        self.map
            .get(prefix)
            .copied()
            .or_else(|| origin.and_then(|o| self.asn_country.get(&o).copied()))
    }
}

/// One point of a visibility time series.
pub type SeriesPoint = (u64, usize);

/// The per-country / per-AS visible-prefix counters.
pub struct OutageConsumer {
    geo: GeoMap,
    /// Minimum number of VPs that must see a prefix for it to count
    /// as visible (outage = global invisibility, not a local failure).
    pub min_vps: usize,
    /// country → series of (bin, #visible prefixes).
    pub country_series: BTreeMap<[u8; 2], Vec<SeriesPoint>>,
    /// origin AS → series of (bin, #visible prefixes).
    pub as_series: BTreeMap<Asn, Vec<SeriesPoint>>,
}

impl OutageConsumer {
    /// Build over a geolocation database.
    pub fn new(geo: GeoMap, min_vps: usize) -> Self {
        OutageConsumer {
            geo,
            min_vps: min_vps.max(1),
            country_series: BTreeMap::new(),
            as_series: BTreeMap::new(),
        }
    }

    /// Record one bin's visibility from the reconstructed view.
    pub fn observe_bin(&mut self, view: &GlobalView, bin: u64) {
        let mut per_country: HashMap<[u8; 2], usize> = HashMap::new();
        let mut per_as: HashMap<Asn, usize> = HashMap::new();
        for (prefix, vps, origins) in view.visible_prefixes() {
            if vps < self.min_vps {
                continue;
            }
            let origin = origins.iter().next().copied();
            if let Some(cc) = self.geo.country_of(&prefix, origin) {
                *per_country.entry(cc).or_default() += 1;
            }
            for o in origins {
                *per_as.entry(o).or_default() += 1;
            }
        }
        // Keep series dense: countries/ASes already tracked get a
        // zero when invisible this bin.
        for (cc, series) in self.country_series.iter_mut() {
            series.push((bin, per_country.remove(cc).unwrap_or(0)));
        }
        for (cc, n) in per_country {
            self.country_series.entry(cc).or_default().push((bin, n));
        }
        for (asn, series) in self.as_series.iter_mut() {
            series.push((bin, per_as.remove(asn).unwrap_or(0)));
        }
        for (asn, n) in per_as {
            self.as_series.entry(asn).or_default().push((bin, n));
        }
    }

    /// The country series, if tracked.
    pub fn country(&self, cc: [u8; 2]) -> Option<&[SeriesPoint]> {
        self.country_series.get(&cc).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use corsaro::codec::{DiffCell, RtMessage};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn geo(entries: &[(&str, [u8; 2], u32)]) -> GeoMap {
        let mut g = GeoMap::default();
        for (prefix, cc, asn) in entries {
            g.map.insert(p(prefix), *cc);
            g.asn_country.insert(Asn(*asn), *cc);
        }
        g
    }

    fn full(cells: Vec<DiffCell>) -> RtMessage {
        RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells,
        }
    }

    fn cell(vp: u32, prefix: &str, origin: u32) -> DiffCell {
        DiffCell {
            vp: Asn(vp),
            prefix: p(prefix),
            path: Some(AsPath::from_sequence([vp, origin])),
        }
    }

    #[test]
    fn counts_visible_prefixes_per_country_and_as() {
        let g = geo(&[("10.0.0.0/8", *b"IQ", 50), ("20.0.0.0/8", *b"US", 60)]);
        let mut v = GlobalView::new();
        v.apply(&full(vec![
            cell(1, "10.0.0.0/8", 50),
            cell(2, "10.0.0.0/8", 50),
            cell(1, "20.0.0.0/8", 60),
            cell(2, "20.0.0.0/8", 60),
        ]));
        let mut c = OutageConsumer::new(g, 2);
        c.observe_bin(&v, 0);
        assert_eq!(c.country(*b"IQ").unwrap(), &[(0, 1)]);
        assert_eq!(c.country(*b"US").unwrap(), &[(0, 1)]);
        assert_eq!(c.as_series[&Asn(50)], vec![(0, 1)]);
    }

    #[test]
    fn threshold_excludes_locally_visible_prefixes() {
        let g = geo(&[("10.0.0.0/8", *b"IQ", 50)]);
        let mut v = GlobalView::new();
        v.apply(&full(vec![cell(1, "10.0.0.0/8", 50)])); // one VP only
        let mut c = OutageConsumer::new(g, 2);
        c.observe_bin(&v, 0);
        assert!(c.country(*b"IQ").is_none());
    }

    #[test]
    fn outage_drops_series_to_zero_and_back() {
        let g = geo(&[("10.0.0.0/8", *b"IQ", 50)]);
        let mut c = OutageConsumer::new(g, 1);
        let mut v = GlobalView::new();
        v.apply(&full(vec![cell(1, "10.0.0.0/8", 50)]));
        c.observe_bin(&v, 0);
        // The prefix disappears (government-ordered shutdown).
        v.apply(&RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![DiffCell {
                vp: Asn(1),
                prefix: p("10.0.0.0/8"),
                path: None,
            }],
        });
        c.observe_bin(&v, 60);
        // ...and comes back.
        v.apply(&RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 120,
            cells: vec![cell(1, "10.0.0.0/8", 50)],
        });
        c.observe_bin(&v, 120);
        assert_eq!(c.country(*b"IQ").unwrap(), &[(0, 1), (60, 0), (120, 1)]);
    }

    #[test]
    fn unknown_prefix_geolocates_by_origin() {
        let g = geo(&[("10.0.0.0/8", *b"IQ", 50)]);
        // 10.5.0.0/16 not in map, origin 50 → IQ.
        assert_eq!(g.country_of(&p("10.5.0.0/16"), Some(Asn(50))), Some(*b"IQ"));
        assert_eq!(g.country_of(&p("10.5.0.0/16"), Some(Asn(99))), None);
    }
}
