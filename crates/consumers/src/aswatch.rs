//! AS watch — "tracking AS paths containing a particular AS" (§6.2).
//!
//! Given a watched ASN, the consumer maintains, from RT diffs:
//!
//! * which `(collector, vp, prefix)` routes currently traverse it;
//! * the neighbor ASes observed immediately up- and downstream of it
//!   (new upstreams are how de-peering/re-homing events and some
//!   hijacks first become visible);
//! * a per-bin time series of the number of traversing routes, the
//!   same shape the paper's time-series monitoring system stores.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use bgp_types::{Asn, Prefix};
use corsaro::codec::RtMessage;
use mq::Cluster;

/// Snapshot of the watch state at one bin.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WatchSample {
    /// Time bin.
    pub bin: u64,
    /// Routes (cells) currently traversing the watched AS.
    pub routes: usize,
    /// Distinct prefixes among them.
    pub prefixes: usize,
}

/// Tracks the routes traversing one AS.
pub struct AsWatch {
    target: Asn,
    /// (collector, vp, prefix) → whether the current route traverses
    /// the target (we must track non-traversing routes too, to handle
    /// reroutes away from the target).
    traversing: HashSet<(String, Asn, Prefix)>,
    /// ASes seen immediately closer to the VPs (providers/peers of the
    /// target, from the routes' perspective).
    upstreams: BTreeSet<Asn>,
    /// ASes seen immediately closer to the origins.
    downstreams: BTreeSet<Asn>,
    /// bin → routes count, recorded on each message.
    series: BTreeMap<u64, WatchSample>,
}

impl AsWatch {
    /// Watch `target`.
    pub fn new(target: Asn) -> Self {
        AsWatch {
            target,
            traversing: HashSet::new(),
            upstreams: BTreeSet::new(),
            downstreams: BTreeSet::new(),
            series: BTreeMap::new(),
        }
    }

    /// The watched ASN.
    pub fn target(&self) -> Asn {
        self.target
    }

    /// Current number of routes traversing the target.
    pub fn route_count(&self) -> usize {
        self.traversing.len()
    }

    /// Neighbor ASes seen on the VP side of the target.
    pub fn upstreams(&self) -> &BTreeSet<Asn> {
        &self.upstreams
    }

    /// Neighbor ASes seen on the origin side of the target.
    pub fn downstreams(&self) -> &BTreeSet<Asn> {
        &self.downstreams
    }

    /// The recorded per-bin series.
    pub fn series(&self) -> impl Iterator<Item = &WatchSample> {
        self.series.values()
    }

    /// Apply one RT message.
    pub fn apply(&mut self, msg: &RtMessage) {
        let (collector, bin, cells) = match msg {
            RtMessage::Full {
                collector,
                bin,
                cells,
            }
            | RtMessage::Diff {
                collector,
                bin,
                cells,
            } => (collector, *bin, cells),
        };
        if matches!(msg, RtMessage::Full { .. }) {
            // Resync: forget this collector's traversals.
            self.traversing.retain(|(c, _, _)| c != collector);
        }
        for cell in cells {
            let key = (collector.clone(), cell.vp, cell.prefix);
            let hops: Vec<Asn> = match &cell.path {
                Some(path) => path.asns().collect(),
                None => {
                    self.traversing.remove(&key);
                    continue;
                }
            };
            let mut hit = false;
            for (i, &h) in hops.iter().enumerate() {
                if h != self.target {
                    continue;
                }
                hit = true;
                if i > 0 && hops[i - 1] != self.target {
                    self.upstreams.insert(hops[i - 1]);
                }
                if let Some(&next) = hops.get(i + 1) {
                    if next != self.target {
                        self.downstreams.insert(next);
                    }
                }
            }
            if hit {
                self.traversing.insert(key);
            } else {
                self.traversing.remove(&key);
            }
        }
        let prefixes: HashMap<Prefix, ()> =
            self.traversing.iter().map(|(_, _, p)| (*p, ())).collect();
        self.series.insert(
            bin,
            WatchSample {
                bin,
                routes: self.traversing.len(),
                prefixes: prefixes.len(),
            },
        );
    }

    /// Drain the `rt.tables` topic for `group`.
    pub fn consume(&mut self, mq: &Cluster, group: &str) -> u64 {
        crate::drain_rt(mq, group, |msg| self.apply(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use corsaro::codec::DiffCell;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cell(vp: u32, prefix: &str, path: Option<&[u32]>) -> DiffCell {
        DiffCell {
            vp: Asn(vp),
            prefix: p(prefix),
            path: path.map(|h| AsPath::from_sequence(h.iter().copied())),
        }
    }

    fn diff(bin: u64, cells: Vec<DiffCell>) -> RtMessage {
        RtMessage::Diff {
            collector: "rrc00".into(),
            bin,
            cells,
        }
    }

    #[test]
    fn tracks_traversing_routes_and_neighbors() {
        let mut w = AsWatch::new(Asn(3356));
        w.apply(&diff(
            60,
            vec![
                cell(1, "10.0.0.0/8", Some(&[1, 3356, 137])),
                cell(2, "10.0.0.0/8", Some(&[2, 9, 137])), // not traversing
                cell(1, "20.0.0.0/8", Some(&[1, 3356, 9, 44])),
            ],
        ));
        assert_eq!(w.route_count(), 2);
        assert_eq!(
            w.upstreams().iter().copied().collect::<Vec<_>>(),
            vec![Asn(1)]
        );
        assert_eq!(
            w.downstreams().iter().copied().collect::<Vec<_>>(),
            vec![Asn(9), Asn(137)]
        );
    }

    #[test]
    fn reroute_away_removes_traversal() {
        let mut w = AsWatch::new(Asn(3356));
        w.apply(&diff(
            60,
            vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 137]))],
        ));
        assert_eq!(w.route_count(), 1);
        // Same (vp, prefix) reroutes around the target.
        w.apply(&diff(120, vec![cell(1, "10.0.0.0/8", Some(&[1, 9, 137]))]));
        assert_eq!(w.route_count(), 0);
        // Withdrawal also removes.
        w.apply(&diff(
            130,
            vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 137]))],
        ));
        w.apply(&diff(180, vec![cell(1, "10.0.0.0/8", None)]));
        assert_eq!(w.route_count(), 0);
    }

    #[test]
    fn prepending_by_target_counts_once() {
        let mut w = AsWatch::new(Asn(3356));
        w.apply(&diff(
            60,
            vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 3356, 137]))],
        ));
        assert_eq!(w.route_count(), 1);
        assert_eq!(w.upstreams().len(), 1);
        assert_eq!(w.downstreams().len(), 1);
    }

    #[test]
    fn series_records_per_bin_counts() {
        let mut w = AsWatch::new(Asn(3356));
        w.apply(&diff(
            60,
            vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 137]))],
        ));
        w.apply(&diff(
            120,
            vec![cell(2, "10.0.0.0/8", Some(&[2, 3356, 137]))],
        ));
        w.apply(&diff(180, vec![cell(1, "10.0.0.0/8", None)]));
        let s: Vec<(u64, usize, usize)> =
            w.series().map(|x| (x.bin, x.routes, x.prefixes)).collect();
        assert_eq!(s, vec![(60, 1, 1), (120, 2, 1), (180, 1, 1)]);
    }

    #[test]
    fn full_resync_clears_collector_state() {
        let mut w = AsWatch::new(Asn(3356));
        w.apply(&diff(
            60,
            vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 137]))],
        ));
        w.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 120,
            cells: vec![cell(2, "20.0.0.0/8", Some(&[2, 3356, 44]))],
        });
        assert_eq!(w.route_count(), 1, "old traversal dropped by resync");
    }

    #[test]
    fn consume_via_queue() {
        let mq = Cluster::shared();
        mq.produce(
            "rt.tables",
            "rrc00",
            0,
            diff(60, vec![cell(1, "10.0.0.0/8", Some(&[1, 3356, 137]))]).encode(),
        );
        let mut w = AsWatch::new(Asn(3356));
        assert_eq!(w.consume(&mq, "aswatch-test"), 1);
        assert_eq!(w.route_count(), 1);
    }
}
