//! Reconstructing the global routing view from queued RT output.

use std::collections::{BTreeSet, HashMap, HashSet};

use bgp_types::{Asn, Prefix};
use corsaro::codec::RtMessage;
use mq::Cluster;

/// The `<prefix, VP>` matrix rebuilt from `Full` + `Diff` messages,
/// across collectors.
#[derive(Default)]
pub struct GlobalView {
    /// collector → (vp, prefix) → origin AS.
    tables: HashMap<String, HashMap<(Asn, Prefix), Asn>>,
    /// Collectors that delivered at least one message.
    seen: HashSet<String>,
    /// Messages applied.
    applied: u64,
}

impl GlobalView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one RT message. `Full` messages resynchronise the whole
    /// collector table; `Diff` messages mutate it.
    pub fn apply(&mut self, msg: &RtMessage) {
        self.applied += 1;
        self.seen.insert(msg.collector().to_string());
        match msg {
            RtMessage::Full {
                collector, cells, ..
            } => {
                let table = self.tables.entry(collector.clone()).or_default();
                table.clear();
                for c in cells {
                    if let Some(origin) = c.path.as_ref().and_then(|p| p.origin()) {
                        table.insert((c.vp, c.prefix), origin);
                    }
                }
            }
            RtMessage::Diff {
                collector, cells, ..
            } => {
                let table = self.tables.entry(collector.clone()).or_default();
                for c in cells {
                    match c.path.as_ref().and_then(|p| p.origin()) {
                        Some(origin) => {
                            table.insert((c.vp, c.prefix), origin);
                        }
                        None => {
                            table.remove(&(c.vp, c.prefix));
                        }
                    }
                }
            }
        }
    }

    /// Drain new messages from the `rt.tables` topic for a consumer
    /// group, applying them in order; returns how many were applied.
    pub fn consume(&mut self, mq: &Cluster, group: &str) -> u64 {
        let mut n = 0;
        for part in 0..mq.partitions("rt.tables").max(1) {
            let from = mq.committed(group, "rt.tables", part);
            loop {
                let msgs = mq.fetch("rt.tables", part, from + n, 64);
                if msgs.is_empty() {
                    break;
                }
                for m in &msgs {
                    if let Ok(rt) = RtMessage::decode(&m.payload) {
                        self.apply(&rt);
                    }
                    n += 1;
                }
            }
            mq.commit(group, "rt.tables", part, from + n);
        }
        n
    }

    /// Messages applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of `(collector, vp)` pairs with any routes.
    pub fn vp_count(&self) -> usize {
        let mut vps: HashSet<(String, Asn)> = HashSet::new();
        for (c, table) in &self.tables {
            for (vp, _) in table.keys() {
                vps.insert((c.clone(), *vp));
            }
        }
        vps.len()
    }

    /// How many VPs (across collectors) currently announce `prefix`.
    pub fn prefix_visibility(&self, prefix: &Prefix) -> usize {
        let mut vps: HashSet<(String, Asn)> = HashSet::new();
        for (c, table) in &self.tables {
            for ((vp, p), _) in table.iter() {
                if p == prefix {
                    vps.insert((c.clone(), *vp));
                }
            }
        }
        vps.len()
    }

    /// All origins observed for `prefix` across VPs and collectors.
    pub fn prefix_origins(&self, prefix: &Prefix) -> BTreeSet<Asn> {
        let mut out = BTreeSet::new();
        for table in self.tables.values() {
            for ((_, p), origin) in table.iter() {
                if p == prefix {
                    out.insert(*origin);
                }
            }
        }
        out
    }

    /// Iterate `(prefix, vp-visibility, origin set)` over every
    /// currently visible prefix.
    pub fn visible_prefixes(&self) -> Vec<(Prefix, usize, BTreeSet<Asn>)> {
        type Vis = HashMap<Prefix, (HashSet<(String, Asn)>, BTreeSet<Asn>)>;
        let mut vis: Vis = HashMap::new();
        for (c, table) in &self.tables {
            for ((vp, p), origin) in table.iter() {
                let e = vis.entry(*p).or_default();
                e.0.insert((c.clone(), *vp));
                e.1.insert(*origin);
            }
        }
        let mut out: Vec<(Prefix, usize, BTreeSet<Asn>)> = vis
            .into_iter()
            .map(|(p, (vps, origins))| (p, vps.len(), origins))
            .collect();
        out.sort_by_key(|(p, _, _)| *p);
        out
    }

    /// Per-collector per-prefix origins, for per-collector analyses.
    pub fn collector_prefix_origins(&self, collector: &str) -> HashMap<Prefix, BTreeSet<Asn>> {
        let mut out: HashMap<Prefix, BTreeSet<Asn>> = HashMap::new();
        if let Some(table) = self.tables.get(collector) {
            for ((_, p), origin) in table.iter() {
                out.entry(*p).or_default().insert(*origin);
            }
        }
        out
    }

    /// Collector names seen so far.
    pub fn collectors(&self) -> Vec<String> {
        let mut v: Vec<String> = self.seen.iter().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use corsaro::codec::DiffCell;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cell(vp: u32, prefix: &str, origin: Option<u32>) -> DiffCell {
        DiffCell {
            vp: Asn(vp),
            prefix: p(prefix),
            path: origin.map(|o| AsPath::from_sequence([vp, 3356, o])),
        }
    }

    #[test]
    fn full_then_diff_rebuilds_table() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![
                cell(1, "10.0.0.0/8", Some(137)),
                cell(2, "10.0.0.0/8", Some(137)),
            ],
        });
        assert_eq!(v.prefix_visibility(&p("10.0.0.0/8")), 2);
        // Diff: vp 2 withdraws; vp 1 reroutes to another origin.
        v.apply(&RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![
                cell(2, "10.0.0.0/8", None),
                cell(1, "10.0.0.0/8", Some(666)),
            ],
        });
        assert_eq!(v.prefix_visibility(&p("10.0.0.0/8")), 1);
        let origins = v.prefix_origins(&p("10.0.0.0/8"));
        assert_eq!(origins.into_iter().collect::<Vec<_>>(), vec![Asn(666)]);
    }

    #[test]
    fn full_resync_replaces_everything() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", Some(137))],
        });
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![cell(1, "20.0.0.0/8", Some(9))],
        });
        assert_eq!(v.prefix_visibility(&p("10.0.0.0/8")), 0);
        assert_eq!(v.prefix_visibility(&p("20.0.0.0/8")), 1);
    }

    #[test]
    fn collectors_aggregate_independently() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", Some(137))],
        });
        v.apply(&RtMessage::Full {
            collector: "rv2".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", Some(666))],
        });
        assert_eq!(v.prefix_visibility(&p("10.0.0.0/8")), 2);
        assert_eq!(v.prefix_origins(&p("10.0.0.0/8")).len(), 2);
        assert_eq!(v.collectors(), vec!["rrc00".to_string(), "rv2".to_string()]);
        // Per-collector view sees only its own origin.
        let per = v.collector_prefix_origins("rrc00");
        assert_eq!(per[&p("10.0.0.0/8")].len(), 1);
    }

    #[test]
    fn consume_drains_queue_with_group_offsets() {
        let mq = Cluster::shared();
        let msg = RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![cell(1, "10.0.0.0/8", Some(137))],
        };
        mq.produce("rt.tables", "rrc00", 0, msg.encode());
        let mut v = GlobalView::new();
        assert_eq!(v.consume(&mq, "g1"), 1);
        assert_eq!(v.consume(&mq, "g1"), 0, "offset not committed");
        // A different group re-reads from zero.
        let mut v2 = GlobalView::new();
        assert_eq!(v2.consume(&mq, "g2"), 1);
    }

    #[test]
    fn visible_prefixes_summary() {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells: vec![
                cell(1, "10.0.0.0/8", Some(137)),
                cell(2, "10.0.0.0/8", Some(666)),
                cell(1, "20.0.0.0/8", Some(9)),
            ],
        });
        let vis = v.visible_prefixes();
        assert_eq!(vis.len(), 2);
        let ten = vis
            .iter()
            .find(|(p_, _, _)| *p_ == p("10.0.0.0/8"))
            .unwrap();
        assert_eq!(ten.1, 2);
        assert_eq!(ten.2.len(), 2);
        assert_eq!(v.vp_count(), 2);
    }
}
