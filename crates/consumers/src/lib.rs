//! Monitoring consumers (§6.2.4): analyze the routing tables
//! retrieved from the queue to perform event detection and extract
//! time series.
//!
//! The paper's deployment feeds RT-plugin diffs through Kafka into
//! consumers for near-realtime detection of per-country and per-AS
//! outages (Figure 10) and BGP hijacks. Here:
//!
//! * [`view::GlobalView`] — rebuilds full per-collector routing tables
//!   from `Full` snapshots + `Diff` streams (§6.2.2's complementary
//!   routines);
//! * [`outage`] — per-country and per-AS visible-prefix counters over
//!   full-feed VPs, the Figure 10 series;
//! * [`moas`] — unique MOAS-set tracking (Figure 5b's consumer-side
//!   counterpart);
//! * [`hijack`] — same-prefix (MOAS) and sub-prefix hijack alarms.
//!
//! §6.2 also names three further applications of the global view, all
//! implemented here:
//!
//! * [`routeleak`] — valley-free-violation (route-leak) detection over
//!   an AS-relationship oracle;
//! * [`newlinks`] — new/suspicious AS-adjacency detection with warm-up
//!   and expiry;
//! * [`aswatch`] — tracking every path traversing a particular AS.

#![forbid(unsafe_code)]

pub mod aswatch;
pub mod hijack;
pub mod moas;
pub mod newlinks;
pub mod outage;
pub mod routeleak;
pub mod view;

pub use aswatch::{AsWatch, WatchSample};
pub use hijack::{HijackAlarm, HijackDetector};
pub use moas::MoasTracker;
pub use newlinks::{AsLink, NewLinkAlarm, NewLinkDetector};
pub use outage::{GeoMap, OutageConsumer};
pub use routeleak::{judge_path, LeakAlarm, LeakDetector, PathVerdict, RelKind, RelOracle};
pub use view::GlobalView;

use corsaro::codec::RtMessage;
use mq::Cluster;

/// Drain all new `rt.tables` messages for a consumer group, invoking
/// `f` on each decoded message in partition order; commits offsets and
/// returns the number of messages consumed. Shared by every consumer's
/// `consume` method.
pub fn drain_rt<F: FnMut(&RtMessage)>(mq: &Cluster, group: &str, mut f: F) -> u64 {
    let mut total = 0;
    for part in 0..mq.partitions("rt.tables").max(1) {
        total += drain_rt_partition(mq, group, part, &mut f);
    }
    total
}

/// Drain one partition of `rt.tables` for `group`, invoking `f` on
/// each decoded message in offset order; commits and returns the
/// count.
fn drain_rt_partition<F: FnMut(&RtMessage)>(
    mq: &Cluster,
    group: &str,
    part: usize,
    f: &mut F,
) -> u64 {
    let from = mq.committed(group, "rt.tables", part);
    let mut n = 0;
    loop {
        let msgs = mq.fetch("rt.tables", part, from + n, 64);
        if msgs.is_empty() {
            break;
        }
        for m in &msgs {
            if let Ok(rt) = RtMessage::decode(&m.payload) {
                f(&rt);
            }
            n += 1;
        }
    }
    mq.commit(group, "rt.tables", part, from + n);
    n
}

/// Sharded [`drain_rt`]: partitions are drained concurrently on
/// `workers` threads (the consumer-side counterpart of the
/// `corsaro::runtime` scale-out — the queue's partitioning by
/// collector is exactly a shard key).
///
/// Ordering within a partition is preserved and each partition's
/// offsets commit independently, but `f` runs concurrently across
/// partitions, so it must be `Fn + Sync` and synchronise any shared
/// state itself (per-collector consumers typically keep state keyed
/// by collector, which partitions cleanly).
pub fn drain_rt_sharded<F: Fn(&RtMessage) + Sync>(
    mq: &Cluster,
    group: &str,
    workers: usize,
    f: F,
) -> u64 {
    let parts: Vec<usize> = (0..mq.partitions("rt.tables").max(1)).collect();
    analytics::par_map(parts, workers, |part| {
        drain_rt_partition(mq, group, part, &mut |m| f(m))
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn produce_diffs(mq: &Cluster, collector: &str, bins: u64) {
        for bin in 0..bins {
            let msg = RtMessage::Diff {
                collector: collector.to_string(),
                bin,
                cells: vec![],
            };
            mq.produce("rt.tables", collector, bin, msg.encode());
        }
    }

    #[test]
    fn sharded_drain_matches_sequential_drain() {
        let mq = Cluster::new();
        mq.create_topic("rt.tables", 4);
        for (i, c) in ["rrc00", "rrc01", "rv2", "rv3"].iter().enumerate() {
            produce_diffs(&mq, c, (i as u64 + 1) * 3);
        }

        let seen_seq = Mutex::new(Vec::<(String, u64)>::new());
        let n_seq = drain_rt(&mq, "seq", |m| {
            seen_seq
                .lock()
                .unwrap()
                .push((m.collector().to_string(), m.bin()));
        });

        let seen_par = Mutex::new(Vec::<(String, u64)>::new());
        let n_par = drain_rt_sharded(&mq, "par", 4, |m| {
            seen_par
                .lock()
                .unwrap()
                .push((m.collector().to_string(), m.bin()));
        });

        assert_eq!(n_seq, n_par);
        assert_eq!(n_par, 3 + 6 + 9 + 12);
        // Same message multiset; per-collector (= per-partition)
        // sequences stay in offset order under the sharded drain.
        let mut a = seen_seq.into_inner().unwrap();
        let b_raw = seen_par.into_inner().unwrap();
        for c in ["rrc00", "rrc01", "rv2", "rv3"] {
            let bins: Vec<u64> = b_raw
                .iter()
                .filter(|(name, _)| name == c)
                .map(|(_, b)| *b)
                .collect();
            assert!(bins.windows(2).all(|w| w[0] <= w[1]), "{c}: {bins:?}");
        }
        let mut b = b_raw;
        a.sort();
        b.sort();
        assert_eq!(a, b);

        // Offsets committed: a second sharded drain sees nothing new.
        assert_eq!(drain_rt_sharded(&mq, "par", 4, |_| {}), 0);
    }
}
