//! Monitoring consumers (§6.2.4): analyze the routing tables
//! retrieved from the queue to perform event detection and extract
//! time series.
//!
//! The paper's deployment feeds RT-plugin diffs through Kafka into
//! consumers for near-realtime detection of per-country and per-AS
//! outages (Figure 10) and BGP hijacks. Here:
//!
//! * [`view::GlobalView`] — rebuilds full per-collector routing tables
//!   from `Full` snapshots + `Diff` streams (§6.2.2's complementary
//!   routines);
//! * [`outage`] — per-country and per-AS visible-prefix counters over
//!   full-feed VPs, the Figure 10 series;
//! * [`moas`] — unique MOAS-set tracking (Figure 5b's consumer-side
//!   counterpart);
//! * [`hijack`] — same-prefix (MOAS) and sub-prefix hijack alarms.
//!
//! §6.2 also names three further applications of the global view, all
//! implemented here:
//!
//! * [`routeleak`] — valley-free-violation (route-leak) detection over
//!   an AS-relationship oracle;
//! * [`newlinks`] — new/suspicious AS-adjacency detection with warm-up
//!   and expiry;
//! * [`aswatch`] — tracking every path traversing a particular AS.

pub mod aswatch;
pub mod hijack;
pub mod moas;
pub mod newlinks;
pub mod outage;
pub mod routeleak;
pub mod view;

pub use aswatch::{AsWatch, WatchSample};
pub use hijack::{HijackAlarm, HijackDetector};
pub use moas::MoasTracker;
pub use newlinks::{AsLink, NewLinkAlarm, NewLinkDetector};
pub use outage::{GeoMap, OutageConsumer};
pub use routeleak::{judge_path, LeakAlarm, LeakDetector, PathVerdict, RelKind, RelOracle};
pub use view::GlobalView;

use corsaro::codec::RtMessage;
use mq::Cluster;

/// Drain all new `rt.tables` messages for a consumer group, invoking
/// `f` on each decoded message in partition order; commits offsets and
/// returns the number of messages consumed. Shared by every consumer's
/// `consume` method.
pub fn drain_rt<F: FnMut(&RtMessage)>(mq: &Cluster, group: &str, mut f: F) -> u64 {
    let mut total = 0;
    for part in 0..mq.partitions("rt.tables").max(1) {
        let from = mq.committed(group, "rt.tables", part);
        let mut n = 0;
        loop {
            let msgs = mq.fetch("rt.tables", part, from + n, 64);
            if msgs.is_empty() {
                break;
            }
            for m in &msgs {
                if let Ok(rt) = RtMessage::decode(&m.payload) {
                    f(&rt);
                }
                n += 1;
            }
        }
        mq.commit(group, "rt.tables", part, from + n);
        total += n;
    }
    total
}
