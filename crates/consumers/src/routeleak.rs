//! Route-leak detection — one of the §6.2 applications of the
//! continuously updated global view ("verifying the occurrence of a
//! route leak").
//!
//! A route leak (RFC 7908) is the propagation of an announcement
//! beyond its intended scope — canonically, a multi-homed customer
//! re-exporting routes learned from one provider/peer to another
//! provider/peer. In relationship terms, a leaked path violates the
//! Gao–Rexford *valley-free* property: read in propagation order
//! (origin → vantage point), a valid path climbs zero or more
//! customer→provider links, crosses at most one peer link, then
//! descends provider→customer links. Any "valley" (descend then climb)
//! or second peer crossing marks the AS at the turning point as the
//! leaker.
//!
//! The detector consumes reconstructed routing-table diffs from the
//! queue — it needs full AS paths, which the RT plugin's diff cells
//! carry — and judges each changed cell against a relationship oracle.

use std::collections::{HashMap, HashSet};

use bgp_types::{AsPath, Asn, Prefix};
use corsaro::codec::RtMessage;
use mq::Cluster;
use topology::model::Topology;

/// Directed relationship of one AS toward a neighbor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelKind {
    /// The first AS is a customer of the second.
    C2p,
    /// Settlement-free peers.
    P2p,
    /// The first AS is a provider of the second.
    P2c,
}

/// AS-relationship oracle: directed link → relationship.
///
/// Built from ground truth (the simulator's topology) or inferred
/// data (CAIDA AS-relationships in the real deployment — the paper
/// cites the inference work it would use \[34,43\]).
#[derive(Clone, Default, Debug)]
pub struct RelOracle {
    rels: HashMap<(Asn, Asn), RelKind>,
}

impl RelOracle {
    /// An empty oracle (every link unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `customer` buying transit from `provider` (both
    /// directions are derived).
    pub fn add_c2p(&mut self, customer: Asn, provider: Asn) {
        self.rels.insert((customer, provider), RelKind::C2p);
        self.rels.insert((provider, customer), RelKind::P2c);
    }

    /// Record a settlement-free peering.
    pub fn add_p2p(&mut self, a: Asn, b: Asn) {
        self.rels.insert((a, b), RelKind::P2p);
        self.rels.insert((b, a), RelKind::P2p);
    }

    /// The relationship of `a` toward `b`, if known.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<RelKind> {
        self.rels.get(&(a, b)).copied()
    }

    /// Number of directed entries.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the oracle is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Ground-truth oracle from the simulated topology.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut o = RelOracle::new();
        for node in &topo.nodes {
            for &ci in &node.customers {
                o.add_c2p(topo.nodes[ci as usize].asn, node.asn);
            }
            for &pi in &node.peers {
                o.add_p2p(node.asn, topo.nodes[pi as usize].asn);
            }
        }
        o
    }
}

/// The verdict on one path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathVerdict {
    /// Consistent with valley-free export policies.
    ValleyFree,
    /// Valley or multi-peer crossing: the ASN at the turning point.
    Leak(Asn),
    /// A link's relationship is unknown; no judgement.
    Unknown,
}

/// Judge a VP-to-origin AS path against the oracle.
///
/// `hops` is in path order: `hops[0]` is the VP's AS, `hops.last()`
/// the origin. Consecutive duplicate hops (prepending) are collapsed
/// before judging.
pub fn judge_path(oracle: &RelOracle, hops: &[Asn]) -> PathVerdict {
    let mut dedup: Vec<Asn> = Vec::with_capacity(hops.len());
    for &h in hops {
        if dedup.last() != Some(&h) {
            dedup.push(h);
        }
    }
    if dedup.len() < 3 {
        // A direct customer/peer/provider announcement cannot leak.
        return PathVerdict::ValleyFree;
    }
    // Propagation order: origin first.
    dedup.reverse();
    // Phases: 0 = climbing (c2p), 1 = crossed the single peer link,
    // 2 = descending (p2c).
    let mut phase = 0u8;
    for w in dedup.windows(2) {
        let (from, to) = (w[0], w[1]);
        let Some(rel) = oracle.rel(from, to) else {
            return PathVerdict::Unknown;
        };
        match (phase, rel) {
            (0, RelKind::C2p) => {}
            (0, RelKind::P2p) => phase = 1,
            (0, RelKind::P2c) => phase = 2,
            // After the peak, any climb or new peer link is a valley;
            // `from` is the AS that exported beyond its scope.
            (_, RelKind::C2p) | (_, RelKind::P2p) => {
                return PathVerdict::Leak(from);
            }
            (_, RelKind::P2c) => phase = 2,
        }
    }
    PathVerdict::ValleyFree
}

/// One detected leak event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeakAlarm {
    /// Collector whose view exposed the leak.
    pub collector: String,
    /// Time bin of the offending diff.
    pub bin: u64,
    /// VP that received the leaked route.
    pub vp: Asn,
    /// Leaked prefix.
    pub prefix: Prefix,
    /// The AS judged to have leaked.
    pub leaker: Asn,
    /// The offending path.
    pub path: AsPath,
}

/// Consumes RT diffs and raises [`LeakAlarm`]s.
pub struct LeakDetector {
    oracle: RelOracle,
    /// Dedup: a (leaker, prefix) pair alarms once until it heals.
    active: HashSet<(Asn, Prefix)>,
    alarms: Vec<LeakAlarm>,
    paths_judged: u64,
    unknown_paths: u64,
}

impl LeakDetector {
    /// A detector over a relationship oracle.
    pub fn new(oracle: RelOracle) -> Self {
        LeakDetector {
            oracle,
            active: HashSet::new(),
            alarms: Vec::new(),
            paths_judged: 0,
            unknown_paths: 0,
        }
    }

    /// Apply one RT message; newly raised alarms are appended to
    /// [`LeakDetector::alarms`].
    pub fn apply(&mut self, msg: &RtMessage) {
        let (collector, bin, cells) = match msg {
            RtMessage::Full {
                collector,
                bin,
                cells,
            }
            | RtMessage::Diff {
                collector,
                bin,
                cells,
            } => (collector, *bin, cells),
        };
        for cell in cells {
            let Some(path) = &cell.path else {
                // Withdrawal: any active leak of this prefix heals.
                self.active.retain(|(_, p)| p != &cell.prefix);
                continue;
            };
            self.paths_judged += 1;
            let hops: Vec<Asn> = path.asns().collect();
            match judge_path(&self.oracle, &hops) {
                PathVerdict::ValleyFree => {}
                PathVerdict::Unknown => self.unknown_paths += 1,
                PathVerdict::Leak(leaker) => {
                    if self.active.insert((leaker, cell.prefix)) {
                        self.alarms.push(LeakAlarm {
                            collector: collector.clone(),
                            bin,
                            vp: cell.vp,
                            prefix: cell.prefix,
                            leaker,
                            path: path.clone(),
                        });
                    }
                }
            }
        }
    }

    /// Drain the `rt.tables` topic for `group`, applying all messages.
    pub fn consume(&mut self, mq: &Cluster, group: &str) -> u64 {
        crate::drain_rt(mq, group, |msg| self.apply(msg))
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> &[LeakAlarm] {
        &self.alarms
    }

    /// Paths judged and paths skipped for unknown relationships.
    pub fn stats(&self) -> (u64, u64) {
        (self.paths_judged, self.unknown_paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corsaro::codec::DiffCell;

    fn a(n: u32) -> Asn {
        Asn(n)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Oracle: 1 and 2 are Tier-1 peers; 1 is provider of 11 and 12;
    /// 2 is provider of 12 (12 is multi-homed) and 22.
    fn oracle() -> RelOracle {
        let mut o = RelOracle::new();
        o.add_p2p(a(1), a(2));
        o.add_c2p(a(11), a(1));
        o.add_c2p(a(12), a(1));
        o.add_c2p(a(12), a(2));
        o.add_c2p(a(22), a(2));
        o
    }

    #[test]
    fn normal_transit_paths_are_valley_free() {
        let o = oracle();
        // VP 11 ← 1 ← 12: up from 12 to 1, down to 11.
        assert_eq!(
            judge_path(&o, &[a(11), a(1), a(12)]),
            PathVerdict::ValleyFree
        );
        // Across the peering: 11 ← 1 ↔ 2 ← 22.
        assert_eq!(
            judge_path(&o, &[a(11), a(1), a(2), a(22)]),
            PathVerdict::ValleyFree
        );
    }

    #[test]
    fn multihomed_customer_leaking_between_providers() {
        let o = oracle();
        // 22 ← 2 ← 12 ← 1: AS12 learned from provider 1 and re-exported
        // to provider 2 — the canonical leak, turning point 12.
        assert_eq!(
            judge_path(&o, &[a(22), a(2), a(12), a(1)]),
            PathVerdict::Leak(a(12))
        );
    }

    #[test]
    fn double_peer_crossing_is_a_leak() {
        let mut o = oracle();
        o.add_p2p(a(2), a(3));
        o.add_c2p(a(33), a(3));
        // 33 ← 3 ↔ 2 ↔ 1 …: AS2 carried a peer route to another peer.
        assert_eq!(
            judge_path(&o, &[a(33), a(3), a(2), a(1), a(11)]),
            PathVerdict::Leak(a(2))
        );
    }

    #[test]
    fn prepending_does_not_confuse_judgement() {
        let o = oracle();
        assert_eq!(
            judge_path(&o, &[a(11), a(1), a(1), a(1), a(12)]),
            PathVerdict::ValleyFree
        );
    }

    #[test]
    fn unknown_relationship_gives_no_verdict() {
        let o = oracle();
        assert_eq!(judge_path(&o, &[a(11), a(1), a(99)]), PathVerdict::Unknown);
    }

    #[test]
    fn short_paths_cannot_leak() {
        let o = oracle();
        assert_eq!(judge_path(&o, &[a(11), a(1)]), PathVerdict::ValleyFree);
        assert_eq!(judge_path(&o, &[a(11)]), PathVerdict::ValleyFree);
        assert_eq!(judge_path(&o, &[]), PathVerdict::ValleyFree);
    }

    fn leak_cell() -> DiffCell {
        DiffCell {
            vp: a(22),
            prefix: p("10.0.0.0/8"),
            path: Some(AsPath::from_sequence([22, 2, 12, 1])),
        }
    }

    #[test]
    fn detector_raises_and_dedups_alarms() {
        let mut d = LeakDetector::new(oracle());
        let msg = RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![leak_cell()],
        };
        d.apply(&msg);
        d.apply(&msg); // same leak again: deduped
        assert_eq!(d.alarms().len(), 1);
        let alarm = &d.alarms()[0];
        assert_eq!(alarm.leaker, a(12));
        assert_eq!(alarm.prefix, p("10.0.0.0/8"));
        assert_eq!(alarm.collector, "rrc00");
    }

    #[test]
    fn withdrawal_heals_and_rearms() {
        let mut d = LeakDetector::new(oracle());
        let leak = RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![leak_cell()],
        };
        let heal = RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 120,
            cells: vec![DiffCell {
                vp: a(22),
                prefix: p("10.0.0.0/8"),
                path: None,
            }],
        };
        d.apply(&leak);
        d.apply(&heal);
        d.apply(&leak);
        assert_eq!(d.alarms().len(), 2, "re-leak after heal re-alarms");
    }

    #[test]
    fn consume_via_queue() {
        let mq = Cluster::shared();
        let msg = RtMessage::Diff {
            collector: "rrc00".into(),
            bin: 60,
            cells: vec![leak_cell()],
        };
        mq.produce("rt.tables", "rrc00", 0, msg.encode());
        let mut d = LeakDetector::new(oracle());
        assert_eq!(d.consume(&mq, "leak-test"), 1);
        assert_eq!(d.alarms().len(), 1);
        assert_eq!(d.consume(&mq, "leak-test"), 0);
    }

    #[test]
    fn oracle_from_topology_is_symmetric() {
        let topo = topology::gen::generate(&topology::gen::TopologyConfig::tiny(7));
        let o = RelOracle::from_topology(&topo);
        assert!(!o.is_empty());
        for ((x, y), k) in o.rels.iter() {
            let back = o.rel(*y, *x).unwrap();
            match k {
                RelKind::C2p => assert_eq!(back, RelKind::P2c),
                RelKind::P2c => assert_eq!(back, RelKind::C2p),
                RelKind::P2p => assert_eq!(back, RelKind::P2p),
            }
        }
    }
}
