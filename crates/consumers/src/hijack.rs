//! Hijack detection (the "Hijacks" project of §6.2).
//!
//! "Most common hijacks manifest as two or more ASes announcing
//! exactly the same prefix, or a portion of the same address space at
//! the same time; detecting them requires comparing the prefix
//! reachability information as observed from multiple VPs." The
//! detector keeps a learned baseline of `prefix → origins` and raises
//! an alarm when (i) a new origin appears for a known prefix (MOAS
//! alarm) or (ii) a new more-specific of a known prefix appears with a
//! different origin (sub-prefix alarm).

use std::collections::{BTreeSet, HashMap};

use bgp_types::{Asn, Prefix, PrefixTrie};

use crate::view::GlobalView;

/// A raised alarm.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HijackAlarm {
    /// A known prefix gained an unexpected origin.
    Moas {
        /// The affected prefix.
        prefix: Prefix,
        /// Its learned legitimate origins.
        expected: Vec<Asn>,
        /// The newly observed origin.
        observed: Asn,
        /// Detection bin.
        bin: u64,
    },
    /// A new more-specific of a known prefix appeared with a
    /// different origin.
    SubPrefix {
        /// The covering (victim) prefix.
        covering: Prefix,
        /// The new more-specific.
        sub: Prefix,
        /// The victim's learned origins.
        expected: Vec<Asn>,
        /// The more-specific's origin.
        observed: Asn,
        /// Detection bin.
        bin: u64,
    },
}

/// Baseline-learning hijack detector.
pub struct HijackDetector {
    /// Learned legitimate origins per prefix.
    baseline: HashMap<Prefix, BTreeSet<Asn>>,
    /// Trie over baseline prefixes for sub-prefix checks.
    trie: PrefixTrie<()>,
    /// Whether we are still in the learning phase.
    learning: bool,
    /// All alarms raised.
    pub alarms: Vec<HijackAlarm>,
}

impl Default for HijackDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl HijackDetector {
    /// A detector in learning mode.
    pub fn new() -> Self {
        HijackDetector {
            baseline: HashMap::new(),
            trie: PrefixTrie::new(),
            learning: true,
            alarms: Vec::new(),
        }
    }

    /// Learn the current view as legitimate.
    pub fn learn(&mut self, view: &GlobalView) {
        for (prefix, _, origins) in view.visible_prefixes() {
            let entry = self.baseline.entry(prefix).or_default();
            entry.extend(origins);
            self.trie.insert(prefix, ());
        }
    }

    /// Stop learning; subsequent observations raise alarms.
    pub fn arm(&mut self) {
        self.learning = false;
    }

    /// Check the current view against the baseline.
    pub fn observe_bin(&mut self, view: &GlobalView, bin: u64) {
        if self.learning {
            self.learn(view);
            return;
        }
        for (prefix, _, origins) in view.visible_prefixes() {
            match self.baseline.get(&prefix) {
                Some(expected) => {
                    for o in &origins {
                        if !expected.contains(o) {
                            self.alarms.push(HijackAlarm::Moas {
                                prefix,
                                expected: expected.iter().copied().collect(),
                                observed: *o,
                                bin,
                            });
                        }
                    }
                }
                None => {
                    // Unknown prefix: sub-prefix hijack if a baseline
                    // prefix covers it with a different origin.
                    let covering = self
                        .trie
                        .covering(&prefix)
                        .into_iter()
                        .map(|(p, _)| *p)
                        .rfind(|p| p != &prefix);
                    if let Some(covering) = covering {
                        let expected = &self.baseline[&covering];
                        for o in &origins {
                            if !expected.contains(o) {
                                self.alarms.push(HijackAlarm::SubPrefix {
                                    covering,
                                    sub: prefix,
                                    expected: expected.iter().copied().collect(),
                                    observed: *o,
                                    bin,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;
    use corsaro::codec::{DiffCell, RtMessage};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn cell(vp: u32, prefix: &str, origin: u32) -> DiffCell {
        DiffCell {
            vp: Asn(vp),
            prefix: p(prefix),
            path: Some(AsPath::from_sequence([vp, origin])),
        }
    }

    fn view_with(cells: Vec<DiffCell>) -> GlobalView {
        let mut v = GlobalView::new();
        v.apply(&RtMessage::Full {
            collector: "rrc00".into(),
            bin: 0,
            cells,
        });
        v
    }

    #[test]
    fn moas_alarm_on_new_origin() {
        let mut d = HijackDetector::new();
        d.observe_bin(&view_with(vec![cell(1, "193.204.0.0/16", 137)]), 0);
        d.arm();
        d.observe_bin(
            &view_with(vec![
                cell(1, "193.204.0.0/16", 137),
                cell(2, "193.204.0.0/16", 666),
            ]),
            300,
        );
        assert_eq!(d.alarms.len(), 1);
        match &d.alarms[0] {
            HijackAlarm::Moas {
                observed,
                expected,
                bin,
                ..
            } => {
                assert_eq!(*observed, Asn(666));
                assert_eq!(expected, &[Asn(137)]);
                assert_eq!(*bin, 300);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subprefix_alarm_on_more_specific() {
        let mut d = HijackDetector::new();
        d.observe_bin(&view_with(vec![cell(1, "193.204.0.0/16", 137)]), 0);
        d.arm();
        d.observe_bin(&view_with(vec![cell(1, "193.204.7.0/24", 666)]), 300);
        assert_eq!(d.alarms.len(), 1);
        match &d.alarms[0] {
            HijackAlarm::SubPrefix {
                covering,
                sub,
                observed,
                ..
            } => {
                assert_eq!(covering.to_string(), "193.204.0.0/16");
                assert_eq!(sub.to_string(), "193.204.7.0/24");
                assert_eq!(*observed, Asn(666));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn legitimate_deaggregation_by_owner_is_silent() {
        let mut d = HijackDetector::new();
        d.observe_bin(&view_with(vec![cell(1, "193.204.0.0/16", 137)]), 0);
        d.arm();
        // The owner itself announces a more-specific: not an alarm.
        d.observe_bin(&view_with(vec![cell(1, "193.204.7.0/24", 137)]), 300);
        assert!(d.alarms.is_empty());
    }

    #[test]
    fn learned_moas_is_not_an_alarm() {
        let mut d = HijackDetector::new();
        d.observe_bin(
            &view_with(vec![cell(1, "10.0.0.0/8", 50), cell(2, "10.0.0.0/8", 60)]),
            0,
        );
        d.arm();
        d.observe_bin(
            &view_with(vec![cell(1, "10.0.0.0/8", 60), cell(2, "10.0.0.0/8", 50)]),
            300,
        );
        assert!(d.alarms.is_empty());
    }

    #[test]
    fn unknown_uncovered_prefix_is_ignored() {
        let mut d = HijackDetector::new();
        d.observe_bin(&view_with(vec![cell(1, "10.0.0.0/8", 50)]), 0);
        d.arm();
        d.observe_bin(&view_with(vec![cell(1, "172.16.0.0/12", 99)]), 300);
        assert!(d.alarms.is_empty());
    }
}
