// Synthetic-violation fixture for xcheck's own tests. NEVER compiled —
// it exists so the test suite proves each rule fires with a correct
// file:line, and that the binary exits non-zero on a dirty tree.

use std::sync::{Arc, Mutex}; // facade: std::sync::Mutex bypasses bsync
use parking_lot::RwLock; // facade: vendored lock import
use crossbeam::channel::unbounded; // facade: channel bypasses bsync
use std::sync::atomic::AtomicU64; // facade: atomics bypass bsync

pub fn wall_clock_sins() {
    let _t = std::time::Instant::now(); // wallclock
    let _s = std::time::SystemTime::now(); // wallclock
    std::thread::sleep(std::time::Duration::from_millis(1)); // wallclock
}

pub fn panicky(path: &str) -> u64 {
    let v: Option<u64> = path.parse().ok();
    v.unwrap() // unwrap
}

pub fn panicky_expect(v: Option<u64>) -> u64 {
    v.expect("present") // unwrap (.expect)
}

pub fn hard_exit(code: i32) {
    std::process::exit(code); // exit
}

pub fn hard_abort() {
    std::process::abort(); // exit (abort)
}

pub fn swallow_panics(f: impl FnOnce() + std::panic::UnwindSafe) {
    let _ = std::panic::catch_unwind(f); // catch-unwind, unjustified
}

pub fn old_interface(idx: std::sync::Arc<broker::Index>) -> broker::DataInterface {
    broker::DataInterface::Broker(idx) // deprecated-api
}

#[cfg(test)]
mod tests {
    // Inside cfg(test): none of these may be reported.
    pub fn fine_here() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = Some(1).unwrap();
        let _m = std::sync::Mutex::new(());
    }
}
