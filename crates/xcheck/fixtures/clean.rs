#![forbid(unsafe_code)]
// Clean fixture: everything xcheck must NOT flag. Never compiled.

use std::sync::Arc; // Arc alone is fine — it is not a sync primitive

pub struct Holder {
    // The facade's own types are the sanctioned spelling.
    slot: Arc<bsync::Mutex<Vec<u64>>>,
}

pub fn typed_errors(v: Option<u64>) -> Result<u64, String> {
    v.ok_or_else(|| "missing".to_string())
}

pub fn justified(v: Option<u64>) -> u64 {
    // xcheck:allow(unwrap) — v is checked non-empty by the caller
    v.unwrap()
}

pub fn sanctioned_boundary(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    // xcheck:allow(catch-unwind) — reviewed worker isolation boundary
    std::panic::catch_unwind(f).is_ok()
}

pub fn prose_only() {
    // Mentioning Instant::now, .unwrap() or DataInterface::Broker(x)
    // in a comment is fine.
    let doc = "and parking_lot::Mutex inside a string literal is fine";
    let raw = r#"std::sync::Condvar in a raw string is fine"#;
    let _ = (doc, raw);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_sleep_and_unwrap() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(Some(5).unwrap(), 5);
    }
}
