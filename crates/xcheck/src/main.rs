#![forbid(unsafe_code)]
//! CLI entry point; all logic lives in the library so rules are unit
//! tested against fixtures. See `crates/xcheck/src/lib.rs`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match xcheck::find_workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xcheck: could not locate workspace root (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };
    let diags = xcheck::check_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("xcheck: clean");
        ExitCode::SUCCESS
    } else {
        println!("xcheck: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
